// OCR inspector: renders a synthetic thumbnail for each corruption mode,
// runs the three OCR engines and the 2-of-3 voting combiner on it, and
// writes the raster to a PGM file you can open in any image viewer.
//
//   ./ocr_inspect [latency_ms] [output_dir]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "ocr/extractor.hpp"
#include "synth/thumbnail.hpp"
#include "util/table.hpp"

using namespace tero;

int main(int argc, char** argv) {
  const int latency = argc > 1 ? std::atoi(argv[1]) : 87;
  const std::string out_dir = argc > 2 ? argv[2] : "/tmp";

  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(7);

  std::cout << "game      : " << spec.game << "\n";
  std::cout << "UI region : (" << spec.latency_region.x << ","
            << spec.latency_region.y << ") " << spec.latency_region.w << "x"
            << spec.latency_region.h << "\n";
  std::cout << "truth     : " << latency << " ms\n\n";

  const std::pair<synth::Corruption, const char*> modes[] = {
      {synth::Corruption::kNone, "clean"},
      {synth::Corruption::kOcclusion, "occlusion"},
      {synth::Corruption::kLowContrast, "low_contrast"},
      {synth::Corruption::kClock, "clock_overlay"},
      {synth::Corruption::kHeavyNoise, "heavy_noise"},
      {synth::Corruption::kCompression, "compression"},
  };

  util::Table table({"corruption", "templat", "zonenet", "profiler",
                     "Tero primary", "alt", "file"});
  for (const auto& [corruption, name] : modes) {
    const auto rendered = renderer.render_with(spec, latency, corruption, rng);
    std::vector<std::string> row = {name};
    for (std::size_t e = 0; e < extractor.engines().size(); ++e) {
      const auto value =
          extractor.extract_with_engine(rendered.image, spec, e);
      row.push_back(value ? std::to_string(*value) : "-");
    }
    const auto reading = extractor.extract(rendered.image, spec);
    row.push_back(reading.primary ? std::to_string(*reading.primary) : "-");
    row.push_back(reading.alternative ? std::to_string(*reading.alternative)
                                      : "-");
    const std::string path = out_dir + "/thumb_" + name + ".pgm";
    std::ofstream file(path, std::ios::binary);
    const std::string pgm = rendered.image.to_pgm();
    file.write(pgm.data(), static_cast<std::streamsize>(pgm.size()));
    row.push_back(path);
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nocclusion hides the leading digit (digit drop), low "
               "contrast starves\nbinarization (miss), the clock overlay is "
               "the Fig. 6d trap, compression\nmerges glyphs until the "
               "engines disagree and the vote rejects the frame.\n";
  return 0;
}
