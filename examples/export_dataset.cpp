// Data-set exporter: run the pipeline and write the two public artifacts
// the paper publishes — pseudonymized per-streamer measurements and
// per-{location, game} latency products — then read the measurements back
// and re-run the analysis, as a data-set user would.
//
//   ./export_dataset [output_dir]

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/anomalies.hpp"
#include "synth/sessions.hpp"
#include "tero/export.hpp"
#include "tero/pipeline.hpp"

using namespace tero;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  synth::WorldConfig world_config;
  world_config.seed = 2023;
  world_config.games = {"League of Legends", "Dota 2"};
  world_config.focus_locations = {
      geo::Location{"", "California", "United States"},
      geo::Location{"", "", "Germany"},
  };
  world_config.streamers_per_focus = 40;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 6;
  synth::SessionGenerator generator(world, behavior, 2024);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.p_latency_visible = 1.0;
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  const std::string measurements_path = out_dir + "/tero_measurements.csv";
  const std::string aggregates_path = out_dir + "/tero_aggregates.csv";
  {
    std::ofstream measurements(measurements_path);
    const auto rows = core::export_measurements(dataset, measurements);
    std::cout << "wrote " << rows << " measurements to " << measurements_path
              << "\n";
  }
  {
    std::ofstream aggregates(aggregates_path);
    const auto rows = core::export_aggregates(dataset, aggregates);
    std::cout << "wrote " << rows << " aggregates to " << aggregates_path
              << "\n";
  }

  // The data-set user's side: load the measurements and re-run the
  // QoE-based cleaning on one streamer.
  std::ifstream input(measurements_path);
  const auto imported = core::import_measurements(input);
  std::cout << "\nre-imported " << imported.size() << " streams\n";
  if (!imported.empty()) {
    const auto clean =
        analysis::clean_stream(imported.front(), analysis::AnalysisConfig{});
    std::cout << "first stream: " << clean.points_in << " points, "
              << clean.points_retained << " retained, "
              << clean.spikes.size() << " spikes\n";
  }
  std::cout << "\nNote: streamer IDs in the export are consistent-hash "
               "pseudonyms (Sec. 7);\nno raw identity ever reaches disk.\n";
  return 0;
}
