// Real-time monitor: feed measurements to the streaming analyzer in
// arrival order — the deployment mode in which Tero produces its
// "almost-real-time analysis of Internet latency" (§1) — and print spike
// and shared-anomaly alerts as they finalize.

#include <algorithm>
#include <iostream>

#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "tero/realtime.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  // A region with an injected shared problem partway through.
  synth::WorldConfig world_config;
  world_config.seed = 55;
  world_config.games = {"League of Legends"};
  world_config.focus_locations = {geo::Location{"", "", "Germany"}};
  world_config.streamers_per_focus = 60;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 4;
  behavior.shared_events_per_region_day = 0.6;
  behavior.shared_event_magnitude_ms = 50.0;
  synth::SessionGenerator generator(world, behavior, 56);
  const auto streams = generator.generate();

  // Flatten all measurements into arrival order, as the downloaders would
  // deliver them.
  struct Arrival {
    std::string pseudonym;
    std::string game;
    analysis::Measurement measurement;
  };
  std::vector<Arrival> arrivals;
  auto channel = core::make_noise_channel();
  util::Rng rng(57);
  const geo::Location germany{"", "", "Germany"};
  core::RealtimeAnalyzer analyzer;
  for (const auto& stream : streams) {
    const std::string pseudonym =
        "u" + std::to_string(stream.streamer_index);
    analyzer.register_streamer(pseudonym, germany);
    for (const auto& point : stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    rng)) {
        arrivals.push_back(Arrival{pseudonym, stream.game, *m});
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.measurement.time_s < b.measurement.time_s;
            });
  std::cout << "replaying " << arrivals.size()
            << " measurements in arrival order...\n\n";

  std::size_t spike_alerts = 0;
  std::size_t shared_alerts = 0;
  for (const auto& arrival : arrivals) {
    const auto output =
        analyzer.ingest(arrival.pseudonym, arrival.game, arrival.measurement);
    for (const auto& alert : output.spikes) {
      ++spike_alerts;
      if (spike_alerts <= 10) {
        std::cout << "[spike]  t=" << util::fmt_double(
                         alert.spike.start_s / 3600.0, 2)
                  << "h  " << alert.pseudonym << "  +"
                  << util::fmt_double(alert.spike.magnitude_ms(), 0)
                  << " ms for "
                  << util::fmt_double(
                         (alert.spike.end_s - alert.spike.start_s) / 60.0, 0)
                  << " min\n";
      }
    }
    for (const auto& alert : output.shared) {
      ++shared_alerts;
      std::cout << "[SHARED] t=" << util::fmt_double(
                       alert.anomaly.start_s / 3600.0, 2)
                << "h  " << alert.location.to_string() << "  "
                << alert.anomaly.streamers.size()
                << " streamers spiking together  (P[independent]="
                << util::fmt_double(alert.anomaly.probability, 8) << ")\n";
    }
  }
  std::cout << "\ningested     : " << analyzer.measurements_ingested() << "\n"
            << "spike alerts : " << spike_alerts << " (first 10 shown)\n"
            << "shared alerts: " << shared_alerts << "\n";
  const auto distribution =
      analyzer.distribution(germany, "League of Legends");
  std::cout << "running clean distribution for Germany/LoL: "
            << distribution.size() << " values\n";
  return 0;
}
