// Regional latency explorer: build a located population at any gazetteer
// location and print its latency distribution, clusters, and
// distance-normalized latency for a game.
//
//   ./regional_latency "Bolivia" "League of Legends"
//   ./regional_latency "California, United States" "Call of Duty Warzone"

#include <iostream>
#include <string>

#include "geo/gazetteer.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

geo::Location parse_location(const std::string& text) {
  const auto pieces = util::split(text, ",");
  // Try the most specific interpretation first.
  for (const auto piece : pieces) {
    const auto trimmed = util::trim(piece);
    if (const auto* place = geo::Gazetteer::world().find_any(trimmed)) {
      return place->location();
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string where = argc > 1 ? argv[1] : "Bolivia";
  const std::string game = argc > 2 ? argv[2] : "League of Legends";

  const geo::Location location = parse_location(where);
  if (!location.valid()) {
    std::cerr << "unknown location: " << where << "\n";
    return 1;
  }
  const auto* game_info = geo::GameCatalog::builtin().find(game);
  if (game_info == nullptr) {
    std::cerr << "unknown game: " << game << "\n";
    return 1;
  }

  std::cout << "location : " << location.to_string() << "\n";
  std::cout << "game     : " << game_info->name << "\n";

  synth::WorldConfig world_config;
  world_config.seed = 11;
  world_config.games = {game_info->name};
  world_config.focus_locations = {location};
  world_config.streamers_per_focus = 50;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  const synth::World world(world_config);

  synth::BehaviorConfig behavior;
  behavior.days = 10;
  synth::SessionGenerator generator(world, behavior, 13);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.p_latency_visible = 1.0;
  config.aggregate_granularity = location.granularity();
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  const auto* aggregate = dataset.find_aggregate(location, game_info->name);
  if (aggregate == nullptr || !aggregate->box.has_value()) {
    std::cerr << "no data aggregated (location may be unlocatable)\n";
    return 1;
  }
  const auto& box = *aggregate->box;
  std::cout << "streamers: " << aggregate->streamers << "\n";
  std::cout << "primary  : " << aggregate->server_city << " ("
            << util::fmt_double(aggregate->avg_corrected_distance_km, 0)
            << " km corrected distance)\n\n";
  std::cout << "latency distribution [ms]  (5/25/50/75/95th pct)\n  "
            << util::fmt_double(box.p5, 0) << " | "
            << util::fmt_double(box.p25, 0) << " [ "
            << util::fmt_double(box.p50, 0) << " ] "
            << util::fmt_double(box.p75, 0) << " | "
            << util::fmt_double(box.p95, 0) << "\n\n";
  if (aggregate->avg_corrected_distance_km > 0) {
    std::cout << "distance-normalized median: "
              << util::fmt_double(
                     box.p50 / (aggregate->avg_corrected_distance_km / 1000.0),
                     1)
              << " ms per 1000 km\n\n";
  }
  std::cout << "similar-latency clusters (center @ share of streamers):\n";
  for (const auto& cluster : aggregate->clusters) {
    std::cout << "  " << util::fmt_double(cluster.center(), 0) << " ms  ["
              << cluster.min_ms << ", " << cluster.max_ms << "]  @ "
              << util::fmt_percent(cluster.weight, 0) << "\n";
  }
  return 0;
}
