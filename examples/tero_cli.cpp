// tero_cli: the driver a data-set consumer uses against the published CSV
// artifacts (see examples/export_dataset.cpp). Subcommands:
//
//   tero_cli simulate [out_dir] [streamers] [days] [threads]
//            [--metrics-out m.json] [--trace-out t.json] [--metrics-table]
//       build a synthetic world, run the pipeline (threads workers;
//       0 = all cores, same output either way), and write
//       measurements.csv + aggregates.csv. --metrics-out dumps the
//       metrics registry as JSON, --trace-out writes a Chrome
//       trace-event file (load in Perfetto / chrome://tracing), and
//       --metrics-table prints the registry to stdout.
//
//   tero_cli analyze <measurements.csv>
//       re-run the QoE-based cleaning over an imported data set and print
//       per-{streamer, game} summaries (points kept, spikes, glitches)
//
//   tero_cli report <measurements.csv> <game>
//       print the latency distribution per streamer pseudonym for a game
//       (what a researcher without the pipeline would compute first)
//
//   tero_cli query <snapshot> point <game> <country> [region] [city]
//   tero_cli query <snapshot> topk <game> [k]
//       serve point / top-k-worst queries from a snapshot written by
//       `simulate --snapshot-out` — no pipeline re-run needed
//
//   tero_cli loadtest <snapshot> [queries] [threads] [shards]
//            [--seed n] [--zipf s] [--open qps] [--admit rate burst]
//       drive the sharded query service with the deterministic Zipf load
//       generator; the reported result checksum is bit-identical for any
//       thread count at a fixed seed (--open adds virtual-time arrivals,
//       --admit enables token-bucket admission control / load shedding)
//
//   tero_cli stream [streamers] [days] [threads] [--window s] [--lateness s]
//            [--publish-every n] [--checkpoint-dir d] [--checkpoint-every n]
//            [--crash-after id] [--max-delay s] [--rate r] [--burst b]
//            [--capacity n] [--snapshot-out f] [--metrics-out f]
//            [--trace-out f] [--metrics-table]
//       run the same scenario through the streaming ingestion pipeline
//       (DESIGN.md §10): tumbling event-time windows fold into live serve
//       epochs, checkpoints land in --checkpoint-dir, and --crash-after
//       simulates a crash right after checkpoint N — rerunning with the
//       same --checkpoint-dir resumes and produces bit-identical output.
//       With --publish-every 0 the --snapshot-out file is byte-identical
//       to `simulate --snapshot-out` for the same scenario.
//
//   tero_cli obs <report|export> [streamers] [days] [queries] [threads]
//       one-command observability demo (DESIGN.md §13): build a world,
//       publish its snapshot, and drive the deterministic load generator
//       with a virtual-time metrics timeline, SLO burn-rate tracking, and
//       exemplar-armed histograms. `report` prints the timeline series,
//       the SLO burn table, and the p99-bucket exemplar -> span links;
//       `export` writes Prometheus text (--prom), the timeline history
//       JSON (--json, bit-identical across thread counts at a fixed
//       seed), and the SLO alert log (--slo).
//
//   tero_cli cluster <loadtest|kill|join|status> [streamers] [days] [queries]
//       deterministic multi-node serving cluster demo (DESIGN.md §14):
//       publish a world's snapshot across a consistent-hash fleet,
//       sweep the Zipf load generator, and script membership churn.
//       kill/join double as invariant gates (availability, breaker SLO,
//       ownership audit, remap bound) and exit nonzero on violation.
//
//   tero_cli control <sweep|status> [--policy p] [--mult n]
//       closed-loop overload resilience demo (DESIGN.md §16): run one
//       deterministic virtual-time overload cell under the standard
//       chaos plan with the SLO-driven feedback controller actuating
//       admission, shard count, channel capacity, and the brownout
//       ladder. `sweep` runs the cell and can write the per-tick
//       decision log (byte-identical across --threads at a fixed
//       --seed); `status` prints the resolved cell plan without
//       running it.
//
// The shared flags --metrics-out / --trace-out / --metrics-table /
// --seed / --threads are parsed by one helper (CommonFlags below):
// simulate, query, loadtest, stream, chaos, obs, cluster, tsdb, and
// control all accept them with the same spelling and semantics.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/anomalies.hpp"
#include "cluster/cluster.hpp"
#include "cluster/loadgen.hpp"
#include "control/controller.hpp"
#include "control/sweep.hpp"
#include "download/cdn.hpp"
#include "download/system.hpp"
#include "fault/fault.hpp"
#include "fault/policy.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_io.hpp"
#include "stats/descriptive.hpp"
#include "store/kv_store.hpp"
#include "stream/pipeline.hpp"
#include "synth/sessions.hpp"
#include "tero/export.hpp"
#include "tero/pipeline.hpp"
#include "tsdb/store.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

/// The complete usage text: every subcommand and every flag it accepts.
/// Printed on --help (stdout, exit 0) and on unknown commands/flags
/// (stderr, nonzero exit).
constexpr const char* kUsage =
    "usage: tero_cli <simulate|analyze|report|query|loadtest|stream|chaos"
    "|obs|cluster|tsdb|control> ...\n"
    "\n"
    "  simulate [out_dir] [streamers] [days] [threads]\n"
    "           [--snapshot-out snap.bin] [--metrics-out m.json]\n"
    "           [--trace-out t.json] [--metrics-table]\n"
    "           [--full-ocr] [--digest]\n"
    "      run the batch pipeline over a synthetic world and write\n"
    "      measurements.csv + aggregates.csv (plus optional snapshot,\n"
    "      metrics JSON, Chrome trace); --full-ocr rasterizes thumbnails\n"
    "      and runs the real OCR path, --digest prints the dataset\n"
    "      fingerprint (used by the TERO_SIMD determinism gate)\n"
    "\n"
    "  analyze  <measurements.csv>\n"
    "      re-run QoE cleaning over an exported data set\n"
    "\n"
    "  report   <measurements.csv> <game>\n"
    "      per-streamer latency distribution for one game\n"
    "\n"
    "  query    <snapshot> point <game> <country> [region] [city]\n"
    "  query    <snapshot> topk <game> [k]\n"
    "  query    <snapshot> range <game> <country> [region] [city]\n"
    "           --tsdb-dir dir [--from ms] [--to ms] [--window ms]\n"
    "           [--agg count|mean|p<pct>|drift]\n"
    "      point / top-k-worst queries against a saved snapshot, or\n"
    "      historical range queries answered from a persisted tiered\n"
    "      time-series store (written by `stream --tsdb-dir`) through\n"
    "      the same QueryService: one row per window; --agg drift\n"
    "      prints the week-over-week percentile drift at --to.\n"
    "      Defaults: --from 0, --to sealed frontier + one window,\n"
    "      --window 86400000 (one day), --agg p99. All query modes also\n"
    "      accept the shared --seed/--threads/--metrics-out/--trace-out/\n"
    "      --metrics-table flags\n"
    "\n"
    "  loadtest <snapshot> [queries] [threads] [shards]\n"
    "           [--seed n] [--zipf s] [--open qps] [--admit rate burst]\n"
    "           [--metrics-out m.json] [--trace-out t.json]\n"
    "           [--metrics-table]\n"
    "      deterministic Zipf load against the sharded query service;\n"
    "      the obs flags dump the loadgen-owned tero.loadgen.* telemetry\n"
    "      (deterministic synthetic latency, exemplars keyed by query id)\n"
    "\n"
    "  stream   [streamers] [days] [threads]\n"
    "           [--window seconds] [--lateness seconds] [--publish-every n]\n"
    "           [--checkpoint-dir dir] [--checkpoint-every n]\n"
    "           [--crash-after id] [--max-delay seconds] [--rate qps]\n"
    "           [--burst n] [--capacity n] [--snapshot-out snap.bin]\n"
    "           [--tsdb-dir dir] [--metrics-out m.json]\n"
    "           [--trace-out t.json] [--metrics-table]\n"
    "           [--timeline-out tl.json]\n"
    "      run the streaming ingestion pipeline over the same scenario;\n"
    "      windows fold into live epochs, checkpoints enable crash\n"
    "      recovery (--crash-after simulates the crash), and\n"
    "      --publish-every 0 makes --snapshot-out byte-identical to\n"
    "      `simulate --snapshot-out`; --tsdb-dir appends every closed\n"
    "      window's mean to a persisted tiered time-series store that\n"
    "      `query range` can answer from; set TERO_SIMD=off to force the\n"
    "      scalar extraction kernels (bit-identical output, DESIGN.md §12)\n"
    "\n"
    "  chaos    [seeds] [streamers] [days] [--plan spec] [--threads n]\n"
    "           [--metrics-out m.json] [--trace-out t.json]\n"
    "           [--metrics-table]\n"
    "      deterministic chaos harness (DESIGN.md §11): per seed, runs the\n"
    "      batch pipeline under a transient FaultPlan (default\n"
    "      extract.stream=error@0.4:fails=2) and asserts the dataset is\n"
    "      bit-identical to a fault-free run, runs a permanent-fault plan\n"
    "      and asserts quarantine accounting, drives the download simulator\n"
    "      through CDN/KV faults plus a mid-run crash, and flaps a serve\n"
    "      shard to exercise STALE degraded answers and the circuit\n"
    "      breaker; exits nonzero when any invariant is violated; honors\n"
    "      TERO_SIMD=off (scalar kernels) — every invariant must hold\n"
    "      identically on both dispatch paths; the serve-shard flap is\n"
    "      additionally gated by an SLO: a burn-rate alert on\n"
    "      value(tero.fault.breaker{endpoint=shard-0}) must fire within\n"
    "      one evaluation window of the breaker opening (DESIGN.md §13)\n"
    "\n"
    "  obs      <report|export> [streamers] [days] [queries] [threads]\n"
    "           [--seed n] [--open qps] [--spec \"slo ...\"]...\n"
    "           [--prom f.prom] [--json f.json] [--slo f.json]\n"
    "           [--metrics-out m.json] [--trace-out t.json]\n"
    "           [--metrics-table]\n"
    "      one-command observability demo: publish a world's snapshot and\n"
    "      drive the deterministic load generator with a virtual-time\n"
    "      metrics timeline, SLO burn-rate tracking (--spec adds SLOs in\n"
    "      the grammar `slo name: p99(series) < 5ms over 60s window,\n"
    "      budget 0.1%`), and exemplar-armed histograms. `report` prints\n"
    "      timeline series, the SLO burn table, and p99-bucket exemplar\n"
    "      -> span links; `export` writes Prometheus text (--prom), the\n"
    "      timeline history JSON (--json; byte-identical across thread\n"
    "      counts at a fixed seed), and the SLO alert log (--slo)\n"
    "\n"
    "  cluster  <loadtest|kill|join|status> [streamers] [days] [queries]\n"
    "           [--nodes n] [--replicas n] [--budget epochs] [--seed n]\n"
    "           [--threads n] [--qps n] [--policy leader|follower]\n"
    "           [--timeline-out tl.json] [--slo-out s.json]\n"
    "           [--metrics-out m.json] [--trace-out t.json]\n"
    "           [--metrics-table]\n"
    "      deterministic multi-node serving cluster (DESIGN.md §14):\n"
    "      publish a world's snapshot across a consistent-hash fleet and\n"
    "      sweep the Zipf load generator on the virtual clock. `loadtest`\n"
    "      republishes epochs mid-sweep (follower answers go STALE within\n"
    "      the --budget bound); `kill` downs a node mid-sweep and asserts\n"
    "      availability, breaker opening, and the breaker burn-rate SLO\n"
    "      firing within two scrapes; `join` adds a node mid-sweep and\n"
    "      asserts the ownership audit plus the < 2/n remap bound;\n"
    "      `status` prints the per-node table and the audit. kill/join\n"
    "      exit nonzero when an invariant is violated. The result\n"
    "      checksum is bit-identical for any --threads value\n"
    "\n"
    "  tsdb     verify [seeds] [keys] [days]\n"
    "           [--plan spec] [--threads n] [--dir base]\n"
    "           [--metrics-out m.json] [--trace-out t.json]\n"
    "           [--metrics-table]\n"
    "      determinism + crash-recovery sweep over the tiered\n"
    "      time-series store (DESIGN.md §15). Per seed: a clean run must\n"
    "      produce bit-identical segment layout and dataset digest at 1\n"
    "      vs N threads, and a durable run under the fault plan (default\n"
    "      tsdb.compact=crash@1:max=1) must crash, then reopen from disk\n"
    "      without losing a single acknowledged sample; exits nonzero on\n"
    "      any violation (scripts/ci.sh tsdb-smoke runs this sweep)\n"
    "\n"
    "  control  <sweep|status> [--policy static|reactive|predictive]\n"
    "           [--mult n] [--duration s] [--seed n] [--threads n]\n"
    "           [--log-out f.log] [--metrics-out m.json]\n"
    "           [--trace-out t.json] [--metrics-table]\n"
    "      closed-loop overload resilience (DESIGN.md §16): one\n"
    "      deterministic virtual-time cell at --mult times nominal\n"
    "      capacity under the standard chaos plan (shard kill,\n"
    "      replication delay, tsdb read errors). The feedback\n"
    "      controller scrapes the timeline/SLO signals every tick and\n"
    "      actuates admission token rate, shard count, channel\n"
    "      capacity, and the brownout ladder (full -> cached-only ->\n"
    "      coarse-percentile -> stale-tolerant -> shed). `sweep` runs\n"
    "      the cell, prints the outcome table, and writes the per-tick\n"
    "      decision log to --log-out — the log, digest, and result\n"
    "      checksum are byte-identical for any --threads value at a\n"
    "      fixed --seed (scripts/ci.sh control-smoke cmp-gates this);\n"
    "      for reactive/predictive at --mult >= 2 the run exits\n"
    "      nonzero unless the ladder engaged before the first shed.\n"
    "      `status` prints the resolved cell plan (policy, capacity\n"
    "      model, chaos windows, SLO) without running it\n"
    "\n"
    "  tero_cli --help prints this text; unknown flags exit nonzero.\n";

/// Unknown-flag rejection shared by every subcommand: anything that starts
/// with "--" and is not in the subcommand's flag table is an error, not a
/// positional argument.
int unknown_flag(const std::string& command, const std::string& arg) {
  std::cerr << "tero_cli " << command << ": unknown flag " << arg << "\n\n"
            << kUsage;
  return 2;
}

/// The observability flags every telemetry-capable subcommand shares
/// (simulate, loadtest, stream, chaos, obs): one spelling, one parser, one
/// writer, so `--metrics-out` means the same thing everywhere.
struct ObsFlags {
  std::string metrics_out;  ///< registry JSON dump
  std::string trace_out;    ///< Chrome trace-event JSON
  bool metrics_table = false;  ///< registry table on stdout
};

/// Try to consume argv[i] (plus its value, if any) as a shared obs flag.
/// Returns the number of argv slots consumed (0 = not an obs flag), or -1
/// when the flag is present but its file argument is missing (the error is
/// already printed).
int eat_obs_flag(int argc, char** argv, int i, ObsFlags& flags) {
  const std::string arg = argv[i];
  if (arg == "--metrics-out" || arg == "--trace-out") {
    if (i + 1 >= argc) {
      std::cerr << arg << " needs a file argument\n";
      return -1;
    }
    (arg == "--metrics-out" ? flags.metrics_out : flags.trace_out) =
        argv[i + 1];
    return 2;
  }
  if (arg == "--metrics-table") {
    flags.metrics_table = true;
    return 1;
  }
  return 0;
}

/// The full shared-flag set: the obs trio plus --seed and --threads, which
/// every scenario-driving subcommand used to parse on its own. The *_set
/// markers let each subcommand keep its historical default (often a
/// positional argument) when the flag is absent; when both are given the
/// flag wins.
struct CommonFlags {
  ObsFlags obs;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::size_t threads = 0;
  bool threads_set = false;
};

/// Try to consume argv[i] (plus its value) as a shared flag. Same contract
/// as eat_obs_flag: returns slots consumed (0 = not a shared flag), or -1
/// when a value is missing (error already printed).
int eat_common_flag(int argc, char** argv, int i, CommonFlags& flags) {
  if (const int eaten = eat_obs_flag(argc, argv, i, flags.obs); eaten != 0) {
    return eaten;
  }
  const std::string arg = argv[i];
  if (arg == "--seed" || arg == "--threads") {
    if (i + 1 >= argc) {
      std::cerr << arg << " needs a value\n";
      return -1;
    }
    if (arg == "--seed") {
      flags.seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
      flags.seed_set = true;
    } else {
      flags.threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      flags.threads_set = true;
    }
    return 2;
  }
  return 0;
}

/// Emit the outputs the shared flags requested. Returns nonzero on I/O
/// failure (missing output directory, unwritable file).
int write_obs_outputs(const ObsFlags& flags,
                      const obs::MetricsRegistry& registry,
                      const obs::TraceRecorder& recorder) {
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) {
      std::cerr << "cannot open " << flags.metrics_out << "\n";
      return 1;
    }
    registry.write_json(out);
    std::cout << "wrote " << registry.size() << " metrics to "
              << flags.metrics_out << "\n";
  }
  if (flags.metrics_table) registry.write_table(std::cout);
  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    if (!out) {
      std::cerr << "cannot open " << flags.trace_out << "\n";
      return 1;
    }
    recorder.write_json(out);
    std::cout << "wrote " << recorder.span_count() << " trace events to "
              << flags.trace_out << "\n";
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  // Split --flags (accepted anywhere) from the positional arguments.
  CommonFlags flags;
  std::string snapshot_out;
  bool full_ocr = false;
  bool print_digest = false;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--snapshot-out") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a file argument\n";
        return 1;
      }
      snapshot_out = argv[++i];
    } else if (arg == "--full-ocr") {
      full_ocr = true;
    } else if (arg == "--digest") {
      print_digest = true;
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("simulate", arg);
    } else {
      positional.push_back(arg);
    }
  }
  const std::string out_dir = !positional.empty() ? positional[0] : "/tmp";
  const std::size_t streamers =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1].c_str()))
          : 300;
  const int days = positional.size() > 2 ? std::atoi(positional[2].c_str())
                                         : 7;
  const std::size_t threads =
      flags.threads_set
          ? flags.threads
          : (positional.size() > 3
                 ? static_cast<std::size_t>(std::atoi(positional[3].c_str()))
                 : 0);

  synth::WorldConfig world_config;
  world_config.seed = flags.seed_set ? flags.seed : 1;
  world_config.num_streamers = streamers;
  world_config.p_twitter = 0.8;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = days;
  synth::SessionGenerator generator(world, behavior, 2);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.threads = threads;  // 0 = all cores; the output is thread-invariant
  config.use_full_ocr = full_ocr;

  // Observability sinks are created only when requested; the pipeline takes
  // raw pointers and never reads them back (output is identical either way).
  const bool want_metrics =
      !flags.obs.metrics_out.empty() || flags.obs.metrics_table;
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  if (want_metrics) config.metrics = &registry;
  if (!flags.obs.trace_out.empty()) config.trace = &recorder;

  // --snapshot-out: attach the serving layer's publish hook so the run ends
  // with an atomically published snapshot epoch, then persist that epoch.
  serve::ServeConfig serve_config;
  serve_config.metrics = config.metrics;
  serve_config.trace = config.trace;
  serve::QueryService service(serve_config);
  if (!snapshot_out.empty()) {
    config.on_dataset = serve::publish_hook(service);
  }

  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  std::ofstream measurements(out_dir + "/tero_measurements.csv");
  std::ofstream aggregates(out_dir + "/tero_aggregates.csv");
  const auto measurement_rows =
      core::export_measurements(dataset, measurements, config.metrics);
  const auto aggregate_rows =
      core::export_aggregates(dataset, aggregates, config.metrics);
  std::cout << "streamers " << dataset.funnel.streamers_total << ", located "
            << dataset.funnel.streamers_located << ", thumbnails "
            << dataset.funnel.thumbnails << "\n";
  std::cout << "wrote " << measurement_rows << " measurements and "
            << aggregate_rows << " aggregates to " << out_dir << "\n";
  if (print_digest) {
    // Hex fingerprint of the full dataset surface — two runs printing the
    // same digest produced bit-identical output (the SIMD/scalar gate).
    std::cout << "digest " << std::hex << std::setw(16) << std::setfill('0')
              << core::dataset_digest(dataset) << std::dec << "\n";
  }

  if (!snapshot_out.empty()) {
    const serve::SnapshotPtr snapshot = service.snapshot();
    if (snapshot == nullptr) {
      std::cerr << "pipeline published no snapshot\n";
      return 1;
    }
    std::ofstream out(snapshot_out, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << snapshot_out << "\n";
      return 1;
    }
    serve::save_snapshot(*snapshot, out);
    std::cout << "wrote snapshot epoch " << snapshot->epoch() << " ("
              << snapshot->size() << " entries) to " << snapshot_out << "\n";
  }

  return write_obs_outputs(flags.obs, registry, recorder);
}

int cmd_analyze(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) return unknown_flag("analyze", arg);
  }
  if (argc < 3) {
    std::cerr << "usage: tero_cli analyze <measurements.csv>\n";
    return 1;
  }
  std::ifstream input(argv[2]);
  if (!input) {
    std::cerr << "cannot open " << argv[2] << "\n";
    return 1;
  }
  const auto streams = core::import_measurements(input);
  // Group by {pseudonym, game} and clean, exactly as the pipeline would.
  std::map<std::pair<std::string, std::string>, std::vector<analysis::Stream>>
      grouped;
  for (const auto& stream : streams) {
    grouped[{stream.streamer, stream.game}].push_back(stream);
  }
  util::Table table({"pseudonym", "game", "points", "retained", "spikes",
                     "glitch segs", "spike fraction"});
  std::size_t shown = 0;
  analysis::AnalysisConfig config;
  for (auto& [key, streamer_streams] : grouped) {
    const auto clean =
        analysis::clean_streamer_game(std::move(streamer_streams), config);
    if (clean.points_in < 10) continue;
    table.add_row({key.first, key.second, std::to_string(clean.points_in),
                   std::to_string(clean.points_retained),
                   std::to_string(clean.spikes.size()),
                   std::to_string(clean.glitch_segments),
                   util::fmt_percent(clean.spike_fraction(), 1)});
    if (++shown >= 25) break;
  }
  table.print(std::cout);
  std::cout << "(" << grouped.size() << " {streamer, game} tuples total; "
            << "first " << shown << " with >=10 points shown)\n";
  return 0;
}

int cmd_report(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) return unknown_flag("report", arg);
  }
  if (argc < 4) {
    std::cerr << "usage: tero_cli report <measurements.csv> <game>\n";
    return 1;
  }
  std::ifstream input(argv[2]);
  if (!input) {
    std::cerr << "cannot open " << argv[2] << "\n";
    return 1;
  }
  const std::string game = argv[3];
  const auto streams = core::import_measurements(input);
  std::map<std::string, std::vector<double>> per_streamer;
  for (const auto& stream : streams) {
    if (stream.game != game) continue;
    for (const auto& point : stream.points) {
      per_streamer[stream.streamer].push_back(point.latency_ms);
    }
  }
  if (per_streamer.empty()) {
    std::cerr << "no measurements for game: " << game << "\n";
    return 1;
  }
  util::Table table({"pseudonym", "points", "p5|p25[p50]p75|p95 [ms]"});
  std::size_t shown = 0;
  for (const auto& [pseudonym, values] : per_streamer) {
    if (values.size() < 10) continue;
    const auto box = stats::boxplot(values);
    table.add_row({pseudonym, std::to_string(values.size()),
                   util::fmt_double(box.p5, 0) + " | " +
                       util::fmt_double(box.p25, 0) + " [" +
                       util::fmt_double(box.p50, 0) + "] " +
                       util::fmt_double(box.p75, 0) + " | " +
                       util::fmt_double(box.p95, 0)});
    if (++shown >= 20) break;
  }
  table.print(std::cout);
  std::cout << "(" << per_streamer.size() << " streamers for " << game
            << ")\n";
  return 0;
}

serve::SnapshotPtr load_snapshot_file(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) {
    std::cerr << "cannot open " << path << "\n";
    return nullptr;
  }
  try {
    return serve::load_snapshot(input);
  } catch (const std::exception& error) {
    std::cerr << "cannot load snapshot " << path << ": " << error.what()
              << "\n";
    return nullptr;
  }
}

int cmd_query(int argc, char** argv) {
  CommonFlags flags;
  std::string tsdb_dir;
  std::int64_t from_ms = 0;
  std::int64_t to_ms = -1;  // default: sealed frontier + one window
  std::int64_t window_ms = 86'400'000;
  std::string agg_spec = "p99";
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--tsdb-dir" || arg == "--from" || arg == "--to" ||
        arg == "--window" || arg == "--agg") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      const std::string value = argv[++i];
      if (arg == "--tsdb-dir") {
        tsdb_dir = value;
      } else if (arg == "--from") {
        from_ms = std::atoll(value.c_str());
      } else if (arg == "--to") {
        to_ms = std::atoll(value.c_str());
      } else if (arg == "--window") {
        window_ms = std::atoll(value.c_str());
      } else {
        agg_spec = value;
      }
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("query", arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 3) {
    std::cerr << "usage: tero_cli query <snapshot> point <game> <country> "
                 "[region] [city]\n"
                 "       tero_cli query <snapshot> topk <game> [k]\n"
                 "       tero_cli query <snapshot> range <game> <country> "
                 "[region] [city]\n"
                 "                --tsdb-dir dir [--from ms] [--to ms] "
                 "[--window ms]\n"
                 "                [--agg count|mean|p<pct>|drift]\n";
    return 1;
  }
  const std::string mode = positional[1];

  // The range mode answers from a persisted tiered store; it must exist
  // before the service is constructed (ServeConfig holds the pointer).
  std::unique_ptr<tsdb::TimeSeriesStore> tsdb_store;
  if (mode == "range") {
    if (tsdb_dir.empty()) {
      std::cerr << "query range needs --tsdb-dir (see `stream "
                   "--tsdb-dir`)\n";
      return 1;
    }
    tsdb::TsdbConfig tsdb_config;
    tsdb_config.dir = tsdb_dir;
    try {
      tsdb_store = std::make_unique<tsdb::TimeSeriesStore>(tsdb_config);
    } catch (const std::exception& error) {
      std::cerr << "cannot open tsdb at " << tsdb_dir << ": " << error.what()
                << "\n";
      return 1;
    }
  }

  const serve::SnapshotPtr snapshot = load_snapshot_file(positional[0]);
  if (snapshot == nullptr) return 1;
  const bool want_metrics =
      !flags.obs.metrics_out.empty() || flags.obs.metrics_table;
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  serve::ServeConfig serve_config;
  if (want_metrics) serve_config.metrics = &registry;
  if (!flags.obs.trace_out.empty()) {
    serve_config.trace = &recorder;
    serve_config.exemplar_seed = flags.seed_set ? flags.seed : 1;
  }
  serve_config.tsdb = tsdb_store.get();
  serve::QueryService service(serve_config);
  service.publish(snapshot);

  serve::Query query;
  query.game = positional[2];
  if (mode == "topk") {
    query.kind = serve::QueryKind::kTopK;
    query.k = positional.size() > 3
                  ? static_cast<std::size_t>(std::atoi(positional[3].c_str()))
                  : 5;
    const auto response = service.query(query);
    if (response.status != serve::QueryStatus::kOk) {
      std::cerr << "no locations with data for game: " << query.game << "\n";
      return 1;
    }
    util::Table table({"rank", "location", "p95 [ms]"});
    for (std::size_t i = 0; i < response.top.size(); ++i) {
      table.add_row({std::to_string(i + 1), response.top[i].location,
                     util::fmt_double(response.top[i].value, 1)});
    }
    table.print(std::cout);
    std::cout << "(epoch " << response.epoch << ")\n";
    return write_obs_outputs(flags.obs, registry, recorder);
  }
  if (mode != "point" && mode != "range") {
    std::cerr << "unknown query mode: " << mode
              << " (want point, topk, or range)\n";
    return 1;
  }
  if (positional.size() < 4) {
    std::cerr << mode << " queries need at least <game> <country>\n";
    return 1;
  }
  query.location.country = positional[3];
  if (positional.size() > 4) query.location.region = positional[4];
  if (positional.size() > 5) query.location.city = positional[5];

  if (mode == "range") {
    if (agg_spec == "count") {
      query.kind = serve::QueryKind::kRangeCount;
    } else if (agg_spec == "mean") {
      query.kind = serve::QueryKind::kRangeMean;
    } else if (agg_spec == "drift") {
      query.kind = serve::QueryKind::kRangeDrift;
      query.param = 99.0;
    } else if (agg_spec.size() > 1 && agg_spec[0] == 'p') {
      query.kind = serve::QueryKind::kRangePercentile;
      query.param = std::atof(agg_spec.c_str() + 1);
    } else {
      std::cerr << "--agg must be count, mean, p<pct>, or drift; got "
                << agg_spec << "\n";
      return 1;
    }
    query.t0_ms = from_ms;
    query.t1_ms =
        to_ms >= 0 ? to_ms : tsdb_store->sealed_until() + window_ms;
    query.window_ms = window_ms;

    serve::QueryResponse response;
    try {
      response = service.query(query);
    } catch (const std::invalid_argument& error) {
      std::cerr << "bad range query: " << error.what() << "\n";
      return 1;
    }
    if (response.status == serve::QueryStatus::kNotFound) {
      std::cerr << "no history for {" << query.location.to_string() << ", "
                << query.game << "} in " << tsdb_dir << "\n";
      return 1;
    }
    if (response.status != serve::QueryStatus::kOk) {
      std::cerr << "range query unavailable\n";
      return 1;
    }
    if (query.kind == serve::QueryKind::kRangeDrift) {
      std::cout << query.game << " @ " << query.location.to_string()
                << ": week-over-week p99 drift at t=" << query.t1_ms << ": "
                << util::fmt_double(response.value, 2) << " ms\n";
      return write_obs_outputs(flags.obs, registry, recorder);
    }
    util::Table table({"window start [ms]", "count", agg_spec});
    for (const tsdb::RangePoint& point : response.series) {
      table.add_row({std::to_string(point.t_ms), std::to_string(point.count),
                     util::fmt_double(point.value, 2)});
    }
    table.print(std::cout);
    std::cout << query.game << " @ " << query.location.to_string() << ": "
              << response.series.size() << " windows of " << window_ms
              << " ms over [" << query.t0_ms << ", " << query.t1_ms
              << ")\n";
    return write_obs_outputs(flags.obs, registry, recorder);
  }

  // One batch, all kinds: the boxplot a consumer dashboard would render.
  std::vector<serve::Query> batch;
  serve::Query q = query;
  q.kind = serve::QueryKind::kCount;
  batch.push_back(q);
  q.kind = serve::QueryKind::kMean;
  batch.push_back(q);
  for (const double pct : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    q.kind = serve::QueryKind::kPercentile;
    q.param = pct;
    batch.push_back(q);
  }
  const auto responses = service.query_batch(batch);
  if (responses[0].status != serve::QueryStatus::kOk) {
    std::cerr << "no aggregate for {" << query.location.to_string() << ", "
              << query.game << "}\n";
    return 1;
  }
  std::cout << query.game << " @ " << query.location.to_string() << "\n"
            << "  samples " << static_cast<std::size_t>(responses[0].value)
            << ", mean " << util::fmt_double(responses[1].value, 1)
            << " ms\n  p5|p25[p50]p75|p95: "
            << util::fmt_double(responses[2].value, 0) << " | "
            << util::fmt_double(responses[3].value, 0) << " ["
            << util::fmt_double(responses[4].value, 0) << "] "
            << util::fmt_double(responses[5].value, 0) << " | "
            << util::fmt_double(responses[6].value, 0) << "  (epoch "
            << responses[0].epoch << ")\n";
  return write_obs_outputs(flags.obs, registry, recorder);
}

int cmd_loadtest(int argc, char** argv) {
  serve::LoadGenConfig load;
  serve::ServeConfig serve_config;
  CommonFlags flags;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--zipf" || arg == "--open") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      const double value = std::atof(argv[++i]);
      if (arg == "--zipf") {
        load.zipf_s = value;
      } else {
        load.offered_qps = value;
      }
    } else if (arg == "--admit") {
      if (i + 2 >= argc) {
        std::cerr << "--admit needs <rate_qps> <burst>\n";
        return 1;
      }
      serve_config.admission_rate_qps = std::atof(argv[++i]);
      serve_config.admission_burst = std::atof(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("loadtest", arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    std::cerr << "usage: tero_cli loadtest <snapshot> [queries] [threads] "
                 "[shards]\n                [--seed n] [--zipf s] [--open "
                 "qps] [--admit rate burst]\n";
    return 1;
  }
  const serve::SnapshotPtr snapshot = load_snapshot_file(positional[0]);
  if (snapshot == nullptr) return 1;
  if (positional.size() > 1) {
    load.queries = static_cast<std::size_t>(std::atoi(positional[1].c_str()));
  }
  if (flags.seed_set) load.seed = flags.seed;
  load.threads =
      flags.threads_set
          ? flags.threads
          : (positional.size() > 2
                 ? static_cast<std::size_t>(std::atoi(positional[2].c_str()))
                 : 0);
  if (positional.size() > 3) {
    serve_config.shards =
        static_cast<std::size_t>(std::atoi(positional[3].c_str()));
  }

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  serve_config.metrics = &registry;
  if (!flags.obs.trace_out.empty()) {
    serve_config.trace = &recorder;
    // Tracing implies exemplar capture: query spans and the latency
    // histogram's exemplars share the same span ids (query index + 1).
    serve_config.exemplar_seed = load.seed;
  }
  serve::QueryService service(serve_config);
  service.publish(snapshot);

  // The loadgen-owned telemetry (tero.loadgen.* counters, deterministic
  // synthetic latency histogram) is recorded whenever any obs output was
  // requested; the loadtest's printed report is unchanged either way.
  if (!flags.obs.metrics_out.empty() || flags.obs.metrics_table ||
      !flags.obs.trace_out.empty()) {
    load.metrics = &registry;
    load.exemplar_seed = load.seed;
  }

  const std::size_t threads = util::ThreadPool::resolve(load.threads);
  util::ThreadPool pool(threads);
  const auto report =
      serve::run_loadtest(service, load, threads > 1 ? &pool : nullptr);

  std::cout << "loadtest: " << report.issued << " queries, " << threads
            << " threads, " << service.shard_count() << " shards, epoch "
            << snapshot->epoch() << "\n";
  std::cout << "  ok " << report.ok << ", not_found " << report.not_found
            << ", shed " << report.shed << " ("
            << util::fmt_percent(
                   report.issued > 0
                       ? static_cast<double>(report.shed) /
                             static_cast<double>(report.issued)
                       : 0.0,
                   1)
            << ")\n";
  std::cout << "  wall " << util::fmt_double(report.wall_ms, 1) << " ms, "
            << util::fmt_double(report.achieved_qps / 1e3, 1) << " kqps, "
            << "cache hits " << service.cache_hits() << " / misses "
            << service.cache_misses() << "\n";
  std::cout << "  service latency p50/p95/p99: "
            << util::fmt_double(report.p50_ms * 1e3, 1) << " / "
            << util::fmt_double(report.p95_ms * 1e3, 1) << " / "
            << util::fmt_double(report.p99_ms * 1e3, 1) << " us\n";
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(report.checksum));
  std::cout << "  result checksum " << checksum
            << " (seed " << load.seed
            << "; identical for any thread count)\n";
  return write_obs_outputs(flags.obs, registry, recorder);
}

int cmd_stream(int argc, char** argv) {
  stream::StreamConfig config;
  CommonFlags flags;
  std::string snapshot_out;
  std::string timeline_out;
  std::string tsdb_dir;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    const bool takes_value =
        arg == "--window" || arg == "--lateness" || arg == "--publish-every" ||
        arg == "--checkpoint-dir" || arg == "--checkpoint-every" ||
        arg == "--crash-after" || arg == "--max-delay" || arg == "--rate" ||
        arg == "--burst" || arg == "--capacity" || arg == "--snapshot-out" ||
        arg == "--timeline-out" || arg == "--tsdb-dir";
    if (takes_value) {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      const std::string value = argv[++i];
      if (arg == "--window") {
        config.window_size_s = std::atof(value.c_str());
      } else if (arg == "--lateness") {
        config.allowed_lateness_s = std::atof(value.c_str());
      } else if (arg == "--publish-every") {
        config.publish_every_windows =
            static_cast<std::size_t>(std::atoi(value.c_str()));
      } else if (arg == "--checkpoint-dir") {
        config.checkpoint_dir = value;
      } else if (arg == "--checkpoint-every") {
        config.checkpoint_every_windows =
            static_cast<std::size_t>(std::atoi(value.c_str()));
      } else if (arg == "--crash-after") {
        config.crash_after =
            static_cast<std::uint64_t>(std::atoll(value.c_str()));
      } else if (arg == "--max-delay") {
        config.max_delivery_delay_s = std::atof(value.c_str());
      } else if (arg == "--rate") {
        config.download_rate = std::atof(value.c_str());
      } else if (arg == "--burst") {
        config.download_burst = std::atof(value.c_str());
      } else if (arg == "--capacity") {
        config.channel_capacity =
            static_cast<std::size_t>(std::atoi(value.c_str()));
      } else if (arg == "--snapshot-out") {
        snapshot_out = value;
      } else if (arg == "--timeline-out") {
        timeline_out = value;
      } else {
        tsdb_dir = value;
      }
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("stream", arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (!config.checkpoint_dir.empty() &&
      config.checkpoint_every_windows == 0) {
    config.checkpoint_every_windows = 4;
  }
  if (config.checkpoint_dir.empty() && config.checkpoint_every_windows > 0) {
    std::cerr << "--checkpoint-every needs --checkpoint-dir\n";
    return 1;
  }

  // The exact scenario `simulate` runs, so the two paths are comparable.
  const std::size_t streamers =
      !positional.empty()
          ? static_cast<std::size_t>(std::atoi(positional[0].c_str()))
          : 300;
  const int days = positional.size() > 1 ? std::atoi(positional[1].c_str())
                                         : 7;
  config.tero.threads =
      flags.threads_set
          ? flags.threads
          : (positional.size() > 2
                 ? static_cast<std::size_t>(std::atoi(positional[2].c_str()))
                 : 0);

  synth::WorldConfig world_config;
  world_config.seed = flags.seed_set ? flags.seed : 1;
  world_config.num_streamers = streamers;
  world_config.p_twitter = 0.8;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = days;
  synth::SessionGenerator generator(world, behavior, 2);
  const auto streams = generator.generate();

  const bool want_metrics = !flags.obs.metrics_out.empty() ||
                            flags.obs.metrics_table || !timeline_out.empty();
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  if (want_metrics) config.tero.metrics = &registry;
  if (!flags.obs.trace_out.empty()) config.tero.trace = &recorder;

  // --timeline-out: scrape the sink-owned tero.stream.* series on the
  // event-time virtual clock (the sink advances the timeline past each
  // arrival, DESIGN.md §13). Only sink-written series are scraped — queue
  // depths and backpressure stalls are written by other stages and their
  // values at a scrape boundary depend on thread interleaving.
  obs::TimelineConfig timeline_config;
  timeline_config.scrape_every_ms = 60'000;  // one virtual minute
  timeline_config.prefixes = {
      "tero.stream.events",      "tero.stream.late",
      "tero.stream.windows_closed", "tero.stream.checkpoints",
      "tero.stream.epochs",      "tero.stream.watermark",
  };
  obs::MetricsTimeline timeline(registry, timeline_config);
  if (!timeline_out.empty()) config.timeline = &timeline;

  serve::ServeConfig serve_config;
  serve_config.metrics = config.tero.metrics;
  serve_config.trace = config.tero.trace;
  serve::QueryService service(serve_config);
  config.service = &service;

  // --tsdb-dir: every closed window's mean lands in a durable tiered store
  // (one sample per {location, game} per window), which `query range`
  // answers from after the run.
  std::unique_ptr<tsdb::TimeSeriesStore> tsdb_store;
  if (!tsdb_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(tsdb_dir, ec);
    tsdb::TsdbConfig tsdb_config;
    tsdb_config.dir = tsdb_dir;
    tsdb_config.metrics = config.tero.metrics;
    try {
      tsdb_store = std::make_unique<tsdb::TimeSeriesStore>(tsdb_config);
    } catch (const std::exception& error) {
      std::cerr << "cannot open tsdb at " << tsdb_dir << ": " << error.what()
                << "\n";
      return 1;
    }
    config.tsdb = tsdb_store.get();
  }

  stream::StreamPipeline pipeline(std::move(config));
  const stream::StreamResult result = pipeline.run(world, streams);

  if (result.resumed_from > 0) {
    std::cout << "resumed from checkpoint " << result.resumed_from << "\n";
  }
  std::cout << "stream: " << result.events << " measurements ("
            << result.thumbnails << " thumbnails), " << result.windows_closed
            << " windows closed, " << result.late_events << " late, "
            << result.epochs_published << " live epochs, "
            << result.checkpoints_written << " checkpoints\n";
  std::cout << "  backpressure stalls "
            << result.to_extract.stalls + result.to_clean.stalls +
                   result.to_sink.stalls
            << " (extract " << result.to_extract.stalls << ", clean "
            << result.to_clean.stalls << ", sink " << result.to_sink.stalls
            << "), download throttled " << result.download_throttled << "\n";
  // The timeline is flushed by the pipeline even on a crashed run, so the
  // partial history is written either way.
  const auto write_timeline = [&]() -> int {
    if (timeline_out.empty()) return 0;
    std::ofstream out(timeline_out);
    if (!out) {
      std::cerr << "cannot open " << timeline_out << "\n";
      return 1;
    }
    timeline.write_json(out);
    std::cout << "wrote " << timeline.snapshot_count()
              << " timeline snapshots to " << timeline_out << "\n";
    return 0;
  };
  if (result.crashed) {
    std::cout << "crashed after checkpoint "
              << pipeline.config().crash_after
              << " (fault injection); rerun with the same --checkpoint-dir "
                 "to resume\n";
    return write_timeline();
  }
  std::cout << "final epoch " << result.final_epoch << ": "
            << result.final_entries.size() << " {location, game} entries, "
            << result.dataset.funnel.retained << " retained points\n";
  if (tsdb_store != nullptr) {
    const tsdb::TimeSeriesStore::Stats tstats = tsdb_store->stats();
    std::cout << "  tsdb " << tsdb_dir << ": "
              << tstats.head_samples + tstats.segment_samples
              << " window samples, " << tstats.segments << " segments, "
              << tstats.raw_bytes << " B raw -> " << tstats.compressed_bytes
              << " B compressed\n";
  }

  if (!snapshot_out.empty()) {
    std::ofstream out(snapshot_out, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << snapshot_out << "\n";
      return 1;
    }
    const serve::Snapshot snapshot(result.final_epoch, result.final_entries);
    serve::save_snapshot(snapshot, out);
    std::cout << "wrote snapshot epoch " << snapshot.epoch() << " ("
              << snapshot.size() << " entries) to " << snapshot_out << "\n";
  }
  if (const int rc = write_timeline(); rc != 0) return rc;
  return write_obs_outputs(flags.obs, registry, recorder);
}

int cmd_chaos(int argc, char** argv) {
  std::string plan_spec = "extract.stream=error@0.4:fails=2";
  CommonFlags flags;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--plan") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      plan_spec = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("chaos", arg);
    } else {
      positional.push_back(arg);
    }
  }
  const std::size_t threads = flags.threads;
  // --seed shifts the whole sweep: seeds run [base, base + count).
  const std::uint64_t seed_base = flags.seed_set ? flags.seed : 1;
  const std::uint64_t seeds =
      !positional.empty()
          ? static_cast<std::uint64_t>(std::atoll(positional[0].c_str()))
          : 10;
  const std::size_t streamers =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1].c_str()))
          : 60;
  const int days =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 2;

  std::size_t failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::cout << "  FAIL: " << what << "\n";
    }
  };

  // Phase 1+2: pipeline under transient and permanent fault plans. The
  // acceptance contract (DESIGN.md §11): transient faults — rules whose
  // fail_attempts fit inside the retry budget — leave the dataset
  // bit-identical to a fault-free run; permanent faults quarantine
  // streamers explicitly (tero.funnel.quarantined) instead of hanging,
  // crashing, or silently dropping data.
  std::cout << "chaos: " << seeds << " seeds, " << streamers
            << " streamers, " << days << " days, plan \"" << plan_spec
            << "\"\n";
  fault::FaultPlan plan;
  try {
    plan = fault::FaultPlan::parse(plan_spec);
  } catch (const std::exception& error) {
    std::cerr << "bad --plan: " << error.what() << "\n";
    return 1;
  }
  for (std::uint64_t seed = seed_base; seed < seed_base + seeds; ++seed) {
    synth::WorldConfig world_config;
    world_config.seed = seed;
    world_config.num_streamers = streamers;
    world_config.p_twitter = 0.8;
    const synth::World world(world_config);
    synth::BehaviorConfig behavior;
    behavior.days = days;
    synth::SessionGenerator generator(world, behavior, seed + 1);
    const auto streams = generator.generate();

    core::TeroConfig config;
    config.threads = threads;
    const core::Dataset baseline =
        core::Pipeline(config).run(world, streams);
    const std::uint64_t baseline_digest = core::dataset_digest(baseline);

    fault::FaultInjector transient(fault::FaultPlan::parse(plan_spec, seed));
    config.injector = &transient;
    const core::Dataset faulted = core::Pipeline(config).run(world, streams);
    check(core::dataset_digest(faulted) == baseline_digest,
          "seed " + std::to_string(seed) +
              ": transient plan changed the dataset (digest mismatch)");
    check(faulted.funnel.quarantined == 0,
          "seed " + std::to_string(seed) +
              ": transient plan quarantined streamers");

    fault::FaultInjector permanent(
        fault::FaultPlan::parse("extract.stream=crash@0.5", seed));
    config.injector = &permanent;
    const core::Dataset degraded = core::Pipeline(config).run(world, streams);
    check(degraded.funnel.quarantined > 0,
          "seed " + std::to_string(seed) +
              ": permanent plan quarantined nobody");
    check(degraded.funnel.quarantined <= degraded.funnel.streamers_located,
          "seed " + std::to_string(seed) +
              ": quarantined more streamers than were located");
    check(degraded.funnel.thumbnails == baseline.funnel.thumbnails,
          "seed " + std::to_string(seed) +
              ": quarantine changed the thumbnail count (must only skip "
              "extraction)");
    check(degraded.funnel.visible < baseline.funnel.visible,
          "seed " + std::to_string(seed) +
              ": quarantine extracted quarantined streamers anyway");
    std::cout << "  seed " << seed << ": transient ok (digest match), "
              << degraded.funnel.quarantined << "/"
              << degraded.funnel.streamers_located
              << " quarantined under permanent plan\n";
  }

  // Phase 3: download simulator under CDN transport faults, KV write
  // faults, and a mid-run crash. The system must keep downloading (retry +
  // re-discovery), never orphan a streamer, and count every fault.
  for (std::uint64_t seed = seed_base; seed < seed_base + seeds; ++seed) {
    util::EventLoop loop;
    download::SimulatedCdn cdn(loop, util::Rng(seed * 2 + 1));
    constexpr int kStreamers = 8;
    const double horizon = 4 * 3600.0;
    for (int i = 0; i < kStreamers; ++i) {
      cdn.add_session({"s" + std::to_string(i), i * 15.0, horizon});
    }
    store::KvStore kv;
    obs::MetricsRegistry registry;
    fault::FaultInjector injector(
        fault::FaultPlan::parse("cdn.get=error@0.1;cdn.head=latency@0.05:"
                                "ms=500;kv.put=error@0.05",
                                seed),
        &registry);
    download::DownloadConfig config;
    config.num_downloaders = 2;
    config.metrics = &registry;
    config.injector = &injector;
    download::DownloadSystem system(loop, cdn, kv, config,
                                    util::Rng(seed * 2 + 2));
    system.start();
    loop.schedule_at(horizon / 2, [&system] { system.crash_and_recover(); });
    loop.run_until(horizon);

    check(!system.downloads().empty(),
          "download seed " + std::to_string(seed) + ": no downloads at all");
    bool post_crash = false;
    std::set<std::string> fetched;
    for (const auto& record : system.downloads()) {
      if (record.time > horizon / 2 + 900.0) post_crash = true;
      fetched.insert(record.streamer);
    }
    check(post_crash, "download seed " + std::to_string(seed) +
                          ": downloads stopped after the crash");
    check(fetched.size() == kStreamers,
          "download seed " + std::to_string(seed) + ": only " +
              std::to_string(fetched.size()) + "/" +
              std::to_string(kStreamers) +
              " streamers ever fetched (orphaned streamer)");
    const auto counter = [&registry](const char* name) {
      return registry.counter(std::string("tero.download.") + name).value();
    };
    check(injector.total_fired() > 0,
          "download seed " + std::to_string(seed) + ": plan never fired");
    check(counter("retries") > 0,
          "download seed " + std::to_string(seed) +
              ": injected errors but the system never retried");
    std::cout << "  download seed " << seed << ": "
              << system.downloads().size() << " downloads, "
              << injector.total_fired() << " faults fired, "
              << counter("retries") << " retries, " << counter("slow_responses")
              << " slow, " << counter("dropped_streamers") << " dropped\n";
  }

  // Phase 4: serve-shard flap. With a previous epoch published, a faulted
  // shard answers STALE{age} from the last good snapshot while its circuit
  // breaker opens; once the fault clears and the breaker's half-open probes
  // succeed, answers go back to fresh. With no previous epoch the shard is
  // explicitly kUnavailable — never a silent wrong answer, never a hang.
  {
    synth::WorldConfig world_config;
    world_config.seed = 1;
    world_config.num_streamers = streamers;
    world_config.p_twitter = 0.8;
    const synth::World world(world_config);
    synth::BehaviorConfig behavior;
    behavior.days = days;
    synth::SessionGenerator generator(world, behavior, 2);
    const auto streams = generator.generate();
    core::TeroConfig config;
    config.threads = threads;
    const core::Dataset dataset = core::Pipeline(config).run(world, streams);

    // SLO gate (DESIGN.md §13): the breaker's state gauge
    // tero.fault.breaker{endpoint=shard-0} is scraped on the same virtual
    // clock that drives the flap, and a multi-window burn-rate alert on
    // `value(...) < 1` must fire within one evaluation window of the
    // breaker opening. The gauge exists from service construction (the
    // breaker writes its initial closed state), so the SLO never reads an
    // absent series.
    obs::MetricsRegistry registry;
    obs::TimelineConfig timeline_config;
    timeline_config.scrape_every_ms = 1000;
    timeline_config.prefixes = {"tero.fault.breaker"};
    obs::MetricsTimeline timeline(registry, timeline_config);
    obs::SloTracker tracker;
    const std::string breaker_slo = tracker.add(
        "slo breaker: value(tero.fault.breaker{endpoint=shard-0}) < 1 "
        "over 10s window, budget 1%");
    tracker.attach(timeline);
    constexpr std::uint64_t kSloWindowMs = 10'000;

    fault::FaultInjector injector(
        fault::FaultPlan::parse("serve.shard-0=error@1:max=7"));
    serve::ServeConfig serve_config;
    serve_config.shards = 1;
    serve_config.injector = &injector;
    serve_config.metrics = &registry;
    serve::QueryService service(serve_config);
    const auto hook = serve::publish_hook(service);
    hook(dataset);  // epoch 1
    hook(dataset);  // epoch 2; epoch 1 becomes the degraded fallback
    const serve::SnapshotPtr snapshot = service.snapshot();
    check(snapshot != nullptr && snapshot->size() > 0,
          "serve: pipeline published an empty snapshot");
    serve::Query query;
    if (snapshot != nullptr && snapshot->size() > 0) {
      query.kind = serve::QueryKind::kCount;
      query.location = snapshot->entries()[0].location;
      query.game = snapshot->entries()[0].game;
      const auto fresh = [&] {
        fault::FaultInjector none(fault::FaultPlan{});
        serve::ServeConfig clean_config;
        clean_config.shards = 1;
        serve::QueryService clean(clean_config);
        serve::publish_hook(clean)(dataset);
        return clean.query_admitted(query);
      }();

      std::size_t stale_seen = 0;
      // Five failures trip the default breaker (failure_threshold = 5)...
      // (each query advances the SLO timeline to its virtual arrival time
      // first, so scrapes see the state as of the previous event).
      for (int i = 0; i < 5; ++i) {
        timeline.advance_to(static_cast<std::uint64_t>(100 * i));
        const auto r = service.query_admitted(query, /*now_s=*/0.1 * i);
        check(r.stale && r.stale_age == 1,
              "serve: faulted shard did not answer STALE{1}");
        check(r.status == fresh.status && r.value == fresh.value,
              "serve: degraded answer diverged from the last good epoch");
        if (r.stale) ++stale_seen;
      }
      // ...so this one is rejected by the open breaker (still degraded,
      // but the fault point is not even consulted).
      const std::uint64_t fired_before = injector.total_fired();
      timeline.advance_to(5'000);
      const auto rejected = service.query_admitted(query, 5.0);
      check(rejected.stale, "serve: open breaker did not degrade");
      check(injector.total_fired() == fired_before,
            "serve: open breaker consulted the fault point");
      // Two half-open probes still hit injected errors (fires 6 and 7)...
      timeline.advance_to(40'000);
      (void)service.query_admitted(query, 40.0);
      timeline.advance_to(80'000);
      (void)service.query_admitted(query, 80.0);
      // ...then the plan's max=7 is exhausted: two successful probes close
      // the breaker and answers are fresh again.
      timeline.advance_to(120'000);
      (void)service.query_admitted(query, 120.0);
      timeline.advance_to(121'000);
      const auto closed = service.query_admitted(query, 121.0);
      timeline.advance_to(122'000);
      const auto recovered = service.query_admitted(query, 122.0);
      check(!recovered.stale && recovered.status == fresh.status &&
                recovered.value == fresh.value && !closed.stale,
            "serve: shard did not recover after the fault plan drained");
      timeline.flush(122'000);

      // The breaker opened at t = 0.4 s; the burn-rate alert must exist
      // and must have fired within one evaluation window of that.
      check(tracker.fired(breaker_slo),
            "serve: breaker flap fired no SLO burn-rate alert");
      std::uint64_t first_fire_ms = 0;
      for (const auto& alert : tracker.alerts()) {
        if (alert.firing) {
          first_fire_ms = alert.t_ms;
          break;
        }
      }
      check(first_fire_ms > 0 && first_fire_ms <= 400 + kSloWindowMs,
            "serve: SLO alert fired later than one window after the flap");
      std::cout << "  serve: " << stale_seen
                << " STALE answers while flapping, fresh after recovery; "
                << "slo '" << breaker_slo << "' fired at t=" << first_fire_ms
                << " ms\n";
    }

    // Shared obs flags dump the phase's registry (breaker gauge, serve
    // telemetry); the trace output is empty unless future phases record.
    obs::TraceRecorder recorder;
    if (const int rc = write_obs_outputs(flags.obs, registry, recorder);
        rc != 0) {
      return rc;
    }

    // No previous epoch: degraded mode has nothing to serve from, so the
    // answer is an explicit kUnavailable.
    fault::FaultInjector injector2(
        fault::FaultPlan::parse("serve.shard-0=error@1:max=1"));
    serve::ServeConfig unavailable_config;
    unavailable_config.shards = 1;
    unavailable_config.injector = &injector2;
    serve::QueryService first_epoch(unavailable_config);
    serve::publish_hook(first_epoch)(dataset);
    const auto unavailable = first_epoch.query_admitted(query, 0.0);
    check(unavailable.status == serve::QueryStatus::kUnavailable,
          "serve: first-epoch shard fault must be kUnavailable, got "
          "something else");
  }

  if (failures > 0) {
    std::cout << "chaos: " << failures << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "chaos: all invariants held\n";
  return 0;
}

/// The self-contained scenario behind `obs report` / `obs export`: build a
/// world, run the batch pipeline with its publish hook, then drive the
/// deterministic load generator with the full telemetry stack armed —
/// registry, virtual-time timeline (tero.loadgen.* only, the deterministic
/// series), SLO tracker riding the scrape hook, and exemplar-armed
/// histograms keyed by query id.
struct ObsScenario {
  std::size_t streamers = 60;
  int days = 2;
  std::size_t queries = 20000;
  std::size_t threads = 0;
  std::uint64_t seed = 42;
  double open_qps = 0.0;
  std::vector<std::string> specs;  ///< SLO spec strings (--spec)
};

/// Window the report's rates/quantiles and the default SLOs use.
constexpr std::uint64_t kObsWindowMs = 10'000;

std::vector<std::string> default_obs_specs() {
  return {
      "slo latency: p99(tero.loadgen.latency_ms) < 15ms over 10s window, "
      "budget 5%",
      "slo degraded: rate(tero.loadgen.unavailable) < 1 over 10s window, "
      "budget 1%",
  };
}

int run_obs_scenario(const ObsScenario& opt, obs::MetricsRegistry& registry,
                     obs::MetricsTimeline& timeline, obs::SloTracker& tracker,
                     obs::TraceRecorder& recorder,
                     serve::LoadTestReport& report) {
  const std::vector<std::string> specs =
      opt.specs.empty() ? default_obs_specs() : opt.specs;
  for (const std::string& spec : specs) {
    try {
      tracker.add(spec);
    } catch (const std::exception& error) {
      std::cerr << "bad SLO spec \"" << spec << "\": " << error.what()
                << "\n";
      return 1;
    }
  }
  tracker.attach(timeline);

  synth::WorldConfig world_config;
  world_config.seed = 1;
  world_config.num_streamers = opt.streamers;
  world_config.p_twitter = 0.8;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = opt.days;
  synth::SessionGenerator generator(world, behavior, 2);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.threads = opt.threads;
  config.metrics = &registry;
  config.trace = &recorder;
  serve::ServeConfig serve_config;
  serve_config.metrics = &registry;
  serve_config.trace = &recorder;
  serve_config.exemplar_seed = opt.seed;  // arms tero.serve.query_ms
  serve::QueryService service(serve_config);
  config.on_dataset = serve::publish_hook(service);
  (void)core::Pipeline(config).run(world, streams);
  if (service.snapshot() == nullptr) {
    std::cerr << "pipeline published no snapshot\n";
    return 1;
  }

  serve::LoadGenConfig load;
  load.queries = opt.queries;
  load.threads = opt.threads;
  load.seed = opt.seed;
  load.offered_qps = opt.open_qps;
  load.metrics = &registry;
  load.timeline = &timeline;
  load.exemplar_seed = opt.seed + 0x5eed;
  const std::size_t threads = util::ThreadPool::resolve(opt.threads);
  util::ThreadPool pool(threads);
  report = serve::run_loadtest(service, load, threads > 1 ? &pool : nullptr);
  return 0;
}

int cmd_obs(int argc, char** argv) {
  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode != "report" && mode != "export") {
    std::cerr << "usage: tero_cli obs <report|export> [streamers] [days] "
                 "[queries] [threads]\n            [--seed n] [--open qps] "
                 "[--spec \"slo ...\"]...\n            [--prom f.prom] "
                 "[--json f.json] [--slo f.json]\n";
    return mode.empty() ? 1 : 2;
  }
  ObsScenario opt;
  CommonFlags flags;
  std::string prom_out;
  std::string json_out;
  std::string slo_out;
  std::vector<std::string> positional;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--open" || arg == "--spec" || arg == "--prom" ||
        arg == "--json" || arg == "--slo") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      const std::string value = argv[++i];
      if (arg == "--open") {
        opt.open_qps = std::atof(value.c_str());
      } else if (arg == "--spec") {
        opt.specs.push_back(value);
      } else if (arg == "--prom") {
        prom_out = value;
      } else if (arg == "--json") {
        json_out = value;
      } else {
        slo_out = value;
      }
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("obs", arg);
    } else {
      positional.push_back(arg);
    }
  }
  if (flags.seed_set) opt.seed = flags.seed;
  if (!positional.empty()) {
    opt.streamers =
        static_cast<std::size_t>(std::atoi(positional[0].c_str()));
  }
  if (positional.size() > 1) opt.days = std::atoi(positional[1].c_str());
  if (positional.size() > 2) {
    opt.queries = static_cast<std::size_t>(std::atoi(positional[2].c_str()));
  }
  if (positional.size() > 3) {
    opt.threads = static_cast<std::size_t>(std::atoi(positional[3].c_str()));
  }
  if (flags.threads_set) opt.threads = flags.threads;
  if (mode == "export" && prom_out.empty() && json_out.empty() &&
      slo_out.empty()) {
    std::cerr << "obs export needs at least one of --prom/--json/--slo\n";
    return 1;
  }

  obs::MetricsRegistry registry;
  obs::TimelineConfig timeline_config;
  timeline_config.prefixes = {"tero.loadgen."};
  obs::MetricsTimeline timeline(registry, timeline_config);
  obs::SloTracker tracker;
  obs::TraceRecorder recorder;
  serve::LoadTestReport report;
  if (const int rc = run_obs_scenario(opt, registry, timeline, tracker,
                                      recorder, report);
      rc != 0) {
    return rc;
  }

  // Re-emit every elected exemplar into the trace as an instant, so the
  // metric -> span link is visible from the trace side too.
  if (!flags.obs.trace_out.empty()) {
    for (const auto& [name, hist] : registry.histograms()) {
      for (const obs::Exemplar& exemplar : hist->exemplars()) {
        if (exemplar.valid()) {
          recorder.add_exemplar_instant(name, exemplar.span_id,
                                        exemplar.value);
        }
      }
    }
  }

  if (mode == "report") {
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(report.checksum));
    std::cout << "obs report: " << report.issued << " queries (seed "
              << opt.seed << ", checksum " << checksum << "), "
              << timeline.snapshot_count() << " timeline snapshots @ "
              << timeline.scrape_interval_ms() << " ms\n";

    // Timeline-derived view of the deterministic loadgen series.
    util::Table series({"series", "total", "increase (10s)", "rate/s (10s)"});
    for (const auto& [name, counter] : registry.counters()) {
      if (name.rfind("tero.loadgen.", 0) != 0) continue;
      series.add_row(
          {name, std::to_string(timeline.counter_total(name)),
           util::fmt_double(timeline.increase(name, kObsWindowMs), 0),
           util::fmt_double(timeline.rate(name, kObsWindowMs), 1)});
    }
    series.print(std::cout);
    std::cout << "latency (tero.loadgen.latency_ms, trailing 10s): p50 "
              << util::fmt_double(
                     timeline.quantile("tero.loadgen.latency_ms", 0.50,
                                       kObsWindowMs),
                     2)
              << " / p90 "
              << util::fmt_double(
                     timeline.quantile("tero.loadgen.latency_ms", 0.90,
                                       kObsWindowMs),
                     2)
              << " / p99 "
              << util::fmt_double(
                     timeline.quantile("tero.loadgen.latency_ms", 0.99,
                                       kObsWindowMs),
                     2)
              << " ms\n";

    tracker.write_table(std::cout);
    std::cout << tracker.alerts().size() << " alert event(s) in the log\n";

    // p99 bucket -> exemplar -> span: the "which request was that" jump.
    for (const auto& [name, hist] : registry.histograms()) {
      if (name != "tero.loadgen.latency_ms") continue;
      const double p99 = hist->quantile(0.99);
      const auto& bounds = hist->bounds();
      const auto exemplars = hist->exemplars();
      std::size_t p99_bucket = bounds.size();
      for (std::size_t b = 0; b < bounds.size(); ++b) {
        if (p99 <= bounds[b]) {
          p99_bucket = b;
          break;
        }
      }
      std::cout << "exemplars (" << name << ", p99 "
                << util::fmt_double(p99, 2) << " ms):\n";
      for (std::size_t b = 0; b < exemplars.size(); ++b) {
        if (!exemplars[b].valid()) continue;
        const std::string le =
            b < bounds.size() ? util::fmt_double(bounds[b], 2) : "+Inf";
        std::cout << "  le " << le << ": "
                  << util::fmt_double(exemplars[b].value, 3) << " ms -> span "
                  << obs::format_span_id(exemplars[b].span_id)
                  << (b == p99_bucket ? "   <- p99 bucket" : "") << "\n";
      }
    }
  }

  if (!prom_out.empty()) {
    std::ofstream out(prom_out);
    if (!out) {
      std::cerr << "cannot open " << prom_out << "\n";
      return 1;
    }
    obs::write_prom(registry, out);
    std::cout << "wrote prometheus exposition (" << registry.size()
              << " series) to " << prom_out << "\n";
  }
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::cerr << "cannot open " << json_out << "\n";
      return 1;
    }
    timeline.write_json(out);
    std::cout << "wrote " << timeline.snapshot_count()
              << " timeline snapshots to " << json_out << "\n";
  }
  if (!slo_out.empty()) {
    std::ofstream out(slo_out);
    if (!out) {
      std::cerr << "cannot open " << slo_out << "\n";
      return 1;
    }
    tracker.write_json(out);
    std::cout << "wrote " << tracker.size() << " slo(s), "
              << tracker.alerts().size() << " alert event(s) to " << slo_out
              << "\n";
  }
  return write_obs_outputs(flags.obs, registry, recorder);
}

/// `tero_cli cluster <loadtest|kill|join|status>` — the deterministic
/// multi-node serving fleet (DESIGN.md §14). All modes build the same
/// world, publish its snapshot to the cluster, and (except `status`) sweep
/// the Zipf load generator across it on the virtual clock with a scripted
/// event timeline. kill/join double as invariant checks and exit nonzero
/// when one is violated (scripts/ci.sh cluster-smoke runs them).
int cmd_cluster(int argc, char** argv) {
  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode == "--help" || mode == "-h") {
    std::cout << kUsage;
    return 0;
  }
  const bool known_mode = mode == "loadtest" || mode == "kill" ||
                          mode == "join" || mode == "status";
  if (!known_mode) {
    if (!mode.empty() && mode.rfind("--", 0) == 0) {
      return unknown_flag("cluster", mode);
    }
    std::cerr << "usage: tero_cli cluster <loadtest|kill|join|status> "
                 "[streamers] [days] [queries]\n"
                 "               [--nodes n] [--replicas n] [--budget epochs] "
                 "[--seed n]\n"
                 "               [--threads n] [--qps n] [--policy "
                 "leader|follower]\n"
                 "               [--timeline-out tl.json] [--slo-out "
                 "s.json]\n";
    return 2;
  }

  cluster::ClusterConfig fleet_config;
  fleet_config.nodes = 5;
  cluster::ClusterLoadConfig load;
  load.queries = 20000;
  CommonFlags flags;
  std::string timeline_out;
  std::string slo_out;
  std::vector<std::string> positional;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--nodes" || arg == "--replicas" || arg == "--budget" ||
        arg == "--qps") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      const double value = std::atof(argv[++i]);
      if (arg == "--nodes") {
        fleet_config.nodes = std::max<std::size_t>(
            1, static_cast<std::size_t>(value));
      } else if (arg == "--replicas") {
        fleet_config.replicas = std::max<std::size_t>(
            1, static_cast<std::size_t>(value));
      } else if (arg == "--budget") {
        fleet_config.staleness_budget = static_cast<std::uint64_t>(value);
      } else {
        load.offered_qps = value;
      }
    } else if (arg == "--policy") {
      if (i + 1 >= argc) {
        std::cerr << "--policy needs leader|follower\n";
        return 1;
      }
      const std::string policy = argv[++i];
      if (policy == "leader") {
        load.policy = cluster::ReadPolicy::kLeaderOnly;
      } else if (policy == "follower") {
        load.policy = cluster::ReadPolicy::kFollowerPreferred;
      } else {
        std::cerr << "--policy must be leader or follower, got " << policy
                  << "\n";
        return 1;
      }
    } else if (arg == "--timeline-out" || arg == "--slo-out") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a file argument\n";
        return 1;
      }
      (arg == "--timeline-out" ? timeline_out : slo_out) = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("cluster", arg);
    } else {
      positional.push_back(arg);
    }
  }
  const std::size_t threads = flags.threads;
  if (flags.seed_set) {
    fleet_config.seed = flags.seed;
    load.seed = flags.seed;
  }
  std::size_t streamers = 60;
  int days = 2;
  if (!positional.empty()) {
    streamers = static_cast<std::size_t>(std::atoi(positional[0].c_str()));
  }
  if (positional.size() > 1) days = std::atoi(positional[1].c_str());
  if (positional.size() > 2) {
    load.queries = static_cast<std::size_t>(std::atoi(positional[2].c_str()));
  }
  if ((mode == "kill" || mode == "join") && fleet_config.nodes < 2) {
    std::cerr << "cluster " << mode << " needs --nodes >= 2\n";
    return 1;
  }

  // Same world scenario as `obs`: the cluster serves the batch pipeline's
  // snapshot entries.
  synth::WorldConfig world_config;
  world_config.seed = 1;
  world_config.num_streamers = streamers;
  world_config.p_twitter = 0.8;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = days;
  synth::SessionGenerator generator(world, behavior, 2);
  const auto streams = generator.generate();
  core::TeroConfig pipeline_config;
  pipeline_config.threads = threads;
  core::Pipeline pipeline(pipeline_config);
  const core::Dataset dataset = pipeline.run(world, streams);
  std::vector<serve::SnapshotEntry> entries = serve::entries_from(dataset);
  if (entries.empty()) {
    std::cerr << "pipeline produced no snapshot entries\n";
    return 1;
  }

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  obs::TimelineConfig timeline_config;
  timeline_config.scrape_every_ms = 1000;
  timeline_config.prefixes = {"tero.cluster.", "tero.fault.breaker"};
  obs::MetricsTimeline timeline(registry, timeline_config);
  obs::SloTracker tracker;
  fleet_config.metrics = &registry;
  load.metrics = &registry;
  load.timeline = &timeline;

  cluster::Cluster fleet(fleet_config);
  fleet.publish(std::move(entries), 0);

  if (mode == "status") {
    std::cout << "cluster: " << fleet.node_count() << " nodes, "
              << fleet_config.replicas << " replicas, budget "
              << fleet_config.staleness_budget << " epochs, epoch "
              << fleet.epoch() << ", " << fleet.snapshot()->size()
              << " keys\n";
    util::Table table(
        {"node", "alive", "breaker", "applied epoch", "claimed keys"});
    for (std::size_t n = 0; n < fleet.node_count(); ++n) {
      table.add_row({fleet.node_names()[n],
                     fleet.alive(n) ? "yes" : "no",
                     std::string(fault::to_string(fleet.breaker_state(n))),
                     std::to_string(fleet.applied_epoch(n)),
                     std::to_string(fleet.claimed_keys(n))});
    }
    table.print(std::cout);
    const cluster::OwnershipAudit audit = fleet.audit();
    std::cout << "ownership audit: " << (audit.ok ? "ok" : "FAILED") << " ("
              << audit.keys << " keys, " << audit.lost << " lost, "
              << audit.double_owned << " double-owned, " << audit.misplaced
              << " misplaced)\n";
    return write_obs_outputs(flags.obs, registry, recorder) ||
           (audit.ok ? 0 : 1);
  }

  // Scripted sweep: event times are fractions of the virtual duration so
  // --qps and query-count changes keep the story intact. The kill never
  // fires before the initial replication window (<= 450 ms) has passed.
  if (load.offered_qps <= 0.0) {
    load.offered_qps = static_cast<double>(load.queries) / 4.0;
  }
  const auto duration_ms = static_cast<std::uint64_t>(
      static_cast<double>(load.queries) * 1000.0 / load.offered_qps);
  const auto at = [&](double fraction) {
    return static_cast<std::uint64_t>(static_cast<double>(duration_ms) *
                                      fraction);
  };
  // Kill the node leading the most keys (lowest index on ties): a tiny
  // world's keyspace can leave some nodes with no keys at all, and killing
  // one of those would never trip its breaker — the invariant run must
  // target a node the Zipf stream actually hits.
  std::size_t victim = 0;
  for (std::size_t n = 1; n < fleet.node_count(); ++n) {
    if (fleet.claimed_keys(n) > fleet.claimed_keys(victim)) victim = n;
  }
  std::uint64_t kill_ms = 0;
  if (mode == "loadtest") {
    load.events = {
        {cluster::ClusterEvent::Kind::kRepublish, at(0.25), 0},
        {cluster::ClusterEvent::Kind::kRepublish, at(0.50), 0},
        {cluster::ClusterEvent::Kind::kRepublish, at(0.75), 0},
    };
  } else if (mode == "kill") {
    kill_ms = std::max<std::uint64_t>(600, at(0.40));
    load.events = {
        {cluster::ClusterEvent::Kind::kKill, kill_ms, victim},
        {cluster::ClusterEvent::Kind::kRepublish, at(0.60), 0},
        {cluster::ClusterEvent::Kind::kRepublish, at(0.80), 0},
    };
    tracker.add("slo breaker: value(tero.fault.breaker{endpoint=" +
                fleet.node_names()[victim] +
                "}) < 1 over 10s window, budget 1%");
    tracker.attach(timeline);
  } else {  // join
    load.events = {
        {cluster::ClusterEvent::Kind::kRepublish, at(0.25), 0},
        {cluster::ClusterEvent::Kind::kJoin, at(0.50), 0},
        {cluster::ClusterEvent::Kind::kRepublish, at(0.75), 0},
    };
  }

  const std::size_t resolved = util::ThreadPool::resolve(threads);
  util::ThreadPool pool(resolved);
  const cluster::ClusterLoadReport report = cluster::run_cluster_loadtest(
      fleet, load, resolved > 1 ? &pool : nullptr);

  std::cout << "cluster " << mode << ": " << report.issued << " queries, "
            << resolved << " threads, " << fleet.node_count() << " nodes x "
            << fleet_config.replicas << " replicas, budget "
            << fleet_config.staleness_budget << " epochs, "
            << report.events_applied << " events\n";
  std::cout << "  ok " << report.ok << ", not_found " << report.not_found
            << ", stale " << report.stale << " ("
            << util::fmt_percent(report.stale_fraction, 2)
            << "), unavailable " << report.unavailable << " -> availability "
            << util::fmt_percent(report.availability, 3) << "\n";
  std::cout << "  stale ages [";
  for (std::size_t age = 0; age < report.stale_age_hist.size(); ++age) {
    std::cout << (age > 0 ? ", " : "") << report.stale_age_hist[age];
  }
  std::cout << "] (max " << report.stale_age_max << ", budget "
            << fleet_config.staleness_budget << "), failover attempts "
            << report.failover_attempts << "\n";
  std::cout << "  virtual latency p50/p99: "
            << util::fmt_double(report.p50_ms, 2) << " / "
            << util::fmt_double(report.p99_ms, 2) << " ms\n";
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(report.checksum));
  std::cout << "  result checksum " << checksum << " (seed " << load.seed
            << "; identical for any thread count)\n";

  int violations = 0;
  const auto invariant = [&](const std::string& name, bool held) {
    std::cout << "  invariant " << name << ": " << (held ? "ok" : "VIOLATED")
              << "\n";
    if (!held) ++violations;
  };
  invariant("stale_age <= budget",
            report.stale_age_max <= fleet_config.staleness_budget);
  if (mode == "kill") {
    std::uint64_t first_fire_ms = 0;
    for (const auto& alert : tracker.alerts()) {
      if (alert.firing) {
        first_fire_ms = alert.t_ms;
        break;
      }
    }
    std::cout << "  breaker[" << fleet.node_names()[victim] << "] "
              << fault::to_string(fleet.breaker_state(victim))
              << "; SLO breaker "
              << (first_fire_ms > 0
                      ? "fired " + std::to_string(first_fire_ms - kill_ms) +
                            " ms after the kill"
                      : "did not fire")
              << " (scrape " << timeline_config.scrape_every_ms << " ms)\n";
    invariant("availability >= 0.99", report.availability >= 0.99);
    invariant("breaker opened", fleet.breaker_state(victim) ==
                                    fault::CircuitBreaker::State::kOpen);
    invariant("breaker SLO fired within 2 scrapes",
              first_fire_ms > kill_ms &&
                  first_fire_ms <=
                      kill_ms + 2 * timeline_config.scrape_every_ms);
  } else if (mode == "join") {
    const cluster::OwnershipAudit audit = fleet.audit();
    const double bound =
        2.0 / static_cast<double>(fleet.node_count());
    std::cout << "  joined node " << fleet.node_names().back()
              << ": remap fraction "
              << util::fmt_percent(fleet.last_remap().moved_fraction(), 2)
              << " (bound " << util::fmt_percent(bound, 2)
              << "), ownership audit " << (audit.ok ? "ok" : "FAILED")
              << " (" << audit.keys << " keys, " << audit.lost << " lost, "
              << audit.double_owned << " double-owned)\n";
    invariant("ownership audit ok", audit.ok);
    invariant("remap fraction < 2/n",
              fleet.last_remap().moved_fraction() < bound);
    invariant("availability >= 0.99", report.availability >= 0.99);
  }

  if (!timeline_out.empty()) {
    std::ofstream out(timeline_out);
    if (!out) {
      std::cerr << "cannot open " << timeline_out << "\n";
      return 1;
    }
    timeline.write_json(out);
    std::cout << "wrote " << timeline.snapshot_count()
              << " timeline snapshots to " << timeline_out << "\n";
  }
  if (!slo_out.empty()) {
    std::ofstream out(slo_out);
    if (!out) {
      std::cerr << "cannot open " << slo_out << "\n";
      return 1;
    }
    tracker.write_json(out);
    std::cout << "wrote " << tracker.size() << " slo(s), "
              << tracker.alerts().size() << " alert event(s) to " << slo_out
              << "\n";
  }
  if (const int rc = write_obs_outputs(flags.obs, registry, recorder);
      rc != 0) {
    return rc;
  }
  if (violations > 0) {
    std::cout << "cluster " << mode << ": " << violations
              << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "cluster " << mode << ": all invariants held\n";
  return 0;
}

/// Deterministic synthetic load for `tsdb verify`: `keys` series named
/// like serve entry keys, 24 hourly samples per virtual day with
/// seed-derived jitter, one advance_to per day (seal + compaction +
/// retention). Mirrors the tsdb_test fixture so a CLI failure reproduces
/// under ctest.
void tsdb_verify_load(tsdb::TimeSeriesStore& store, std::uint64_t seed,
                      std::size_t keys, int days) {
  constexpr std::int64_t kDayMs = 86'400'000;
  for (int day = 0; day < days; ++day) {
    for (std::size_t k = 0; k < keys; ++k) {
      util::Rng rng = util::Rng::indexed(
          util::mix_seed(seed, static_cast<std::uint64_t>(day)), k);
      const std::string key =
          "game" + std::to_string(k % 3) + "|US|key" + std::to_string(k);
      for (int hour = 0; hour < 24; ++hour) {
        store.append(key,
                     day * kDayMs + hour * 3'600'000 +
                         rng.uniform_int(0, 59'999),
                     std::floor(rng.uniform(20.0, 80.0)));
      }
    }
    store.advance_to((day + 1) * kDayMs);
  }
}

/// `tero_cli tsdb verify` — the tiered store's determinism and
/// crash-recovery sweep (scripts/ci.sh tsdb-smoke). Per seed: (1) two
/// clean in-memory runs, 1 thread vs a pool, must agree on segment layout
/// and dataset digest; (2) a durable run under the fault plan must be
/// interrupted by an injected crash, and reopening the directory must
/// recover every acknowledged sample (digest match against the in-memory
/// store, whose WAL-backed state is lossless by construction).
int cmd_tsdb(int argc, char** argv) {
  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode == "--help" || mode == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (mode != "verify") {
    if (!mode.empty() && mode.rfind("--", 0) == 0) {
      return unknown_flag("tsdb", mode);
    }
    std::cerr << "usage: tero_cli tsdb verify [seeds] [keys] [days]\n"
                 "              [--plan spec] [--threads n] [--dir base]\n";
    return mode.empty() ? 1 : 2;
  }
  CommonFlags flags;
  std::string plan_spec = "tsdb.compact=crash@1:max=1";
  std::string dir_base;
  std::vector<std::string> positional;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const int eaten = eat_common_flag(argc, argv, i, flags);
        eaten != 0) {
      if (eaten < 0) return 1;
      i += eaten - 1;
      continue;
    }
    if (arg == "--plan" || arg == "--dir") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 1;
      }
      (arg == "--plan" ? plan_spec : dir_base) = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return unknown_flag("tsdb", arg);
    } else {
      positional.push_back(arg);
    }
  }
  const std::uint64_t seeds =
      !positional.empty()
          ? static_cast<std::uint64_t>(std::atoll(positional[0].c_str()))
          : 10;
  const std::size_t keys =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1].c_str()))
          : 8;
  const int days =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 6;
  const std::size_t pool_threads = flags.threads != 0 ? flags.threads : 8;
  const std::uint64_t seed_base = flags.seed_set ? flags.seed : 1;
  try {
    (void)fault::FaultPlan::parse(plan_spec);
  } catch (const std::exception& error) {
    std::cerr << "bad --plan: " << error.what() << "\n";
    return 1;
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path base =
      dir_base.empty() ? fs::temp_directory_path() : fs::path(dir_base);
  const bool want_metrics =
      !flags.obs.metrics_out.empty() || flags.obs.metrics_table;
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;

  std::size_t failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::cout << "  FAIL: " << what << "\n";
    }
  };

  std::cout << "tsdb verify: " << seeds << " seeds, " << keys << " keys, "
            << days << " virtual days, plan \"" << plan_spec << "\", 1 vs "
            << pool_threads << " threads\n";
  util::ThreadPool pool(pool_threads);
  for (std::uint64_t seed = seed_base; seed < seed_base + seeds; ++seed) {
    const std::string tag = "seed " + std::to_string(seed);

    // (1) Clean determinism: segment layout and digest are pure functions
    // of (appends, advances, config) — the pool must not show through.
    tsdb::TimeSeriesStore serial{tsdb::TsdbConfig{}};
    tsdb_verify_load(serial, seed, keys, days);
    tsdb::TsdbConfig parallel_config;
    parallel_config.pool = &pool;
    tsdb::TimeSeriesStore parallel(parallel_config);
    tsdb_verify_load(parallel, seed, keys, days);
    check(serial.dataset_digest() == parallel.dataset_digest(),
          tag + ": dataset digest diverged at 1 vs " +
              std::to_string(pool_threads) + " threads");
    check(serial.segment_layout() == parallel.segment_layout(),
          tag + ": segment layout diverged at 1 vs " +
              std::to_string(pool_threads) + " threads");

    // (2) Crash recovery: the run must be interrupted by the plan, and a
    // reopen must recover the exact acknowledged sample set.
    const fs::path dir =
        base / ("tero-tsdb-verify-" + std::to_string(seed));
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    fault::FaultInjector injector(fault::FaultPlan::parse(plan_spec, seed),
                                  want_metrics ? &registry : nullptr);
    bool crashed = false;
    std::uint64_t acknowledged_digest = 0;
    std::uint64_t acknowledged_samples = 0;
    {
      tsdb::TsdbConfig crash_config;
      crash_config.dir = dir.string();
      crash_config.injector = &injector;
      crash_config.metrics = want_metrics ? &registry : nullptr;
      tsdb::TimeSeriesStore store(crash_config);
      try {
        tsdb_verify_load(store, seed, keys, days);
      } catch (const std::exception&) {
        crashed = true;  // the injected crash tore a file mid-operation
      }
      const tsdb::TimeSeriesStore::Stats stats = store.stats();
      acknowledged_samples = stats.head_samples + stats.segment_samples;
      acknowledged_digest = store.dataset_digest();
    }
    check(crashed, tag + ": fault plan \"" + plan_spec +
                       "\" never interrupted the run");
    try {
      tsdb::TsdbConfig reopen_config;
      reopen_config.dir = dir.string();
      tsdb::TimeSeriesStore reopened(reopen_config);
      const tsdb::TimeSeriesStore::Stats stats = reopened.stats();
      check(stats.head_samples + stats.segment_samples ==
                acknowledged_samples,
            tag + ": recovery changed the acknowledged sample count");
      check(reopened.dataset_digest() == acknowledged_digest,
            tag + ": recovery lost or altered acknowledged samples "
                  "(digest mismatch)");
    } catch (const std::exception& error) {
      check(false,
            tag + ": reopen after crash failed: " + std::string(error.what()));
    }
    fs::remove_all(dir, ec);
    std::cout << "  " << tag << ": clean 1-vs-" << pool_threads
              << "-thread match, crash observed, " << acknowledged_samples
              << " acknowledged samples recovered\n";
  }

  if (const int rc = write_obs_outputs(flags.obs, registry, recorder);
      rc != 0) {
    return rc;
  }
  if (failures > 0) {
    std::cout << "tsdb verify: " << failures << " violation(s)\n";
    return 1;
  }
  std::cout << "tsdb verify: all invariants held\n";
  return 0;
}

int cmd_control(int argc, char** argv) {
  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode == "--help" || mode == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (mode != "sweep" && mode != "status") {
    std::cerr << "tero_cli control: expected sweep or status, got "
              << (mode.empty() ? "<nothing>" : mode) << "\n\n"
              << kUsage;
    return 2;
  }

  CommonFlags flags;
  std::string policy_text = "reactive";
  std::string log_out;
  double multiplier = 4.0;
  double duration_s = 0.0;  // 0 = keep the cell default below
  for (int i = 3; i < argc; ++i) {
    if (const int eaten = eat_common_flag(argc, argv, i, flags); eaten != 0) {
      if (eaten < 0) return 2;
      i += eaten - 1;
      continue;
    }
    const std::string arg = argv[i];
    if (arg == "--policy" || arg == "--mult" || arg == "--duration" ||
        arg == "--log-out") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--policy") {
        policy_text = value;
      } else if (arg == "--mult") {
        multiplier = std::atof(value.c_str());
      } else if (arg == "--duration") {
        duration_s = std::atof(value.c_str());
      } else {
        log_out = value;
      }
      continue;
    }
    return unknown_flag("control", arg);
  }
  if (multiplier <= 0.0) {
    std::cerr << "--mult must be > 0\n";
    return 2;
  }

  control::Policy policy;
  try {
    policy = control::parse_policy(policy_text);
  } catch (const std::invalid_argument& err) {
    std::cerr << "tero_cli control: " << err.what()
              << " (expected static, reactive, or predictive)\n";
    return 2;
  }

  // The CI-smoke cell: same shape as bench_control --tiny so one sweep
  // finishes in well under a second while still overloading at --mult >= 2.
  control::SweepConfig config;
  config.seed = flags.seed_set ? flags.seed : 21;
  config.load_multiplier = multiplier;
  config.duration_s = duration_s > 0.0 ? duration_s : 2.5;
  config.publish_every_s = 0.5;
  config.controller.policy = policy;
  config.controller.shard_unit_qps = 400.0;
  config.controller.min_shards = 2;
  config.controller.initial_shards = 2;
  config.controller.max_shards = 4;
  config.controller.base_channel_capacity = 1024;
  config.controller.min_channel_capacity = 64;
  const std::size_t threads =
      util::ThreadPool::resolve(flags.threads_set ? flags.threads : 1);
  config.threads = threads;

  const double nominal = static_cast<double>(config.controller.initial_shards) *
                         config.controller.shard_unit_qps;
  const auto level_name = [](int level) {
    switch (level) {
      case 0: return "full";
      case 1: return "cached-only";
      case 2: return "coarse-percentile";
      case 3: return "stale-tolerant";
      default: return "shed";
    }
  };

  if (mode == "status") {
    std::cout << "control cell plan (not run):\n";
    util::Table plan({"knob", "value"});
    plan.add_row({"policy", std::string(control::to_string(policy))});
    plan.add_row({"offered load", util::fmt_double(multiplier, 2) + "x (" +
                                      util::fmt_double(nominal * multiplier, 0) +
                                      " qps over " +
                                      util::fmt_double(config.duration_s, 1) +
                                      " virtual s)"});
    plan.add_row({"nominal capacity",
                  std::to_string(config.controller.initial_shards) +
                      " shards x " +
                      util::fmt_double(config.controller.shard_unit_qps, 0) +
                      " qps (scale " +
                      std::to_string(config.controller.min_shards) + ".." +
                      std::to_string(config.controller.max_shards) + ")"});
    plan.add_row({"channel capacity",
                  std::to_string(config.controller.base_channel_capacity) +
                      " (floor " +
                      std::to_string(config.controller.min_channel_capacity) +
                      ")"});
    plan.add_row({"tick cadence",
                  std::to_string(config.controller.tick_every_ms) + " ms"});
    plan.add_row({"fault plan", config.fault_plan});
    plan.add_row({"slo", config.slo_spec});
    plan.add_row({"seed", std::to_string(config.seed)});
    plan.print(std::cout);
    std::cout << "brownout ladder:";
    for (int level = 0; level <= 4; ++level) {
      std::cout << (level == 0 ? " " : " -> ") << level_name(level);
    }
    std::cout << "\nchaos windows (fractions of the run):\n";
    for (const auto& window : config.windows) {
      const char* kind = window.kind == control::ChaosWindow::Kind::kShardKill
                             ? "shard-kill"
                         : window.kind == control::ChaosWindow::Kind::kReplDelay
                             ? "repl-delay"
                             : "tsdb-error";
      std::cout << "  " << kind << " [" << util::fmt_double(window.begin_frac, 2)
                << ", " << util::fmt_double(window.end_frac, 2) << ")";
      if (window.kind == control::ChaosWindow::Kind::kShardKill) {
        std::cout << " shard " << window.shard;
      }
      std::cout << "\n";
    }
    return 0;
  }

  // sweep: build a small serving world, then run the cell.
  synth::WorldConfig world_config;
  world_config.seed = 13;
  world_config.num_streamers = 60;
  world_config.p_twitter = 0.9;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 3;
  synth::SessionGenerator generator(world, behavior, 3);
  const auto streams = generator.generate();
  core::TeroConfig pipeline_config;
  pipeline_config.threads = threads;
  core::Pipeline pipeline(pipeline_config);
  const core::Dataset dataset = pipeline.run(world, streams);
  std::vector<serve::SnapshotEntry> entries = serve::entries_from(dataset);
  if (entries.empty()) {
    std::cerr << "pipeline produced no snapshot entries\n";
    return 1;
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  const control::SweepReport report =
      control::run_control_sweep(std::move(entries), config, pool.get());

  std::cout << "control sweep: " << control::to_string(policy) << " at "
            << util::fmt_double(multiplier, 2) << "x ("
            << util::fmt_double(report.offered_qps, 0) << " qps, seed "
            << config.seed << ", " << threads << " thread"
            << (threads == 1 ? "" : "s") << ")\n";
  util::Table table({"metric", "value"});
  table.add_row({"issued", std::to_string(report.issued)});
  table.add_row({"ok", std::to_string(report.ok)});
  table.add_row({"stale", std::to_string(report.stale)});
  table.add_row({"shed", std::to_string(report.shed) + " (" +
                             util::fmt_percent(report.shed_fraction) + ")"});
  table.add_row({"brownout refused", std::to_string(report.brownout)});
  table.add_row({"unavailable", std::to_string(report.unavailable)});
  table.add_row({"denied fraction", util::fmt_percent(report.denied_fraction)});
  table.add_row({"p50 / p99 ms", util::fmt_double(report.p50_ms, 2) + " / " +
                                     util::fmt_double(report.p99_ms, 2)});
  table.add_row({"slo good", util::fmt_percent(report.slo_good_fraction) +
                                 (report.slo_fired ? " (alert fired)" : "")});
  table.add_row({"max ladder rung", std::to_string(report.max_level) +
                                        " (" + level_name(report.max_level) +
                                        ")"});
  table.add_row({"peak shards", std::to_string(report.peak_shards)});
  table.add_row({"min channel capacity",
                 std::to_string(report.min_channel_capacity)});
  table.add_row({"first ladder-up / shed ms",
                 std::to_string(report.first_ladder_ms) + " / " +
                     std::to_string(report.first_shed_ms)});
  table.add_row({"ticks", std::to_string(report.ticks)});
  {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(report.decision_digest));
    table.add_row({"decision digest", buffer});
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(report.checksum));
    table.add_row({"result checksum", buffer});
  }
  table.print(std::cout);

  if (!log_out.empty()) {
    std::ofstream out(log_out);
    if (!out) {
      std::cerr << "cannot open " << log_out << "\n";
      return 1;
    }
    out << report.decision_log;
    std::cout << "wrote " << report.ticks << " decisions to " << log_out
              << "\n";
  }

  // Invariant gate: an adaptive policy under real overload must climb the
  // ladder before it starts refusing work outright.
  if (policy != control::Policy::kStatic && multiplier >= 2.0 &&
      !report.ladder_engaged_before_shed) {
    std::cerr << "control sweep: ladder did not engage before the first "
                 "shed (first ladder-up "
              << report.first_ladder_ms << " ms, first shed "
              << report.first_shed_ms << " ms)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "simulate") return cmd_simulate(argc, argv);
  if (command == "analyze") return cmd_analyze(argc, argv);
  if (command == "report") return cmd_report(argc, argv);
  if (command == "query") return cmd_query(argc, argv);
  if (command == "loadtest") return cmd_loadtest(argc, argv);
  if (command == "stream") return cmd_stream(argc, argv);
  if (command == "chaos") return cmd_chaos(argc, argv);
  if (command == "obs") return cmd_obs(argc, argv);
  if (command == "cluster") return cmd_cluster(argc, argv);
  if (command == "tsdb") return cmd_tsdb(argc, argv);
  if (command == "control") return cmd_control(argc, argv);
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << kUsage;
    return 0;
  }
  if (!command.empty()) {
    std::cerr << "tero_cli: unknown command " << command << "\n\n";
  }
  std::cerr << kUsage;
  return command.empty() ? 1 : 2;
}
