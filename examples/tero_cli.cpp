// tero_cli: the driver a data-set consumer uses against the published CSV
// artifacts (see examples/export_dataset.cpp). Subcommands:
//
//   tero_cli simulate [out_dir] [streamers] [days] [threads]
//            [--metrics-out m.json] [--trace-out t.json] [--metrics-table]
//       build a synthetic world, run the pipeline (threads workers;
//       0 = all cores, same output either way), and write
//       measurements.csv + aggregates.csv. --metrics-out dumps the
//       metrics registry as JSON, --trace-out writes a Chrome
//       trace-event file (load in Perfetto / chrome://tracing), and
//       --metrics-table prints the registry to stdout.
//
//   tero_cli analyze <measurements.csv>
//       re-run the QoE-based cleaning over an imported data set and print
//       per-{streamer, game} summaries (points kept, spikes, glitches)
//
//   tero_cli report <measurements.csv> <game>
//       print the latency distribution per streamer pseudonym for a game
//       (what a researcher without the pipeline would compute first)

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/anomalies.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"
#include "synth/sessions.hpp"
#include "tero/export.hpp"
#include "tero/pipeline.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

int cmd_simulate(int argc, char** argv) {
  // Split --flags (accepted anywhere) from the positional arguments.
  std::string metrics_out;
  std::string trace_out;
  bool metrics_table = false;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" || arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a file argument\n";
        return 1;
      }
      (arg == "--metrics-out" ? metrics_out : trace_out) = argv[++i];
    } else if (arg == "--metrics-table") {
      metrics_table = true;
    } else {
      positional.push_back(arg);
    }
  }
  const std::string out_dir = !positional.empty() ? positional[0] : "/tmp";
  const std::size_t streamers =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1].c_str()))
          : 300;
  const int days = positional.size() > 2 ? std::atoi(positional[2].c_str())
                                         : 7;
  const std::size_t threads =
      positional.size() > 3
          ? static_cast<std::size_t>(std::atoi(positional[3].c_str()))
          : 0;

  synth::WorldConfig world_config;
  world_config.seed = 1;
  world_config.num_streamers = streamers;
  world_config.p_twitter = 0.8;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = days;
  synth::SessionGenerator generator(world, behavior, 2);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.threads = threads;  // 0 = all cores; the output is thread-invariant

  // Observability sinks are created only when requested; the pipeline takes
  // raw pointers and never reads them back (output is identical either way).
  const bool want_metrics = !metrics_out.empty() || metrics_table;
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  if (want_metrics) config.metrics = &registry;
  if (!trace_out.empty()) config.trace = &recorder;

  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  std::ofstream measurements(out_dir + "/tero_measurements.csv");
  std::ofstream aggregates(out_dir + "/tero_aggregates.csv");
  const auto measurement_rows =
      core::export_measurements(dataset, measurements, config.metrics);
  const auto aggregate_rows =
      core::export_aggregates(dataset, aggregates, config.metrics);
  std::cout << "streamers " << dataset.funnel.streamers_total << ", located "
            << dataset.funnel.streamers_located << ", thumbnails "
            << dataset.funnel.thumbnails << "\n";
  std::cout << "wrote " << measurement_rows << " measurements and "
            << aggregate_rows << " aggregates to " << out_dir << "\n";

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << "\n";
      return 1;
    }
    registry.write_json(out);
    std::cout << "wrote " << registry.size() << " metrics to " << metrics_out
              << "\n";
  }
  if (metrics_table) registry.write_table(std::cout);
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot open " << trace_out << "\n";
      return 1;
    }
    recorder.write_json(out);
    std::cout << "wrote " << recorder.span_count() << " trace events to "
              << trace_out << "\n";
  }
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: tero_cli analyze <measurements.csv>\n";
    return 1;
  }
  std::ifstream input(argv[2]);
  if (!input) {
    std::cerr << "cannot open " << argv[2] << "\n";
    return 1;
  }
  const auto streams = core::import_measurements(input);
  // Group by {pseudonym, game} and clean, exactly as the pipeline would.
  std::map<std::pair<std::string, std::string>, std::vector<analysis::Stream>>
      grouped;
  for (const auto& stream : streams) {
    grouped[{stream.streamer, stream.game}].push_back(stream);
  }
  util::Table table({"pseudonym", "game", "points", "retained", "spikes",
                     "glitch segs", "spike fraction"});
  std::size_t shown = 0;
  analysis::AnalysisConfig config;
  for (auto& [key, streamer_streams] : grouped) {
    const auto clean =
        analysis::clean_streamer_game(std::move(streamer_streams), config);
    if (clean.points_in < 10) continue;
    table.add_row({key.first, key.second, std::to_string(clean.points_in),
                   std::to_string(clean.points_retained),
                   std::to_string(clean.spikes.size()),
                   std::to_string(clean.glitch_segments),
                   util::fmt_percent(clean.spike_fraction(), 1)});
    if (++shown >= 25) break;
  }
  table.print(std::cout);
  std::cout << "(" << grouped.size() << " {streamer, game} tuples total; "
            << "first " << shown << " with >=10 points shown)\n";
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: tero_cli report <measurements.csv> <game>\n";
    return 1;
  }
  std::ifstream input(argv[2]);
  if (!input) {
    std::cerr << "cannot open " << argv[2] << "\n";
    return 1;
  }
  const std::string game = argv[3];
  const auto streams = core::import_measurements(input);
  std::map<std::string, std::vector<double>> per_streamer;
  for (const auto& stream : streams) {
    if (stream.game != game) continue;
    for (const auto& point : stream.points) {
      per_streamer[stream.streamer].push_back(point.latency_ms);
    }
  }
  if (per_streamer.empty()) {
    std::cerr << "no measurements for game: " << game << "\n";
    return 1;
  }
  util::Table table({"pseudonym", "points", "p5|p25[p50]p75|p95 [ms]"});
  std::size_t shown = 0;
  for (const auto& [pseudonym, values] : per_streamer) {
    if (values.size() < 10) continue;
    const auto box = stats::boxplot(values);
    table.add_row({pseudonym, std::to_string(values.size()),
                   util::fmt_double(box.p5, 0) + " | " +
                       util::fmt_double(box.p25, 0) + " [" +
                       util::fmt_double(box.p50, 0) + "] " +
                       util::fmt_double(box.p75, 0) + " | " +
                       util::fmt_double(box.p95, 0)});
    if (++shown >= 20) break;
  }
  table.print(std::cout);
  std::cout << "(" << per_streamer.size() << " streamers for " << game
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "simulate") return cmd_simulate(argc, argv);
  if (command == "analyze") return cmd_analyze(argc, argv);
  if (command == "report") return cmd_report(argc, argv);
  std::cerr << "usage: tero_cli <simulate|analyze|report> ...\n"
               "  simulate [out_dir] [streamers] [days] [threads]\n"
               "           [--metrics-out m.json] [--trace-out t.json]\n"
               "           [--metrics-table]\n"
               "  analyze  <measurements.csv>\n"
               "  report   <measurements.csv> <game>\n";
  return command.empty() ? 1 : 2;
}
