// Outage monitor: the shared-anomaly story from §4.2.3 — on Nov 16, 2022 a
// game update overloaded servers worldwide and Tero saw 669 shared spikes.
//
// This example injects a region-wide infrastructure problem into the
// synthetic world, runs the pipeline, and shows the shared-anomaly test
// (App. F) isolating it: many concurrent per-streamer spikes, binomially
// impossible to be independent.

#include <iostream>

#include "analysis/shared.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  // A dense region playing one game.
  synth::WorldConfig world_config;
  world_config.seed = 1116;
  world_config.games = {"Call of Duty Warzone"};
  world_config.focus_locations = {
      geo::Location{"", "California", "United States"}};
  world_config.streamers_per_focus = 120;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  const synth::World world(world_config);

  // Crank region-wide shared events up: the "new version released, servers
  // overloaded" scenario.
  synth::BehaviorConfig behavior;
  behavior.days = 7;
  behavior.shared_events_per_region_day = 0.5;
  behavior.shared_event_magnitude_ms = 45.0;
  behavior.shared_event_duration_s = 1800.0;
  synth::SessionGenerator generator(world, behavior, 1117);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.p_latency_visible = 1.0;
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  std::cout << "streamers located : " << dataset.funnel.streamers_located
            << "\n";
  std::cout << "measurements      : " << dataset.funnel.ocr_ok << "\n\n";

  for (const auto& aggregate : dataset.aggregates) {
    const auto& shared = aggregate.shared;
    std::cout << aggregate.location.to_string() << " / " << aggregate.game
              << "\n";
    std::cout << "  spike probability p_e        : "
              << util::fmt_percent(shared.spike_probability, 2) << "\n";
    std::cout << "  statistically significant    : "
              << (shared.sufficient_data ? "yes (Eq. 2 holds)" : "no")
              << "\n";
    std::cout << "  shared anomalies detected    : "
              << shared.anomalies.size() << "\n";
    util::Table table({"window start [h]", "window end [h]",
                       "streamers affected", "P[independent]"});
    std::size_t shown = 0;
    for (const auto& anomaly : shared.anomalies) {
      table.add_row({util::fmt_double(anomaly.start_s / 3600.0, 2),
                     util::fmt_double(anomaly.end_s / 3600.0, 2),
                     std::to_string(anomaly.streamers.size()),
                     util::fmt_double(anomaly.probability, 8)});
      if (++shown >= 8) break;
    }
    if (table.rows() > 0) table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Each window groups spikes from different streamers that "
               "overlap in time;\nthe binomial test (App. F) flags them "
               "only when independence is implausible\n(P <= 0.01%). "
               "Isolated per-streamer spikes never qualify.\n";
  return 0;
}
