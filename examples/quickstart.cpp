// Quickstart: the whole Tero pipeline in ~60 lines.
//
// Builds a small synthetic world (the stand-in for Twitch + Twitter/Steam),
// generates ground-truth streaming sessions, runs the location module, the
// image-processing channel and the data-analysis module, and prints the
// volume counters plus one regional latency distribution.
//
//   ./quickstart            # fast calibrated-noise extraction channel
//   ./quickstart --full-ocr # rasterize thumbnails + real OCR (slower)

#include <cstring>
#include <iostream>

#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/table.hpp"

using namespace tero;

int main(int argc, char** argv) {
  const bool full_ocr = argc > 1 && std::strcmp(argv[1], "--full-ocr") == 0;

  // 1. A world: 120 streamers in two locations, everyone locatable.
  synth::WorldConfig world_config;
  world_config.seed = 42;
  world_config.games = {"League of Legends"};
  world_config.focus_locations = {
      geo::Location{"", "Illinois", "United States"},
      geo::Location{"", "", "Poland"},
  };
  world_config.streamers_per_focus = 60;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  const synth::World world(world_config);

  // 2. Ground-truth streaming sessions (thumbnails every ~5 minutes).
  synth::BehaviorConfig behavior;
  behavior.days = full_ocr ? 2 : 7;
  synth::SessionGenerator generator(world, behavior, 7);
  const auto streams = generator.generate();

  // 3. The Tero pipeline: locate -> extract -> clean -> aggregate.
  core::TeroConfig config;
  config.use_full_ocr = full_ocr;
  config.p_latency_visible = full_ocr ? 0.8 : 1.0;
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  std::cout << "extraction channel : " << (full_ocr ? "full OCR" : "noise")
            << "\n"
            << "streamers          : " << dataset.funnel.streamers_total
            << "\n"
            << "located            : " << dataset.funnel.streamers_located
            << "\n"
            << "thumbnails         : " << dataset.funnel.thumbnails << "\n"
            << "measurements       : " << dataset.funnel.ocr_ok << "\n"
            << "retained after QoE : " << dataset.funnel.retained << "\n\n";

  util::Table table(
      {"location", "game", "streamers", "p25 [ms]", "median", "p75 [ms]",
       "server"});
  for (const auto& aggregate : dataset.aggregates) {
    if (!aggregate.box.has_value()) continue;
    table.add_row({aggregate.location.to_string(), aggregate.game,
                   std::to_string(aggregate.streamers),
                   util::fmt_double(aggregate.box->p25, 0),
                   util::fmt_double(aggregate.box->p50, 0),
                   util::fmt_double(aggregate.box->p75, 0),
                   aggregate.server_city});
  }
  table.print(std::cout);
  std::cout << "\nPoland and Illinois sit at similar distances from their "
               "LoL servers;\nthe last-mile difference is what Tero exists "
               "to surface.\n";
  return 0;
}
