#include "fault/policy.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace tero::fault {

double RetryPolicy::backoff_s(std::uint32_t attempt, std::uint64_t seed,
                              std::uint64_t token) const {
  if (attempt == 0) return 0.0;
  double delay =
      base_delay_s * std::pow(multiplier, static_cast<double>(attempt - 1));
  delay = std::min(delay, max_delay_s);
  if (jitter > 0.0) {
    // Deterministic jitter: the draw depends only on (seed, token, attempt),
    // so a retry schedule replays exactly under the same seed.
    util::Rng rng = util::Rng::indexed(util::mix_seed(seed, token), attempt);
    delay *= 1.0 - jitter * rng.uniform();
  }
  return delay;
}

bool CircuitBreaker::allow(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_s - opened_at_s_ >= config_.cooldown_s) {
        enter(State::kHalfOpen);
        probe_in_flight_ = true;
        return true;
      }
      ++rejected_;
      return false;
    case State::kHalfOpen:
      // Exactly one probe at a time: concurrent callers racing the probe's
      // outcome fail fast instead of piling onto a recovering endpoint.
      if (probe_in_flight_) {
        ++rejected_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.half_open_successes) {
      enter(State::kClosed);
    }
  }
}

void CircuitBreaker::on_failure(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the cooldown.
    opened_at_s_ = now_s;
    enter(State::kOpen);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    opened_at_s_ = now_s;
    enter(State::kOpen);
  }
}

CircuitBreaker::CircuitBreaker(Config config, obs::Gauge* state_gauge)
    : config_(config), state_gauge_(state_gauge) {
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<double>(
        static_cast<std::uint8_t>(State::kClosed)));
  }
}

void CircuitBreaker::enter(State next) {
  state_ = next;
  probe_in_flight_ = false;
  if (next != State::kHalfOpen) half_open_successes_ = 0;
  if (next == State::kClosed) consecutive_failures_ = 0;
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<double>(static_cast<std::uint8_t>(next)));
  }
}

obs::Gauge* CircuitBreaker::state_gauge(obs::MetricsRegistry* metrics,
                                        const std::string& endpoint) {
  if (metrics == nullptr) return nullptr;
  return &metrics->gauge(obs::MetricsRegistry::labeled(
      "tero.fault.breaker", {{"endpoint", endpoint}}));
}

std::string_view to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "closed";
}

}  // namespace tero::fault
