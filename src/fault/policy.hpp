#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace tero::obs {
class Gauge;
class MetricsRegistry;
}  // namespace tero::obs

namespace tero::fault {

/// Capped exponential backoff with deterministic jitter. Pure data + pure
/// functions: the backoff for attempt n is a function of (policy, seed,
/// token, n), so retry schedules are bit-reproducible and thread-safe for
/// free. `token` identifies the operation being retried (e.g. a streamer
/// hash), keeping concurrent retry sequences decorrelated.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;  ///< total tries, including the first
  double base_delay_s = 1.0;       ///< delay before attempt 1's retry
  double max_delay_s = 60.0;       ///< cap on a single backoff
  double multiplier = 2.0;
  double jitter = 0.25;    ///< fraction of the delay randomized, [0, 1]
  double budget_s = 300.0; ///< total time allowed across all retries; 0 = off

  /// Backoff before retry attempt `attempt` (attempt 1 = first retry).
  /// Deterministic in (policy, seed, token, attempt).
  [[nodiscard]] double backoff_s(std::uint32_t attempt, std::uint64_t seed,
                                 std::uint64_t token = 0) const;

  /// Should attempt `attempt` (0-based try index) run, given `elapsed_s`
  /// spent so far? Encodes both the attempt cap and the total budget.
  [[nodiscard]] bool should_retry(std::uint32_t attempt,
                                  double elapsed_s = 0.0) const {
    if (attempt + 1 >= max_attempts) return false;
    return budget_s <= 0.0 || elapsed_s < budget_s;
  }
};

/// Closed → open → half-open breaker guarding one endpoint. Time is passed
/// in by the caller (simulation time or wall time), never read from a
/// clock, so breaker transitions are as deterministic as the event order
/// that drives them. Thread-safe.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Config {
    std::uint32_t failure_threshold = 5;  ///< consecutive failures to open
    double cooldown_s = 30.0;             ///< open → half-open delay
    std::uint32_t half_open_successes = 2;  ///< probes to close again
  };

  CircuitBreaker() : CircuitBreaker(Config{}) {}
  /// Writes the initial closed state into `state_gauge` immediately, so
  /// the series exists from arm time — SLOs like
  /// `value(tero.fault.breaker{endpoint=...})` must see 0 before the first
  /// transition, not an absent series.
  explicit CircuitBreaker(Config config, obs::Gauge* state_gauge = nullptr);

  /// May a request proceed at time `now_s`? Open breakers reject until the
  /// cooldown elapses, then admit half-open probes — *one at a time*: while
  /// a probe's outcome is pending (allow() returned true and neither
  /// on_success() nor on_failure() has been called yet), every other caller
  /// fails fast. A half-open breaker that admitted N concurrent callers
  /// would hammer the recovering endpoint with the very thundering herd it
  /// exists to prevent.
  [[nodiscard]] bool allow(double now_s);
  void on_success();
  void on_failure(double now_s);

  [[nodiscard]] State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }
  [[nodiscard]] std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
  }

  /// Resolve the per-endpoint state gauge `tero.fault.breaker{endpoint=...}`
  /// (0 = closed, 1 = open, 2 = half-open); nullptr registry -> nullptr.
  [[nodiscard]] static obs::Gauge* state_gauge(obs::MetricsRegistry* metrics,
                                               const std::string& endpoint);

 private:
  void enter(State next);  // callers hold mutex_

  Config config_;
  obs::Gauge* state_gauge_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  /// Half-open single-probe latch: set when allow() admits a probe, cleared
  /// by the probe's on_success()/on_failure() (or any state change).
  bool probe_in_flight_ = false;
  double opened_at_s_ = 0.0;
  std::uint64_t rejected_ = 0;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state) noexcept;

}  // namespace tero::fault
