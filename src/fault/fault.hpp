#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tero::obs {
class Counter;
class MetricsRegistry;
}  // namespace tero::obs

namespace tero::fault {

/// Deterministic fault injection (DESIGN.md §11). Subsystems register named
/// fault points ("cdn.get", "kv.put", "serve.shard-0", ...) against a
/// FaultInjector; a FaultPlan — parsed from a tiny spec string — maps point
/// names to fault rules. Every decision is a pure function of
/// (plan seed, point name, rule index, hit index | key), derived through
/// util::Rng::indexed, so the fault schedule is bit-reproducible for a
/// fixed seed and plan, independent of wall time or thread interleaving at
/// keyed points.
///
/// Null-injector cost contract (same as obs): call sites hold a plain
/// FaultPoint* that is nullptr when injection is off, so a disabled layer
/// costs exactly one predictable branch per point crossing.

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kError,    ///< operation fails (transient unless the rule says otherwise)
  kLatency,  ///< operation succeeds after an added delay
  kCorrupt,  ///< operation "succeeds" but the payload is damaged
  kCrash,    ///< process/component dies (keyed mode: permanent fault)
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// What one fault-point crossing should suffer.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  double delay_s = 0.0;  ///< kLatency: injected extra latency

  explicit operator bool() const noexcept { return kind != FaultKind::kNone; }
};

/// One plan rule: which point(s), which fault, how likely, and when.
struct FaultRule {
  /// Exact point name, or a prefix wildcard with a trailing '*'
  /// ("serve.shard*" matches every shard's point).
  std::string point;
  FaultKind kind = FaultKind::kError;
  double probability = 0.0;
  double latency_s = 1.0;        ///< kLatency magnitude
  std::uint64_t after = 0;       ///< skip the first `after` hits
  std::uint64_t max_fires = 0;   ///< stop after this many fires; 0 = no cap
  /// Keyed mode (FaultPoint::decide): attempts 0..fail_attempts-1 of an
  /// affected key fail, so a RetryPolicy with more attempts than this
  /// always recovers — the "transient by construction" contract.
  std::uint64_t fail_attempts = 2;

  [[nodiscard]] bool matches(std::string_view name) const;
};

/// A seeded set of rules. Spec grammar (';'-separated rules):
///
///   point=kind@prob[:ms=N][:after=N][:max=N][:fails=N]
///
///   kind  := error | latency | corrupt | crash
///   prob  := probability in [0, 1]
///   ms    := latency magnitude in milliseconds (kLatency only)
///   after := skip the first N hits of the point
///   max   := fire at most N times
///   fails := keyed mode, failing attempts per affected key
///
/// Example: "cdn.get=error@0.05;cdn.get=latency@0.02:ms=4000;kv.put=error@0.1"
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  /// Parse a spec string; throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec,
                                       std::uint64_t seed = 1);
  /// Round-trippable canonical form (parse(to_string()) == *this).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

class FaultInjector;

/// One named crossing point. hit() draws the per-hit schedule (hit index n
/// of this point suffers rule r iff the (seed, point, r, n)-derived draw
/// lands under r's probability); decide() is the keyed variant — a pure
/// function of (seed, point, rule, key, attempt) with no internal state, so
/// parallel stages can consult it in any order and still agree.
class FaultPoint {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Per-hit schedule: consumes one hit index and returns the injected
  /// fault, if any. Thread-safe; the hit order defines the schedule.
  FaultDecision hit();

  /// Keyed schedule: the fault for (key, attempt), with no side effects on
  /// the hit counter. Attempts beyond the rule's fail_attempts succeed
  /// (transient by construction); kCrash rules make the key permanently
  /// faulted at every attempt.
  [[nodiscard]] FaultDecision decide(std::uint64_t key,
                                     std::uint64_t attempt = 0) const;

  /// Keyed helper: how many attempts fail for `key` (0 = healthy;
  /// UINT64_MAX = permanent).
  [[nodiscard]] std::uint64_t failing_attempts(std::uint64_t key) const;

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

  /// The fired per-hit schedule so far as "hit_index:kind" pairs in hit
  /// order (capped; see kScheduleCap) — the bit-reproducibility witness.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, FaultKind>> schedule()
      const;

 private:
  friend class FaultInjector;
  static constexpr std::size_t kScheduleCap = 1 << 16;

  FaultPoint(std::string name, std::uint64_t plan_seed,
             std::vector<std::pair<std::size_t, const FaultRule*>> rules,
             obs::MetricsRegistry* metrics);

  /// Evaluate rule `rule_index` for draw index `index` (hit or key).
  [[nodiscard]] bool rule_fires(std::size_t rule_index, const FaultRule& rule,
                                std::uint64_t index) const;

  std::string name_;
  std::uint64_t point_seed_ = 0;
  /// (plan rule index, rule) pairs matching this point, in plan order.
  std::vector<std::pair<std::size_t, const FaultRule*>> rules_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fired_{0};
  /// Per-rule fire counts (max_fires accounting).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> rule_fired_;
  obs::Counter* fired_counter_ = nullptr;  ///< tero.fault.fired{point=...}
  mutable std::mutex schedule_mutex_;
  std::vector<std::pair<std::uint64_t, FaultKind>> fired_schedule_;
};

/// Owns the plan and the registered points. Point references are stable for
/// the injector's lifetime, so subsystems resolve them once at construction
/// (the obs::Counter idiom).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         obs::MetricsRegistry* metrics = nullptr);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register (or fetch) the point named `name`.
  FaultPoint& point(std::string_view name);

  /// Null-safe resolution: nullptr in, nullptr out — the one-branch idiom
  /// for subsystems whose config carries an optional injector.
  [[nodiscard]] static FaultPoint* maybe_point(FaultInjector* injector,
                                               std::string_view name) {
    return injector == nullptr ? nullptr : &injector->point(name);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t total_fired() const;

  /// Deterministic one-line digest of every point's fired schedule
  /// ("point{hit:kind,...};..."), for bit-reproducibility assertions.
  [[nodiscard]] std::string schedule_digest() const;

  /// Human-readable per-point summary (util::Table layout).
  void write_table(std::ostream& os) const;

 private:
  FaultPlan plan_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<FaultPoint>, std::less<>> points_;
};

}  // namespace tero::fault
