#include "fault/fault.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace tero::fault {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, std::string_view why) {
  throw std::invalid_argument("FaultPlan::parse: " + std::string(why) +
                              " in rule \"" + std::string(spec) + "\"");
}

FaultKind parse_kind(std::string_view token, std::string_view rule) {
  if (token == "error") return FaultKind::kError;
  if (token == "latency") return FaultKind::kLatency;
  if (token == "corrupt") return FaultKind::kCorrupt;
  if (token == "crash") return FaultKind::kCrash;
  bad_spec(rule, "unknown fault kind \"" + std::string(token) + "\"");
}

std::uint64_t parse_u64(std::string_view token, std::string_view rule) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    bad_spec(rule, "bad integer \"" + std::string(token) + "\"");
  }
  return value;
}

double parse_prob(std::string_view token, std::string_view rule) {
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(token), &used);
    if (used != token.size() || value < 0.0 || value > 1.0) {
      bad_spec(rule, "probability must be in [0, 1]");
    }
    return value;
  } catch (const std::invalid_argument&) {
    bad_spec(rule, "bad probability \"" + std::string(token) + "\"");
  } catch (const std::out_of_range&) {
    bad_spec(rule, "bad probability \"" + std::string(token) + "\"");
  }
}

FaultRule parse_rule(std::string_view text) {
  FaultRule rule;
  const auto eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    bad_spec(text, "expected point=kind@prob");
  }
  rule.point = std::string(text.substr(0, eq));
  std::string_view rest = text.substr(eq + 1);

  const auto at = rest.find('@');
  if (at == std::string_view::npos) bad_spec(text, "expected kind@prob");
  rule.kind = parse_kind(rest.substr(0, at), text);
  rest.remove_prefix(at + 1);

  const auto colon = rest.find(':');
  rule.probability = parse_prob(rest.substr(0, colon), text);
  rest = colon == std::string_view::npos ? std::string_view{}
                                         : rest.substr(colon + 1);

  while (!rest.empty()) {
    const auto next = rest.find(':');
    const std::string_view option = rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view{}
                                          : rest.substr(next + 1);
    const auto opt_eq = option.find('=');
    if (opt_eq == std::string_view::npos) {
      bad_spec(text, "expected option=value");
    }
    const std::string_view key = option.substr(0, opt_eq);
    const std::string_view value = option.substr(opt_eq + 1);
    if (key == "ms") {
      rule.latency_s = static_cast<double>(parse_u64(value, text)) / 1000.0;
    } else if (key == "after") {
      rule.after = parse_u64(value, text);
    } else if (key == "max") {
      rule.max_fires = parse_u64(value, text);
    } else if (key == "fails") {
      rule.fail_attempts = parse_u64(value, text);
    } else {
      bad_spec(text, "unknown option \"" + std::string(key) + "\"");
    }
  }
  return rule;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kError: return "error";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCrash: return "crash";
  }
  return "none";
}

bool FaultRule::matches(std::string_view name) const {
  if (!point.empty() && point.back() == '*') {
    const std::string_view prefix(point.data(), point.size() - 1);
    return name.size() >= prefix.size() &&
           name.substr(0, prefix.size()) == prefix;
  }
  return name == point;
}

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  while (!spec.empty()) {
    const auto semi = spec.find(';');
    const std::string_view rule = spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    if (rule.empty()) continue;
    plan.rules.push_back(parse_rule(rule));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& r = rules[i];
    if (i != 0) os << ';';
    os << r.point << '=' << fault::to_string(r.kind) << '@' << r.probability;
    if (r.kind == FaultKind::kLatency) {
      os << ":ms=" << static_cast<std::uint64_t>(r.latency_s * 1000.0 + 0.5);
    }
    if (r.after != 0) os << ":after=" << r.after;
    if (r.max_fires != 0) os << ":max=" << r.max_fires;
    if (r.fail_attempts != 2) os << ":fails=" << r.fail_attempts;
  }
  return os.str();
}

FaultPoint::FaultPoint(
    std::string name, std::uint64_t plan_seed,
    std::vector<std::pair<std::size_t, const FaultRule*>> rules,
    obs::MetricsRegistry* metrics)
    : name_(std::move(name)),
      point_seed_(util::mix_seed(plan_seed,
                                 util::fnv1a64({name_.data(), name_.size()}))),
      rules_(std::move(rules)) {
  rule_fired_.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    rule_fired_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  if (metrics != nullptr && !rules_.empty()) {
    fired_counter_ = &metrics->counter(
        obs::MetricsRegistry::labeled("tero.fault.fired", {{"point", name_}}));
  }
}

bool FaultPoint::rule_fires(std::size_t rule_index, const FaultRule& rule,
                            std::uint64_t index) const {
  if (rule.probability <= 0.0) return false;
  if (rule.probability >= 1.0) return true;
  // Pure function of (plan seed, point name, plan rule index, draw index):
  // independent of evaluation order, thread count, and other points.
  util::Rng rng = util::Rng::indexed(
      util::mix_seed(point_seed_, rules_[rule_index].first), index);
  return rng.uniform() < rule.probability;
}

FaultDecision FaultPoint::hit() {
  const std::uint64_t index = hits_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = *rules_[i].second;
    if (index < rule.after) continue;
    if (!rule_fires(i, rule, index)) continue;
    if (rule.max_fires != 0) {
      // Claim one of the capped fire slots; losers fall through to the
      // next rule. Relaxed is fine: the cap is a budget, not a schedule
      // (hit-index draws stay deterministic either way).
      const std::uint64_t prior =
          rule_fired_[i]->fetch_add(1, std::memory_order_relaxed);
      if (prior >= rule.max_fires) continue;
    } else {
      rule_fired_[i]->fetch_add(1, std::memory_order_relaxed);
    }
    fired_.fetch_add(1, std::memory_order_relaxed);
    if (fired_counter_ != nullptr) fired_counter_->add();
    {
      std::lock_guard<std::mutex> lock(schedule_mutex_);
      if (fired_schedule_.size() < kScheduleCap) {
        fired_schedule_.emplace_back(index, rule.kind);
      }
    }
    return FaultDecision{rule.kind, rule.kind == FaultKind::kLatency
                                        ? rule.latency_s
                                        : 0.0};
  }
  return {};
}

std::uint64_t FaultPoint::failing_attempts(std::uint64_t key) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = *rules_[i].second;
    if (key < rule.after) continue;
    if (!rule_fires(i, rule, key)) continue;
    if (rule.kind == FaultKind::kCrash) {
      return std::numeric_limits<std::uint64_t>::max();  // permanent
    }
    return rule.fail_attempts;
  }
  return 0;
}

FaultDecision FaultPoint::decide(std::uint64_t key,
                                 std::uint64_t attempt) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = *rules_[i].second;
    if (key < rule.after) continue;
    if (!rule_fires(i, rule, key)) continue;
    const bool permanent = rule.kind == FaultKind::kCrash;
    if (!permanent && attempt >= rule.fail_attempts) return {};
    return FaultDecision{rule.kind, rule.kind == FaultKind::kLatency
                                        ? rule.latency_s
                                        : 0.0};
  }
  return {};
}

std::vector<std::pair<std::uint64_t, FaultKind>> FaultPoint::schedule() const {
  std::vector<std::pair<std::uint64_t, FaultKind>> out;
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    out = fired_schedule_;
  }
  // Each hit index fires at most once, so sorting by index gives one
  // canonical order regardless of which thread logged first.
  std::sort(out.begin(), out.end());
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, obs::MetricsRegistry* metrics)
    : plan_(std::move(plan)), metrics_(metrics) {}

FaultPoint& FaultInjector::point(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it != points_.end()) return *it->second;
  std::vector<std::pair<std::size_t, const FaultRule*>> matching;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (plan_.rules[i].matches(name)) matching.emplace_back(i, &plan_.rules[i]);
  }
  auto created = std::unique_ptr<FaultPoint>(new FaultPoint(
      std::string(name), plan_.seed, std::move(matching), metrics_));
  return *points_.emplace(std::string(name), std::move(created))
              .first->second;
}

std::uint64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, point] : points_) total += point->fired();
  return total;
}

std::string FaultInjector::schedule_digest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, point] : points_) {
    const auto schedule = point->schedule();
    if (schedule.empty()) continue;
    os << name << '{';
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      if (i != 0) os << ',';
      os << schedule[i].first << ':' << to_string(schedule[i].second);
    }
    os << "};";
  }
  return os.str();
}

void FaultInjector::write_table(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "fault points (plan seed " << plan_.seed << "):\n";
  for (const auto& [name, point] : points_) {
    os << "  " << name << "  hits=" << point->hits()
       << "  fired=" << point->fired() << '\n';
  }
}

}  // namespace tero::fault
