#pragma once

#include "image/arena.hpp"
#include "image/image.hpp"

namespace tero::ocr {

/// Knobs of the App. E pre-processing chain. Defaults follow the paper:
/// up-scale, blur, Otsu threshold, and a dilate/erode round to merge
/// disjoint glyph regions.
struct PreprocessConfig {
  int upscale_factor = 4;
  double blur_sigma = 1.0;
  int morph_rounds = 1;  ///< dilate+erode rounds; 0 disables
};

/// Run the full App. E pre-processing over a cropped latency region and
/// return a binary image (255 = ink). Text polarity is normalized so ink is
/// always the foreground minority.
[[nodiscard]] image::GrayImage preprocess(const image::GrayImage& crop,
                                          const PreprocessConfig& config = {});
/// Arena-backed fast path: every intermediate (and the result) lives in
/// `arena`, so the hot loop performs no global allocation. The returned
/// image is valid until the enclosing Arena::Frame ends.
[[nodiscard]] image::GrayImage preprocess(const image::GrayImage& crop,
                                          const PreprocessConfig& config,
                                          image::Arena& arena);

/// The "reprocessing" variant (App. E step 4): binarize only, with no
/// up-scaling/blur/morphology. Used when the engines' outputs were
/// ambiguous after full pre-processing.
[[nodiscard]] image::GrayImage preprocess_minimal(const image::GrayImage& crop);
[[nodiscard]] image::GrayImage preprocess_minimal(const image::GrayImage& crop,
                                                  image::Arena& arena);

}  // namespace tero::ocr
