#pragma once

#include <memory>
#include <string>
#include <vector>

#include "image/image.hpp"

namespace tero::ocr {

/// One recognized character with the classifier's confidence in [0, 1].
struct CharMatch {
  char character = '?';
  double confidence = 0.0;
  image::Rect bounds;
};

/// Raw output of an OCR engine over a preprocessed (binary) image.
struct OcrOutput {
  std::string text;  ///< characters left-to-right
  std::vector<CharMatch> chars;
};

/// Interface of a character-recognition engine. The repo ships three
/// from-scratch implementations with deliberately different algorithms —
/// standing in for Tesseract, EasyOCR, and PaddleOCR — so that, as the paper
/// observes (§3.2), "they make mistakes on partially overlapping sets of
/// thumbnails" and 2-of-3 voting has signal to work with.
class OcrEngine {
 public:
  virtual ~OcrEngine() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Recognize all characters in a binary image (255 = ink on 0 background).
  [[nodiscard]] virtual OcrOutput recognize(
      const image::GrayImage& binary) const = 0;
};

/// Factory for the three built-in engines, in the paper's order:
/// "templat" (Tesseract-like template matcher), "zonenet" (EasyOCR-like
/// zoning-feature classifier), "profiler" (PaddleOCR-like projection-profile
/// classifier).
[[nodiscard]] std::vector<std::unique_ptr<OcrEngine>> make_builtin_engines();

}  // namespace tero::ocr
