#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "image/image.hpp"
#include "ocr/engine.hpp"
#include "ocr/game_ui.hpp"
#include "ocr/preprocess.hpp"

namespace tero::ocr {

/// Outcome of extracting a latency number from one thumbnail (§3.2 step 4).
struct LatencyReading {
  /// The voted latency (at least two engines agreed), if any.
  std::optional<int> primary;
  /// The dissenting third engine's value, kept as an alternative for the
  /// data-analysis module to fall back on (§3.3.2).
  std::optional<int> alternative;
  /// Engines never reached agreement even after reprocessing; the thumbnail
  /// is discarded.
  bool ambiguous = false;
  /// The reprocessing path (OCR without full pre-processing) was taken.
  bool reprocessed = false;

  [[nodiscard]] bool extracted() const noexcept { return primary.has_value(); }
};

/// The image-processing module: crops the game's latency region, runs the
/// App. E pre-processing, feeds all three OCR engines, cleans each output
/// with game-specific heuristics, and votes.
class LatencyExtractor {
 public:
  explicit LatencyExtractor(PreprocessConfig config = {});

  /// Full Tero pipeline over one thumbnail.
  [[nodiscard]] LatencyReading extract(const image::GrayImage& thumbnail,
                                       const GameUiSpec& spec) const;

  /// Single-engine extraction (same crop/pre-processing/cleanup, no voting);
  /// used to benchmark the engines individually (Table 4).
  [[nodiscard]] std::optional<int> extract_with_engine(
      const image::GrayImage& thumbnail, const GameUiSpec& spec,
      std::size_t engine_index) const;

  [[nodiscard]] std::span<const std::unique_ptr<OcrEngine>> engines()
      const noexcept {
    return engines_;
  }

  /// Game-specific cleanup (§3.2 step 3): strip the game's label characters,
  /// repair classic digit/letter confusions (O->0, B->8, S->5, A->4, ...),
  /// and reject placeholders (0) and values longer than 3 digits.
  [[nodiscard]] static std::optional<int> cleanup(const OcrOutput& output,
                                                  const GameUiSpec& spec);

 private:
  [[nodiscard]] LatencyReading vote(
      std::span<const std::optional<int>> values) const;

  PreprocessConfig config_;
  std::vector<std::unique_ptr<OcrEngine>> engines_;
};

}  // namespace tero::ocr
