#include "ocr/game_ui.hpp"

#include <vector>

#include "util/strings.hpp"

namespace tero::ocr {
namespace {

// Region sizes leave room for prefix + 3 digits + suffix at the game's
// text scale. Coordinates are chosen per game so that "knowledge of each
// game's user interface" (§3.2) is real: cropping with the wrong spec reads
// the wrong part of the screen (the game-mislabeling failure mode, §3.3.3).
const std::vector<GameUiSpec>& specs() {
  static const std::vector<GameUiSpec> table = {
      {"League of Legends", {214, 6, 100, 22}, "ping ", "ms", 2},
      {"Teamfight Tactics", {214, 10, 100, 22}, "", "ms", 2},
      {"Call of Duty Warzone", {8, 8, 150, 22}, "latency ", "", 2},
      {"Call of Duty Modern Warfare", {8, 8, 150, 22}, "latency ", "", 2},
      {"Genshin Impact", {10, 150, 96, 22}, "", "ms", 2},
      {"Dota 2", {218, 150, 96, 22}, "ping ", "", 2},
      {"Among Us", {10, 120, 96, 22}, "ping ", "", 2},
      {"Lost Ark", {218, 120, 96, 22}, "", "ms", 2},
      {"Apex Legends", {10, 34, 96, 22}, "", "ms", 2},
  };
  return table;
}

}  // namespace

const GameUiSpec& ui_spec_for(std::string_view game) {
  for (const auto& spec : specs()) {
    if (util::iequals(spec.game, game)) return spec;
  }
  static const GameUiSpec generic{
      "generic", {214, 6, 100, 22}, "", "ms", 2};
  return generic;
}

std::span<const GameUiSpec> all_ui_specs() { return specs(); }

}  // namespace tero::ocr
