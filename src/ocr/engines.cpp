#include <algorithm>
#include <cmath>
#include <limits>

#include "image/draw.hpp"
#include "image/font.hpp"
#include "image/ops.hpp"
#include "ocr/engine.hpp"

namespace tero::ocr {
namespace {

constexpr int kGlyphGrid = 16;  ///< normalized glyph resolution

/// Render a font character to a clean binary raster and normalize it onto
/// the kGlyphGrid density grid — the shared prototype representation.
std::vector<double> render_prototype(char character) {
  constexpr int kScale = 4;
  image::GrayImage canvas(image::kGlyphWidth * kScale + 4,
                          image::kGlyphHeight * kScale + 4, 0);
  image::TextStyle style;
  style.scale = kScale;
  style.foreground = 255;
  style.background = 0;
  image::draw_text(canvas, 2, 2, std::string(1, character), style);
  const auto components = image::connected_components(canvas, 1);
  // Merge all components (multi-part glyphs like 'i' and ':').
  image::Rect bounds{0, 0, canvas.width(), canvas.height()};
  if (!components.empty()) {
    int min_x = canvas.width(), min_y = canvas.height(), max_x = 0, max_y = 0;
    for (const auto& c : components) {
      min_x = std::min(min_x, c.bounds.x);
      min_y = std::min(min_y, c.bounds.y);
      max_x = std::max(max_x, c.bounds.x + c.bounds.w);
      max_y = std::max(max_y, c.bounds.y + c.bounds.h);
    }
    bounds = image::Rect{min_x, min_y, max_x - min_x, max_y - min_y};
  }
  return image::normalize_glyph(canvas, bounds, kGlyphGrid);
}

struct Prototype {
  char character;
  std::vector<double> grid;
};

const std::vector<Prototype>& prototypes() {
  static const std::vector<Prototype> table = [] {
    std::vector<Prototype> protos;
    for (char c : image::font_alphabet()) {
      protos.push_back(Prototype{c, render_prototype(c)});
    }
    return protos;
  }();
  return table;
}

/// Glyph segmentation shared by all engines: connected components, merged
/// when their x-ranges overlap (multi-part glyphs), sorted left-to-right.
std::vector<image::Rect> segment_glyphs(const image::GrayImage& binary) {
  const int min_area = std::max(4, binary.width() * binary.height() / 2000);
  auto components = image::connected_components(binary, min_area);
  std::vector<image::Rect> boxes;
  for (const auto& comp : components) {
    bool merged = false;
    for (auto& box : boxes) {
      const int overlap = std::min(box.x + box.w, comp.bounds.x + comp.bounds.w) -
                          std::max(box.x, comp.bounds.x);
      if (overlap > std::min(box.w, comp.bounds.w) / 2) {
        const int x1 = std::min(box.x, comp.bounds.x);
        const int y1 = std::min(box.y, comp.bounds.y);
        const int x2 =
            std::max(box.x + box.w, comp.bounds.x + comp.bounds.w);
        const int y2 =
            std::max(box.y + box.h, comp.bounds.y + comp.bounds.h);
        box = image::Rect{x1, y1, x2 - x1, y2 - y1};
        merged = true;
        break;
      }
    }
    if (!merged) boxes.push_back(comp.bounds);
  }
  std::sort(boxes.begin(), boxes.end(),
            [](const image::Rect& a, const image::Rect& b) { return a.x < b.x; });
  return boxes;
}

/// Template-matching engine ("templat", Tesseract-like): normalized
/// correlation against rendered prototypes. Strong on clean input, brittle
/// under noise/partial occlusion — it misses more than the other two, like
/// Tesseract in Table 4.
class TemplateEngine final : public OcrEngine {
 public:
  [[nodiscard]] std::string name() const override { return "templat"; }

  [[nodiscard]] OcrOutput recognize(
      const image::GrayImage& binary) const override {
    OcrOutput out;
    for (const auto& box : segment_glyphs(binary)) {
      const auto grid = image::normalize_glyph(binary, box, kGlyphGrid);
      char best_char = '?';
      double best_score = -1.0;
      for (const auto& proto : prototypes()) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (std::size_t i = 0; i < grid.size(); ++i) {
          dot += grid[i] * proto.grid[i];
          na += grid[i] * grid[i];
          nb += proto.grid[i] * proto.grid[i];
        }
        const double denom = std::sqrt(na * nb);
        const double score = denom > 0.0 ? dot / denom : 0.0;
        if (score > best_score) {
          best_score = score;
          best_char = proto.character;
        }
      }
      // Strict acceptance threshold: rejects degraded glyphs outright.
      if (best_score < 0.86) continue;
      out.chars.push_back(CharMatch{best_char, best_score, box});
      out.text += best_char;
    }
    return out;
  }
};

/// Zoning-feature engine ("zonenet", EasyOCR-like): 4x4 ink-density zones
/// plus aspect ratio and centroid features, nearest-prototype by Euclidean
/// distance. More tolerant of degradation, with its own confusion set.
class ZoningEngine final : public OcrEngine {
 public:
  ZoningEngine() {
    for (const auto& proto : prototypes()) {
      features_.push_back({proto.character, features_of(proto.grid, 1.0)});
    }
  }

  [[nodiscard]] std::string name() const override { return "zonenet"; }

  [[nodiscard]] OcrOutput recognize(
      const image::GrayImage& binary) const override {
    OcrOutput out;
    for (const auto& box : segment_glyphs(binary)) {
      const auto grid = image::normalize_glyph(binary, box, kGlyphGrid);
      const double aspect =
          box.h > 0 ? static_cast<double>(box.w) / box.h : 1.0;
      const auto feats = features_of(grid, aspect);
      char best_char = '?';
      double best_distance = std::numeric_limits<double>::infinity();
      for (const auto& [character, proto_feats] : features_) {
        double d2 = 0.0;
        for (std::size_t i = 0; i < feats.size(); ++i) {
          const double diff = feats[i] - proto_feats[i];
          d2 += diff * diff;
        }
        if (d2 < best_distance) {
          best_distance = d2;
          best_char = character;
        }
      }
      const double confidence = std::exp(-best_distance);
      if (confidence < 0.09) continue;  // lenient acceptance
      out.chars.push_back(CharMatch{best_char, confidence, box});
      out.text += best_char;
    }
    return out;
  }

 private:
  /// 16 zone densities + aspect + x/y ink centroid.
  static std::vector<double> features_of(const std::vector<double>& grid,
                                         double aspect) {
    std::vector<double> feats;
    feats.reserve(19);
    constexpr int kZones = 4;
    constexpr int kCell = kGlyphGrid / kZones;
    for (int zy = 0; zy < kZones; ++zy) {
      for (int zx = 0; zx < kZones; ++zx) {
        double ink = 0.0;
        for (int y = zy * kCell; y < (zy + 1) * kCell; ++y) {
          for (int x = zx * kCell; x < (zx + 1) * kCell; ++x) {
            ink += grid[static_cast<std::size_t>(y) * kGlyphGrid + x];
          }
        }
        feats.push_back(ink / (kCell * kCell));
      }
    }
    double total = 0.0, cx = 0.0, cy = 0.0;
    for (int y = 0; y < kGlyphGrid; ++y) {
      for (int x = 0; x < kGlyphGrid; ++x) {
        const double v = grid[static_cast<std::size_t>(y) * kGlyphGrid + x];
        total += v;
        cx += v * x;
        cy += v * y;
      }
    }
    feats.push_back(std::min(aspect, 3.0));
    feats.push_back(total > 0.0 ? cx / (total * kGlyphGrid) : 0.5);
    feats.push_back(total > 0.0 ? cy / (total * kGlyphGrid) : 0.5);
    return feats;
  }

  std::vector<std::pair<char, std::vector<double>>> features_;
};

/// Projection-profile engine ("profiler", PaddleOCR-like): classifies by the
/// L1 distance between row/column ink-projection histograms. Robust to
/// salt-and-pepper noise but weak at telling apart glyphs with similar
/// silhouettes (8/B, 0/O) — a distinct confusion set again.
class ProjectionEngine final : public OcrEngine {
 public:
  ProjectionEngine() {
    for (const auto& proto : prototypes()) {
      profiles_.push_back({proto.character, profile_of(proto.grid)});
    }
  }

  [[nodiscard]] std::string name() const override { return "profiler"; }

  [[nodiscard]] OcrOutput recognize(
      const image::GrayImage& binary) const override {
    OcrOutput out;
    for (const auto& box : segment_glyphs(binary)) {
      const auto grid = image::normalize_glyph(binary, box, kGlyphGrid);
      const auto prof = profile_of(grid);
      char best_char = '?';
      double best_distance = std::numeric_limits<double>::infinity();
      for (const auto& [character, proto_prof] : profiles_) {
        double d = 0.0;
        for (std::size_t i = 0; i < prof.size(); ++i) {
          d += std::abs(prof[i] - proto_prof[i]);
        }
        if (d < best_distance) {
          best_distance = d;
          best_char = character;
        }
      }
      const double confidence = 1.0 / (1.0 + best_distance);
      if (confidence < 0.18) continue;
      out.chars.push_back(CharMatch{best_char, confidence, box});
      out.text += best_char;
    }
    return out;
  }

 private:
  /// Row sums followed by column sums, each normalized to mean ink.
  static std::vector<double> profile_of(const std::vector<double>& grid) {
    std::vector<double> prof(2 * kGlyphGrid, 0.0);
    for (int y = 0; y < kGlyphGrid; ++y) {
      for (int x = 0; x < kGlyphGrid; ++x) {
        const double v = grid[static_cast<std::size_t>(y) * kGlyphGrid + x];
        prof[y] += v;
        prof[kGlyphGrid + x] += v;
      }
    }
    for (double& p : prof) p /= kGlyphGrid;
    return prof;
  }

  std::vector<std::pair<char, std::vector<double>>> profiles_;
};

}  // namespace

std::vector<std::unique_ptr<OcrEngine>> make_builtin_engines() {
  std::vector<std::unique_ptr<OcrEngine>> engines;
  engines.push_back(std::make_unique<TemplateEngine>());
  engines.push_back(std::make_unique<ZoningEngine>());
  engines.push_back(std::make_unique<ProjectionEngine>());
  return engines;
}

}  // namespace tero::ocr
