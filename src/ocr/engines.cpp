#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "image/draw.hpp"
#include "image/font.hpp"
#include "image/ops.hpp"
#include "ocr/engine.hpp"
#include "util/simd.hpp"

namespace tero::ocr {
namespace {

namespace simd = util::simd;

constexpr int kGlyphGrid = 16;                    ///< normalized resolution
constexpr int kGridCells = kGlyphGrid * kGlyphGrid;

/// Render a font character to a clean binary raster and normalize it onto
/// the kGlyphGrid density grid — the shared prototype representation.
std::array<float, kGridCells> render_prototype(char character) {
  constexpr int kScale = 4;
  image::GrayImage canvas(image::kGlyphWidth * kScale + 4,
                          image::kGlyphHeight * kScale + 4, 0);
  image::TextStyle style;
  style.scale = kScale;
  style.foreground = 255;
  style.background = 0;
  image::draw_text(canvas, 2, 2, std::string(1, character), style);
  const auto components = image::connected_components(canvas, 1);
  // Merge all components (multi-part glyphs like 'i' and ':').
  image::Rect bounds{0, 0, canvas.width(), canvas.height()};
  if (!components.empty()) {
    int min_x = canvas.width(), min_y = canvas.height(), max_x = 0, max_y = 0;
    for (const auto& c : components) {
      min_x = std::min(min_x, c.bounds.x);
      min_y = std::min(min_y, c.bounds.y);
      max_x = std::max(max_x, c.bounds.x + c.bounds.w);
      max_y = std::max(max_y, c.bounds.y + c.bounds.h);
    }
    bounds = image::Rect{min_x, min_y, max_x - min_x, max_y - min_y};
  }
  std::array<float, kGridCells> grid;
  image::normalize_glyph(canvas, bounds, kGlyphGrid, grid);
  return grid;
}

/// Struct-of-arrays prototype storage: one contiguous float block holding
/// every prototype's density grid back to back (plus per-prototype squared
/// norms for the NCC denominator), instead of a vector of per-character
/// heap vectors. The match loops stream through one block sequentially —
/// cache-local and directly consumable by the SIMD reductions.
struct PrototypeBank {
  std::string chars;              ///< chars[i] labels grid block i
  std::vector<float> grids;       ///< size() == chars.size() * kGridCells
  std::vector<float> norms;       ///< dot(grid_i, grid_i), precomputed

  [[nodiscard]] const float* grid(std::size_t i) const noexcept {
    return grids.data() + i * kGridCells;
  }
  [[nodiscard]] std::size_t count() const noexcept { return chars.size(); }
};

const PrototypeBank& prototype_bank() {
  static const PrototypeBank bank = [] {
    PrototypeBank b;
    for (char c : image::font_alphabet()) {
      const auto grid = render_prototype(c);
      b.chars.push_back(c);
      b.grids.insert(b.grids.end(), grid.begin(), grid.end());
      b.norms.push_back(simd::dot_f32(grid.data(), grid.data(), kGridCells));
    }
    return b;
  }();
  return bank;
}

/// Glyph segmentation shared by all engines: connected components, merged
/// when their x-ranges overlap (multi-part glyphs), sorted left-to-right.
std::vector<image::Rect> segment_glyphs(const image::GrayImage& binary) {
  const int min_area = std::max(4, binary.width() * binary.height() / 2000);
  auto components = image::connected_components(binary, min_area);
  std::vector<image::Rect> boxes;
  for (const auto& comp : components) {
    bool merged = false;
    for (auto& box : boxes) {
      const int overlap = std::min(box.x + box.w, comp.bounds.x + comp.bounds.w) -
                          std::max(box.x, comp.bounds.x);
      if (overlap > std::min(box.w, comp.bounds.w) / 2) {
        const int x1 = std::min(box.x, comp.bounds.x);
        const int y1 = std::min(box.y, comp.bounds.y);
        const int x2 =
            std::max(box.x + box.w, comp.bounds.x + comp.bounds.w);
        const int y2 =
            std::max(box.y + box.h, comp.bounds.y + comp.bounds.h);
        box = image::Rect{x1, y1, x2 - x1, y2 - y1};
        merged = true;
        break;
      }
    }
    if (!merged) boxes.push_back(comp.bounds);
  }
  std::sort(boxes.begin(), boxes.end(),
            [](const image::Rect& a, const image::Rect& b) { return a.x < b.x; });
  return boxes;
}

/// Template-matching engine ("templat", Tesseract-like): normalized
/// correlation against rendered prototypes. Strong on clean input, brittle
/// under noise/partial occlusion — it misses more than the other two, like
/// Tesseract in Table 4.
class TemplateEngine final : public OcrEngine {
 public:
  [[nodiscard]] std::string name() const override { return "templat"; }

  [[nodiscard]] OcrOutput recognize(
      const image::GrayImage& binary) const override {
    const PrototypeBank& bank = prototype_bank();
    OcrOutput out;
    alignas(16) std::array<float, kGridCells> grid;
    for (const auto& box : segment_glyphs(binary)) {
      image::normalize_glyph(binary, box, kGlyphGrid, grid);
      // The query's squared norm is proto-invariant: hoist it out of the
      // match loop (the old per-prototype recomputation was pure waste).
      const float na = simd::dot_f32(grid.data(), grid.data(), kGridCells);
      char best_char = '?';
      double best_score = -1.0;
      for (std::size_t i = 0; i < bank.count(); ++i) {
        const float dot = simd::dot_f32(grid.data(), bank.grid(i), kGridCells);
        const double denom = std::sqrt(static_cast<double>(na) *
                                       static_cast<double>(bank.norms[i]));
        const double score = denom > 0.0 ? dot / denom : 0.0;
        if (score > best_score) {
          best_score = score;
          best_char = bank.chars[i];
        }
      }
      // Strict acceptance threshold: rejects degraded glyphs outright.
      if (best_score < 0.86) continue;
      out.chars.push_back(CharMatch{best_char, best_score, box});
      out.text += best_char;
    }
    return out;
  }
};

constexpr int kZoneFeatures = 19;  ///< 16 zone densities + aspect + centroid

/// 16 zone densities + aspect + x/y ink centroid, written into a
/// caller-owned buffer (no allocation in the match loop).
void features_of(const float* grid, double aspect,
                 std::array<float, kZoneFeatures>& feats) noexcept {
  constexpr int kZones = 4;
  constexpr int kCell = kGlyphGrid / kZones;
  std::size_t out = 0;
  for (int zy = 0; zy < kZones; ++zy) {
    for (int zx = 0; zx < kZones; ++zx) {
      float ink = 0.0f;
      for (int y = zy * kCell; y < (zy + 1) * kCell; ++y) {
        for (int x = zx * kCell; x < (zx + 1) * kCell; ++x) {
          ink += grid[static_cast<std::size_t>(y) * kGlyphGrid + x];
        }
      }
      feats[out++] = ink / (kCell * kCell);
    }
  }
  float total = 0.0f, cx = 0.0f, cy = 0.0f;
  for (int y = 0; y < kGlyphGrid; ++y) {
    for (int x = 0; x < kGlyphGrid; ++x) {
      const float v = grid[static_cast<std::size_t>(y) * kGlyphGrid + x];
      total += v;
      cx += v * x;
      cy += v * y;
    }
  }
  feats[out++] = static_cast<float>(std::min(aspect, 3.0));
  feats[out++] = total > 0.0f ? cx / (total * kGlyphGrid) : 0.5f;
  feats[out] = total > 0.0f ? cy / (total * kGlyphGrid) : 0.5f;
}

/// Zoning-feature engine ("zonenet", EasyOCR-like): 4x4 ink-density zones
/// plus aspect ratio and centroid features, nearest-prototype by Euclidean
/// distance. More tolerant of degradation, with its own confusion set.
class ZoningEngine final : public OcrEngine {
 public:
  ZoningEngine() {
    const PrototypeBank& bank = prototype_bank();
    feats_.resize(bank.count() * kZoneFeatures);
    std::array<float, kZoneFeatures> feats;
    for (std::size_t i = 0; i < bank.count(); ++i) {
      features_of(bank.grid(i), 1.0, feats);
      std::copy(feats.begin(), feats.end(),
                feats_.begin() + static_cast<std::ptrdiff_t>(i * kZoneFeatures));
    }
  }

  [[nodiscard]] std::string name() const override { return "zonenet"; }

  [[nodiscard]] OcrOutput recognize(
      const image::GrayImage& binary) const override {
    const PrototypeBank& bank = prototype_bank();
    OcrOutput out;
    alignas(16) std::array<float, kGridCells> grid;
    alignas(16) std::array<float, kZoneFeatures> feats;
    for (const auto& box : segment_glyphs(binary)) {
      image::normalize_glyph(binary, box, kGlyphGrid, grid);
      const double aspect =
          box.h > 0 ? static_cast<double>(box.w) / box.h : 1.0;
      features_of(grid.data(), aspect, feats);
      char best_char = '?';
      float best_distance = std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < bank.count(); ++i) {
        const float d2 = simd::l2sq_f32(
            feats.data(), feats_.data() + i * kZoneFeatures, kZoneFeatures);
        if (d2 < best_distance) {
          best_distance = d2;
          best_char = bank.chars[i];
        }
      }
      const double confidence = std::exp(-static_cast<double>(best_distance));
      if (confidence < 0.09) continue;  // lenient acceptance
      out.chars.push_back(CharMatch{best_char, confidence, box});
      out.text += best_char;
    }
    return out;
  }

 private:
  std::vector<float> feats_;  ///< SoA: count() * kZoneFeatures, contiguous
};

constexpr int kProfileBins = 2 * kGlyphGrid;  ///< row sums then column sums

/// Row sums followed by column sums, each normalized to mean ink; written
/// into a caller-owned buffer.
void profile_of(const float* grid,
                std::array<float, kProfileBins>& prof) noexcept {
  prof.fill(0.0f);
  for (int y = 0; y < kGlyphGrid; ++y) {
    for (int x = 0; x < kGlyphGrid; ++x) {
      const float v = grid[static_cast<std::size_t>(y) * kGlyphGrid + x];
      prof[y] += v;
      prof[kGlyphGrid + x] += v;
    }
  }
  for (float& p : prof) p /= kGlyphGrid;
}

/// Projection-profile engine ("profiler", PaddleOCR-like): classifies by the
/// L1 distance between row/column ink-projection histograms. Robust to
/// salt-and-pepper noise but weak at telling apart glyphs with similar
/// silhouettes (8/B, 0/O) — a distinct confusion set again.
class ProjectionEngine final : public OcrEngine {
 public:
  ProjectionEngine() {
    const PrototypeBank& bank = prototype_bank();
    profiles_.resize(bank.count() * kProfileBins);
    std::array<float, kProfileBins> prof;
    for (std::size_t i = 0; i < bank.count(); ++i) {
      profile_of(bank.grid(i), prof);
      std::copy(prof.begin(), prof.end(),
                profiles_.begin() + static_cast<std::ptrdiff_t>(i * kProfileBins));
    }
  }

  [[nodiscard]] std::string name() const override { return "profiler"; }

  [[nodiscard]] OcrOutput recognize(
      const image::GrayImage& binary) const override {
    const PrototypeBank& bank = prototype_bank();
    OcrOutput out;
    alignas(16) std::array<float, kGridCells> grid;
    alignas(16) std::array<float, kProfileBins> prof;
    for (const auto& box : segment_glyphs(binary)) {
      image::normalize_glyph(binary, box, kGlyphGrid, grid);
      profile_of(grid.data(), prof);
      char best_char = '?';
      float best_distance = std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < bank.count(); ++i) {
        const float d = simd::l1_f32(
            prof.data(), profiles_.data() + i * kProfileBins, kProfileBins);
        if (d < best_distance) {
          best_distance = d;
          best_char = bank.chars[i];
        }
      }
      const double confidence = 1.0 / (1.0 + static_cast<double>(best_distance));
      if (confidence < 0.18) continue;
      out.chars.push_back(CharMatch{best_char, confidence, box});
      out.text += best_char;
    }
    return out;
  }

 private:
  std::vector<float> profiles_;  ///< SoA: count() * kProfileBins, contiguous
};

}  // namespace

std::vector<std::unique_ptr<OcrEngine>> make_builtin_engines() {
  std::vector<std::unique_ptr<OcrEngine>> engines;
  engines.push_back(std::make_unique<TemplateEngine>());
  engines.push_back(std::make_unique<ZoningEngine>());
  engines.push_back(std::make_unique<ProjectionEngine>());
  return engines;
}

}  // namespace tero::ocr
