#pragma once

#include <span>
#include <string>
#include <string_view>

#include "image/image.hpp"

namespace tero::ocr {

/// Twitch preview thumbnails are downloaded at a fixed small resolution.
inline constexpr int kThumbnailWidth = 320;
inline constexpr int kThumbnailHeight = 180;

/// Per-game user-interface knowledge (§3.2): where the game draws its
/// latency, and what text surrounds the number. Tero crops `latency_region`
/// before OCR and strips `prefix`/`suffix` during cleanup.
struct GameUiSpec {
  std::string game;
  image::Rect latency_region;  ///< within the kThumbnailWidth x Height frame
  std::string prefix;          ///< label before the number ("ping ", ...)
  std::string suffix;          ///< label after the number ("ms", ...)
  int text_scale = 2;          ///< font scale the game renders at (~75 dpi)
};

/// UI spec for a game name; unknown games get a generic top-right spec.
[[nodiscard]] const GameUiSpec& ui_spec_for(std::string_view game);

/// All built-in specs (one per game in App. C).
[[nodiscard]] std::span<const GameUiSpec> all_ui_specs();

}  // namespace tero::ocr
