#include "ocr/extractor.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/strings.hpp"

namespace tero::ocr {
namespace {

/// Letters the engines classically confuse with digits at low resolution
/// (§3.2: "mistake 8 for B or S, 0 for O, 4 for A").
std::optional<char> confusable_digit(char c) noexcept {
  switch (c) {
    case 'O': return '0';
    case 'B': return '8';
    case 'S': return '5';
    case 'A': return '4';
    case 'l': return '1';
    case 'i': return '1';
    default: return std::nullopt;
  }
}

bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

}  // namespace

LatencyExtractor::LatencyExtractor(PreprocessConfig config)
    : config_(config), engines_(make_builtin_engines()) {}

std::optional<int> LatencyExtractor::cleanup(const OcrOutput& output,
                                             const GameUiSpec& spec) {
  const std::string& text = output.text;
  if (text.empty()) return std::nullopt;

  // Locate the maximal window of digit-ish characters; label characters
  // ("ping", "ms", "latency") surround the number, and anything from the
  // game's own label set is never repaired into a digit.
  std::string label_chars = util::to_lower(spec.prefix + spec.suffix);
  auto is_label_char = [&](char c) {
    return label_chars.find(static_cast<char>(
               std::tolower(static_cast<unsigned char>(c)))) !=
           std::string::npos;
  };

  // First pass: find indices of true digits.
  int first_digit = -1;
  int last_digit = -1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (is_digit(text[i])) {
      if (first_digit < 0) first_digit = static_cast<int>(i);
      last_digit = static_cast<int>(i);
    }
  }

  std::string number;
  if (first_digit >= 0) {
    // Extend across adjacent confusable letters (a 'B' between digits is
    // more likely an 8 than a label character), then repair.
    int start = first_digit;
    while (start > 0 && confusable_digit(text[start - 1]).has_value() &&
           !is_label_char(text[start - 1])) {
      --start;
    }
    int end = last_digit;
    while (end + 1 < static_cast<int>(text.size()) &&
           confusable_digit(text[end + 1]).has_value() &&
           !is_label_char(text[end + 1])) {
      ++end;
    }
    for (int i = start; i <= end; ++i) {
      if (is_digit(text[i])) {
        number += text[i];
      } else if (const auto repaired = confusable_digit(text[i])) {
        number += *repaired;
      }
      // Anything else inside the window (e.g. ':' from a clock overlay) is
      // dropped; the surviving digits still parse, which is exactly how the
      // "clock instead of latency" streamer fooled the real system (§4.2.2).
    }
  }
  if (number.empty()) return std::nullopt;
  // Up-to-3-digit rule and the zero-placeholder rule (App. E step 3).
  if (number.size() > 3) return std::nullopt;
  const long value = util::parse_uint_or(number, -1);
  if (value <= 0) return std::nullopt;
  return static_cast<int>(value);
}

LatencyReading LatencyExtractor::vote(
    std::span<const std::optional<int>> values) const {
  LatencyReading reading;
  // Find a value shared by at least two engines.
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!values[i].has_value()) continue;
    int agree = 0;
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (values[j] == values[i]) ++agree;
    }
    if (agree >= 2) {
      reading.primary = values[i];
      // Exactly two agreeing: keep the dissenting non-null value as the
      // alternative.
      for (std::size_t j = 0; j < values.size(); ++j) {
        if (values[j].has_value() && values[j] != values[i]) {
          reading.alternative = values[j];
          break;
        }
      }
      return reading;
    }
  }
  // No agreement. If nothing was extracted at all this is a plain miss;
  // otherwise it is ambiguous (engines disagree).
  const bool any =
      std::any_of(values.begin(), values.end(),
                  [](const std::optional<int>& v) { return v.has_value(); });
  reading.ambiguous = any;
  return reading;
}

LatencyReading LatencyExtractor::extract(const image::GrayImage& thumbnail,
                                         const GameUiSpec& spec) const {
  // One arena frame per thumbnail: the crop, every pre-processing
  // intermediate, and the binarized input to the engines all live in the
  // thread-local arena and are released wholesale when the frame ends —
  // zero global-allocator traffic on the steady-state hot path.
  image::Arena& arena = image::Arena::thread_local_arena();
  image::Arena::Frame frame(arena);
  const image::GrayImage crop = thumbnail.crop(spec.latency_region, arena);

  auto run = [&](const image::GrayImage& prepared) {
    std::array<std::optional<int>, 3> values;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      values[i] = cleanup(engines_[i]->recognize(prepared), spec);
    }
    return vote(std::span<const std::optional<int>>{values});
  };

  LatencyReading reading = run(preprocess(crop, config_, arena));
  if (reading.ambiguous) {
    // App. E step 4: reprocess without the full pre-processing.
    LatencyReading retry = run(preprocess_minimal(crop, arena));
    retry.reprocessed = true;
    retry.ambiguous = !retry.primary.has_value();
    return retry;
  }
  return reading;
}

std::optional<int> LatencyExtractor::extract_with_engine(
    const image::GrayImage& thumbnail, const GameUiSpec& spec,
    std::size_t engine_index) const {
  image::Arena& arena = image::Arena::thread_local_arena();
  image::Arena::Frame frame(arena);
  const image::GrayImage crop = thumbnail.crop(spec.latency_region, arena);
  const image::GrayImage prepared = preprocess(crop, config_, arena);
  return cleanup(engines_.at(engine_index)->recognize(prepared), spec);
}

}  // namespace tero::ocr
