#include "ocr/preprocess.hpp"

#include "image/ops.hpp"

namespace tero::ocr {
namespace {

image::GrayImage normalize_polarity(image::GrayImage binary) {
  // Latency text is a minority of pixels; if most of the crop binarized to
  // foreground, the panel is lighter than the text — invert.
  if (image::foreground_ratio(binary) > 0.5) {
    binary = image::invert(binary);
  }
  return binary;
}

}  // namespace

image::GrayImage preprocess(const image::GrayImage& crop,
                            const PreprocessConfig& config) {
  image::GrayImage img = image::upscale_bilinear(crop, config.upscale_factor);
  img = image::gaussian_blur(img, config.blur_sigma);
  img = image::binarize(img, image::otsu_threshold(img));
  img = normalize_polarity(std::move(img));
  for (int i = 0; i < config.morph_rounds; ++i) {
    img = image::erode3x3(image::dilate3x3(img));
  }
  return img;
}

image::GrayImage preprocess_minimal(const image::GrayImage& crop) {
  image::GrayImage img = image::upscale_bilinear(crop, 3);
  img = image::binarize(img, image::otsu_threshold(img));
  return normalize_polarity(std::move(img));
}

}  // namespace tero::ocr
