#include "ocr/preprocess.hpp"

#include "image/ops.hpp"

namespace tero::ocr {
namespace {

// Latency text is a minority of pixels; if most of the crop binarized to
// foreground, the panel is lighter than the text — invert.
void normalize_polarity(image::GrayImage& binary) noexcept {
  if (image::foreground_ratio(binary) > 0.5) {
    image::invert_inplace(binary);
  }
}

}  // namespace

image::GrayImage preprocess(const image::GrayImage& crop,
                            const PreprocessConfig& config,
                            image::Arena& arena) {
  image::GrayImage img =
      image::upscale_bilinear(crop, config.upscale_factor, arena);
  img = image::gaussian_blur(img, config.blur_sigma, arena);
  image::binarize_inplace(img, image::otsu_threshold(img));
  normalize_polarity(img);
  for (int i = 0; i < config.morph_rounds; ++i) {
    img = image::erode3x3(image::dilate3x3(img, arena), arena);
  }
  return img;
}

image::GrayImage preprocess(const image::GrayImage& crop,
                            const PreprocessConfig& config) {
  image::Arena& arena = image::Arena::thread_local_arena();
  image::Arena::Frame frame(arena);
  const image::GrayImage img = preprocess(crop, config, arena);
  // Copy (not move) out of the arena before the frame rewinds: the copy
  // constructor always lands on the heap.
  return image::GrayImage(img);
}

image::GrayImage preprocess_minimal(const image::GrayImage& crop,
                                    image::Arena& arena) {
  image::GrayImage img = image::upscale_bilinear(crop, 3, arena);
  image::binarize_inplace(img, image::otsu_threshold(img));
  normalize_polarity(img);
  return img;
}

image::GrayImage preprocess_minimal(const image::GrayImage& crop) {
  image::Arena& arena = image::Arena::thread_local_arena();
  image::Arena::Frame frame(arena);
  const image::GrayImage img = preprocess_minimal(crop, arena);
  return image::GrayImage(img);
}

}  // namespace tero::ocr
