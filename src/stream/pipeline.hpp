#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/snapshot.hpp"
#include "stream/channel.hpp"
#include "stream/config.hpp"
#include "synth/sessions.hpp"
#include "synth/world.hpp"
#include "tero/pipeline.hpp"

namespace tero::stream {

/// Everything one streaming run produced (DESIGN.md §10).
struct StreamResult {
  /// The final exact dataset — bit-identical to core::Pipeline::run over
  /// the same scenario (entries in batch group order, same funnel). Empty
  /// when the run crashed.
  core::Dataset dataset;
  /// serve::entries_from(dataset): the final snapshot content.
  std::vector<serve::SnapshotEntry> final_entries;
  /// Sink epoch counter after the final publish (live epochs + 1).
  std::uint64_t final_epoch = 0;

  std::uint64_t events = 0;       ///< measurements ingested by the sink
  std::uint64_t thumbnails = 0;   ///< thumbnail events extracted
  std::uint64_t late_events = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t epochs_published = 0;  ///< live epochs only
  std::uint64_t checkpoints_written = 0;
  std::uint64_t download_throttled = 0;

  bool crashed = false;           ///< --crash-after fired
  std::uint64_t resumed_from = 0; ///< checkpoint id restored; 0 = fresh run

  ChannelStats to_extract;
  ChannelStats to_clean;
  ChannelStats to_sink;
};

/// The streaming ingestion pipeline: download-schedule source → parallel
/// OCR extraction → per-streamer cleaning → windowed aggregation sink,
/// chained by bounded channels, each stage on its own thread (the sink runs
/// on the caller). Event-time tumbling windows close under a low watermark
/// and fold into live serve epochs; barrier-carried checkpoints make a
/// killed run resume with bit-identical final output (see DESIGN.md §10 for
/// the full protocol).
///
/// Determinism: the schedule fixes the event order, every channel has one
/// producer, extraction randomness is per-point (Rng::indexed), and the
/// thread pool only parallelizes order-preserving batch maps — so the
/// result is bit-identical at 1 and 8 worker threads, and the final
/// dataset/snapshot equals the batch pipeline's.
class StreamPipeline {
 public:
  explicit StreamPipeline(StreamConfig config);

  /// Run the scenario. If config.checkpoint_dir holds a checkpoint, the run
  /// resumes from the latest one instead of starting fresh.
  [[nodiscard]] StreamResult run(const synth::World& world,
                                 std::span<const synth::TrueStream> streams);

  [[nodiscard]] const StreamConfig& config() const noexcept {
    return config_;
  }

 private:
  StreamConfig config_;
};

}  // namespace tero::stream
