#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "analysis/types.hpp"
#include "tero/pipeline.hpp"

namespace tero::stream {

struct CheckpointData;

/// What flows through the pipeline's channels. Thumbnail events are the
/// data; the markers carry stream lifecycle (watermark open/close),
/// completed per-streamer entries, and checkpoint barriers.
enum class EventKind : std::uint8_t {
  kThumbnail,    ///< one thumbnail of one ground-truth stream
  kStreamStart,  ///< source's first delivery — opens its watermark
  kStreamEnd,    ///< source finished — closes its watermark
  kEntry,        ///< cleaning stage completed a {streamer, game, epoch} group
  kCheckpoint,   ///< barrier: stages append their state fragment and forward
};

/// Identity of one per-{streamer, game, location-epoch} analysis group.
/// Ordering matches the batch pipeline's std::tuple<std::size_t,
/// std::string, int> grouping key, so streaming output can be arranged in
/// the exact order batch produces it.
struct GroupKey {
  std::size_t streamer_index = 0;
  std::string game;
  int epoch = 0;

  auto operator<=>(const GroupKey&) const = default;
};

/// A finished analysis entry together with its group key (the entry itself
/// does not carry the streamer index, which the final flush sorts by).
struct CollectedEntry {
  GroupKey key;
  core::StreamerGameEntry entry;
};

/// One event. Events travel every channel in schedule order; the extraction
/// stage fills `visible`/`measurement` in place, the cleaning stage emits
/// additional kEntry events. `ingest_wall_s` is an observational wall-clock
/// stamp for the ingest-to-publish latency histogram — nothing in the data
/// path reads it (virtual event time only).
struct StreamEvent {
  EventKind kind = EventKind::kThumbnail;
  std::uint32_t stream_index = 0;
  std::uint32_t point_index = 0;
  double event_time = 0.0;    ///< virtual event time (TruePoint::t)
  double arrival_time = 0.0;  ///< virtual delivery time (delay + throttle)
  double ingest_wall_s = 0.0;

  bool visible = false;
  std::optional<analysis::Measurement> measurement;

  std::uint64_t checkpoint_id = 0;               ///< kCheckpoint
  std::shared_ptr<CheckpointData> draft;         ///< kCheckpoint
  std::shared_ptr<const CollectedEntry> entry;   ///< kEntry
};

}  // namespace tero::stream
