#include "stream/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "ocr/game_ui.hpp"
#include "serve/service.hpp"
#include "stream/checkpoint.hpp"
#include "stream/schedule.hpp"
#include "stream/window.hpp"
#include "tsdb/store.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tero::stream {
namespace {

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Live aggregation key: believed location (already truncated to the
/// aggregate granularity) and game.
struct RunningKey {
  geo::Location location;
  std::string game;

  auto operator<=>(const RunningKey&) const = default;
};

/// Tumbling-window key; map order puts older windows first, so the close
/// scan walks windows in the deterministic close order.
struct WindowKey {
  std::int64_t window = 0;
  RunningKey key;

  auto operator<=>(const WindowKey&) const = default;
};

struct WindowBuf {
  std::unique_ptr<WindowAggregate> agg;
  std::set<std::string> streamers;
  double first_wall = 0.0;  ///< observational: earliest ingest stamp
};

struct RunningBuf {
  std::unique_ptr<WindowAggregate> agg;
  std::set<std::string> streamers;
};

AggregateState export_aggregate(const WindowAggregate& agg) {
  AggregateState state;
  state.count = agg.count();
  state.mean = agg.mean();
  state.m2 = agg.m2();
  state.sketch.buckets = agg.sketch().export_buckets();
  state.sketch.underflow = agg.sketch().underflow();
  return state;
}

std::unique_ptr<WindowAggregate> restore_aggregate(const AggregateState& state,
                                                   double alpha) {
  auto agg = std::make_unique<WindowAggregate>(alpha);
  agg->restore(state.count, state.mean, state.m2, state.sketch.buckets,
               state.sketch.underflow);
  return agg;
}

}  // namespace

StreamPipeline::StreamPipeline(StreamConfig config)
    : config_(std::move(config)) {}

StreamResult StreamPipeline::run(const synth::World& world,
                                 std::span<const synth::TrueStream> streams) {
  obs::MetricsRegistry* const metrics = config_.tero.metrics;
  obs::TraceRecorder* const trace = config_.tero.trace;
  const obs::ScopedSpan run_span(trace, "stream.run");

  util::simd::apply_mode(config_.tero.simd);
  const StreamSchedule schedule = build_schedule(world, streams, config_);

  const std::unique_ptr<core::ExtractionChannel> channel =
      config_.tero.use_full_ocr ? core::make_ocr_channel(config_.tero.thumbnails)
                                : core::make_noise_channel(config_.tero.noise);
  std::unique_ptr<util::ThreadPool> pool;
  if (util::ThreadPool::resolve(config_.tero.threads) > 1) {
    pool = std::make_unique<util::ThreadPool>(config_.tero.threads);
  }

  // ---- Recovery: resume from the newest checkpoint, if any ---------------
  std::optional<CheckpointData> restored;
  if (!config_.checkpoint_dir.empty()) {
    if (const auto id = latest_checkpoint_id(config_.checkpoint_dir)) {
      restored = read_checkpoint_file(config_.checkpoint_dir, *id);
    }
  }

  // ---- Channels + hot-path metric handles --------------------------------
  obs::Counter* stalls_counter = nullptr;
  obs::Counter* late_counter = nullptr;
  obs::Counter* events_counter = nullptr;
  obs::Counter* windows_counter = nullptr;
  obs::Counter* checkpoints_counter = nullptr;
  obs::Counter* epochs_counter = nullptr;
  obs::Gauge* depth_extract = nullptr;
  obs::Gauge* depth_clean = nullptr;
  obs::Gauge* depth_sink = nullptr;
  obs::Gauge* watermark_gauge = nullptr;
  obs::Histogram* watermark_lag_s = nullptr;
  obs::Histogram* publish_ms = nullptr;
  obs::Histogram* ingest_to_publish_ms = nullptr;
  if (metrics != nullptr) {
    stalls_counter = &metrics->counter("tero.stream.backpressure_stalls");
    late_counter = &metrics->counter("tero.stream.late");
    events_counter = &metrics->counter("tero.stream.events");
    windows_counter = &metrics->counter("tero.stream.windows_closed");
    checkpoints_counter = &metrics->counter("tero.stream.checkpoints");
    epochs_counter = &metrics->counter("tero.stream.epochs");
    const auto depth = [&](const char* stage) {
      return &metrics->gauge(obs::MetricsRegistry::labeled(
          "tero.stream.queue_depth", {{"stage", stage}}));
    };
    depth_extract = depth("extract");
    depth_clean = depth("clean");
    depth_sink = depth("sink");
    watermark_gauge = &metrics->gauge("tero.stream.watermark_s");
    watermark_lag_s = &metrics->histogram(
        "tero.stream.watermark_lag_s",
        {60.0, 300.0, 900.0, 3600.0, 10800.0, 21600.0, 86400.0});
    publish_ms = &metrics->histogram("tero.stream.publish_ms");
    ingest_to_publish_ms =
        &metrics->histogram("tero.stream.ingest_to_publish_ms");
  }
  Channel<StreamEvent> to_extract(config_.channel_capacity, depth_extract,
                                  stalls_counter);
  Channel<StreamEvent> to_clean(config_.channel_capacity, depth_clean,
                                stalls_counter);
  Channel<StreamEvent> to_sink(config_.channel_capacity, depth_sink,
                               stalls_counter);

  // Fault points (null when injection is off). "stream.source" stalls the
  // producer (wall-clock only — ordering and data are unchanged, so the
  // result stays bit-identical); "extract.stream" quarantines streamers
  // exactly like the batch pipeline (same keyed decisions, same funnel).
  fault::FaultPoint* const source_fault = fault::FaultInjector::maybe_point(
      config_.tero.injector, "stream.source");
  const fault::FaultPoint* const extract_fault =
      fault::FaultInjector::maybe_point(config_.tero.injector,
                                        "extract.stream");

  // ---- Stage 1: source — walk the schedule from the resume cursor --------
  const std::size_t start_cursor =
      restored.has_value() ? static_cast<std::size_t>(restored->cursor) : 0;
  std::thread source_thread([&] {
    const obs::ScopedSpan span(trace, "stream.source", "stage");
    for (std::size_t i = start_cursor; i < schedule.events.size(); ++i) {
      StreamEvent ev = schedule.events[i];
      if (source_fault != nullptr) {
        const fault::FaultDecision stall = source_fault->hit();
        if (stall.kind == fault::FaultKind::kLatency) {
          // Producer stall: downstream stages see a burst of backpressure,
          // the data itself is untouched.
          std::this_thread::sleep_for(
              std::chrono::duration<double>(stall.delay_s));
        }
      }
      ev.ingest_wall_s = wall_now_s();
      if (ev.kind == EventKind::kCheckpoint) {
        ev.draft = std::make_shared<CheckpointData>();
        ev.draft->id = ev.checkpoint_id;
        ev.draft->cursor = i + 1;
        ev.draft->events_total = schedule.events.size();
      }
      if (!to_extract.push(std::move(ev))) return;  // teardown cascade
    }
    to_extract.close();
  });

  // ---- Stage 2: extraction — order-preserving parallel batches -----------
  std::uint64_t ext_thumbnails = restored.has_value() ? restored->thumbnails : 0;
  std::uint64_t ext_visible = restored.has_value() ? restored->visible : 0;
  std::uint64_t ext_ok = restored.has_value() ? restored->ocr_ok : 0;
  std::thread extract_thread([&] {
    const obs::ScopedSpan span(trace, "stream.extract", "stage");
    std::vector<StreamEvent> pending;
    pending.reserve(config_.extract_batch);
    // Extract the pending batch on the pool (per-point seeds keep results
    // independent of scheduling) and forward outcomes in batch order.
    const auto flush = [&]() -> bool {
      if (pending.empty()) return true;
      const auto results = util::parallel_map(
          pool.get(), pending.size(), 8, [&](std::size_t k) {
            const StreamEvent& ev = pending[k];
            const auto& true_stream = streams[ev.stream_index];
            if (core::extraction_quarantined(extract_fault,
                                             true_stream.streamer_index,
                                             config_.tero.extraction_retry)) {
              // Quarantined: the thumbnail is counted (it was ingested) but
              // never extracted — identical to the batch pipeline's rule.
              return core::ThumbnailExtraction{};
            }
            return core::extract_thumbnail(
                *channel, ocr::ui_spec_for(true_stream.game),
                true_stream.points[ev.point_index],
                config_.tero.p_latency_visible,
                core::extraction_stream_seed(config_.tero.seed,
                                             ev.stream_index),
                ev.point_index);
          });
      for (std::size_t k = 0; k < pending.size(); ++k) {
        ++ext_thumbnails;
        if (!results[k].visible) continue;
        ++ext_visible;
        if (!results[k].measurement.has_value()) continue;
        ++ext_ok;
        StreamEvent ev = std::move(pending[k]);
        ev.visible = true;
        ev.measurement = results[k].measurement;
        if (!to_clean.push(std::move(ev))) return false;
      }
      pending.clear();
      return true;
    };
    bool aborted = false;
    while (!aborted) {
      auto ev = to_extract.pop();
      if (!ev.has_value()) break;
      if (ev->kind == EventKind::kThumbnail) {
        pending.push_back(std::move(*ev));
        if (pending.size() >= config_.extract_batch && !flush()) {
          aborted = true;
        }
        continue;
      }
      if (!flush()) {
        aborted = true;
        break;
      }
      if (ev->kind == EventKind::kCheckpoint) {
        ev->draft->thumbnails = ext_thumbnails;
        ev->draft->visible = ext_visible;
        ev->draft->ocr_ok = ext_ok;
      }
      if (!to_clean.push(std::move(*ev))) aborted = true;
    }
    if (!aborted) flush();
    to_extract.close();
    to_clean.close();
  });

  // ---- Stage 3: cleaning — group assembly + per-streamer analysis --------
  struct GroupBuf {
    std::uint64_t remaining = 0;
    std::map<std::uint32_t, std::vector<analysis::Measurement>> streams;
  };
  std::map<GroupKey, GroupBuf> open_groups;
  if (restored.has_value()) {
    for (const auto& group : restored->groups) {
      GroupBuf buf;
      buf.remaining = group.remaining;
      for (const auto& stream : group.streams) {
        buf.streams[stream.stream_index] = stream.points;
      }
      open_groups.emplace(group.key, std::move(buf));
    }
  }
  const store::Pseudonymizer pseudonymizer =
      core::make_pseudonymizer(config_.tero.seed);
  std::thread clean_thread([&] {
    const obs::ScopedSpan span(trace, "stream.clean", "stage");
    const auto ensure_group = [&](const GroupKey& key) -> GroupBuf& {
      auto it = open_groups.find(key);
      if (it == open_groups.end()) {
        GroupBuf buf;
        buf.remaining = schedule.group_sizes.at(key);
        it = open_groups.emplace(key, std::move(buf)).first;
      }
      return it->second;
    };
    bool aborted = false;
    while (!aborted) {
      auto ev = to_clean.pop();
      if (!ev.has_value()) break;
      switch (ev->kind) {
        case EventKind::kThumbnail: {
          const GroupKey& key = schedule.stream_group[ev->stream_index];
          ensure_group(key).streams[ev->stream_index].push_back(
              *ev->measurement);
          if (!to_sink.push(std::move(*ev))) aborted = true;
          break;
        }
        case EventKind::kStreamEnd: {
          const GroupKey& key = schedule.stream_group[ev->stream_index];
          GroupBuf& buf = ensure_group(key);
          if (--buf.remaining == 0) {
            // All of the group's streams have arrived: run the batch
            // analysis stage on them, in stream-index order (the batch
            // grouping order), and emit the finished entry.
            std::vector<analysis::Stream> group_streams;
            group_streams.reserve(buf.streams.size());
            for (auto& [stream_index, points] : buf.streams) {
              analysis::Stream s;
              s.streamer = schedule
                               .pseudonyms[streams[stream_index].streamer_index];
              s.game = streams[stream_index].game;
              s.points = std::move(points);
              group_streams.push_back(std::move(s));
            }
            if (!group_streams.empty()) {
              auto entry = core::analyze_streamer_group(
                  world, schedule.located, pseudonymizer, key.streamer_index,
                  key.game, key.epoch, std::move(group_streams),
                  config_.tero.analysis);
              if (entry.has_value()) {
                StreamEvent out;
                out.kind = EventKind::kEntry;
                out.arrival_time = ev->arrival_time;
                out.ingest_wall_s = ev->ingest_wall_s;
                out.entry = std::make_shared<const CollectedEntry>(
                    CollectedEntry{key, std::move(*entry)});
                if (!to_sink.push(std::move(out))) {
                  aborted = true;
                  break;
                }
              }
            }
            open_groups.erase(key);
          }
          if (!to_sink.push(std::move(*ev))) aborted = true;
          break;
        }
        case EventKind::kCheckpoint: {
          for (const auto& [key, buf] : open_groups) {
            CheckpointData::GroupState state;
            state.key = key;
            state.remaining = buf.remaining;
            for (const auto& [stream_index, points] : buf.streams) {
              state.streams.push_back({stream_index, points});
            }
            ev->draft->groups.push_back(std::move(state));
          }
          if (!to_sink.push(std::move(*ev))) aborted = true;
          break;
        }
        default:
          if (!to_sink.push(std::move(*ev))) aborted = true;
          break;
      }
    }
    to_clean.close();
    to_sink.close();
  });

  // ---- Stage 4: sink — watermarks, windows, live epochs, checkpoints -----
  // Runs on the calling thread.
  WatermarkTracker wm;
  std::map<WindowKey, WindowBuf> windows;
  std::map<RunningKey, RunningBuf> running;
  std::vector<CollectedEntry> collected;
  std::uint64_t measurements = 0;
  std::uint64_t late_events = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t windows_since_publish = 0;
  std::uint64_t epoch_counter = 0;
  std::uint64_t epochs_published = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t resumed_from = 0;
  if (restored.has_value()) {
    wm.restore(restored->watermark, restored->open_sources);
    for (const auto& w : restored->windows) {
      WindowBuf buf;
      buf.agg = restore_aggregate(w.agg, config_.sketch_alpha);
      buf.streamers.insert(w.streamers.begin(), w.streamers.end());
      windows.emplace(WindowKey{w.window, {w.location, w.game}},
                      std::move(buf));
    }
    for (const auto& r : restored->running) {
      RunningBuf buf;
      buf.agg = restore_aggregate(r.agg, config_.sketch_alpha);
      buf.streamers.insert(r.streamers.begin(), r.streamers.end());
      running.emplace(RunningKey{r.location, r.game}, std::move(buf));
    }
    collected = restored->collected;
    measurements = restored->measurements;
    late_events = restored->late_events;
    windows_closed = restored->windows_closed;
    windows_since_publish = restored->windows_since_publish;
    epoch_counter = restored->epoch_counter;
    epochs_published = restored->epochs_published;
    resumed_from = restored->id;
  }

  std::vector<double> pending_publish_walls;
  const auto build_live_entries = [&] {
    std::vector<serve::SnapshotEntry> entries;
    entries.reserve(running.size());
    for (const auto& [key, buf] : running) {
      serve::SnapshotEntry entry;
      entry.location = key.location;
      entry.game = key.game;
      entry.key = serve::entry_key(key.location, key.game);
      entry.streamers = buf.streamers.size();
      entry.samples = static_cast<std::size_t>(buf.agg->count());
      entry.mean_ms = buf.agg->mean();
      const obs::QuantileSketch& sketch = buf.agg->sketch();
      entry.box.p5 = sketch.quantile(0.05);
      entry.box.p25 = sketch.quantile(0.25);
      entry.box.p50 = sketch.quantile(0.50);
      entry.box.p75 = sketch.quantile(0.75);
      entry.box.p95 = sketch.quantile(0.95);
      entries.push_back(std::move(entry));
    }
    return entries;
  };
  const auto publish_live = [&] {
    windows_since_publish = 0;
    const std::uint64_t epoch = ++epoch_counter;
    ++epochs_published;
    if (epochs_counter != nullptr) epochs_counter->add();
    if (config_.service != nullptr) {
      const obs::ScopedTimer timer(publish_ms);
      config_.service->publish(std::make_shared<const serve::Snapshot>(
          epoch, build_live_entries()));
    }
    if (ingest_to_publish_ms != nullptr) {
      const double now = wall_now_s();
      for (const double first : pending_publish_walls) {
        if (first > 0.0) {
          ingest_to_publish_ms->observe((now - first) * 1000.0);
        }
      }
    }
    pending_publish_walls.clear();
    if (trace != nullptr) trace->add_instant("stream.publish", "stream");
  };
  const auto close_ready_windows = [&] {
    const double watermark = wm.watermark();
    if (watermark_gauge != nullptr) watermark_gauge->set(watermark);
    while (!windows.empty()) {
      const auto it = windows.begin();
      const double window_end =
          static_cast<double>(it->first.window + 1) * config_.window_size_s;
      if (window_end + config_.allowed_lateness_s > watermark) break;
      RunningBuf& buf = running[it->first.key];
      if (buf.agg == nullptr) {
        buf.agg = std::make_unique<WindowAggregate>(config_.sketch_alpha);
      }
      buf.agg->merge(*it->second.agg);
      buf.streamers.insert(it->second.streamers.begin(),
                           it->second.streamers.end());
      pending_publish_walls.push_back(it->second.first_wall);
      if (watermark_lag_s != nullptr) {
        watermark_lag_s->observe(watermark - window_end);
      }
      if (config_.tsdb != nullptr && it->second.agg->count() > 0) {
        // Advance the store's virtual clock first so the seal boundary is
        // at or before this window's end — the append always lands at or
        // ahead of the sealed frontier. Windows close in window order, so
        // the clock never runs backwards.
        const auto t_ms = static_cast<std::int64_t>(window_end * 1000.0);
        config_.tsdb->advance_to(t_ms);
        config_.tsdb->append(
            serve::entry_key(it->first.key.location, it->first.key.game),
            t_ms, it->second.agg->mean());
      }
      windows.erase(it);
      ++windows_closed;
      ++windows_since_publish;
      if (windows_counter != nullptr) windows_counter->add();
      if (config_.publish_every_windows > 0 &&
          windows_since_publish >= config_.publish_every_windows) {
        publish_live();
      }
    }
  };

  bool crashed = false;
  double last_arrival_s = 0.0;
  {
    const obs::ScopedSpan span(trace, "stream.sink", "stage");
    while (!crashed) {
      auto ev = to_sink.pop();
      if (!ev.has_value()) break;
      if (config_.sink_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.sink_delay_us));
      }
      // The sink sees events serially in deterministic arrival order, so
      // this is the one safe place to drive the telemetry timeline's
      // virtual clock (DESIGN.md §13).
      if (config_.timeline != nullptr && ev->arrival_time > 0.0) {
        last_arrival_s = ev->arrival_time;
        config_.timeline->advance_to(
            static_cast<std::uint64_t>(ev->arrival_time * 1000.0));
      }
      switch (ev->kind) {
        case EventKind::kStreamStart:
          wm.open(ev->stream_index, ev->event_time);
          close_ready_windows();
          break;
        case EventKind::kThumbnail: {
          ++measurements;
          if (events_counter != nullptr) events_counter->add();
          wm.update(ev->stream_index, ev->event_time);
          const std::int64_t window =
              window_of(ev->event_time, config_.window_size_s);
          const double window_end =
              static_cast<double>(window + 1) * config_.window_size_s;
          if (window_end + config_.allowed_lateness_s <= wm.watermark()) {
            // The window this event belongs to already closed: count it as
            // late and keep it out of the live view. It still reaches the
            // exact path through the cleaning stage.
            ++late_events;
            if (late_counter != nullptr) late_counter->add();
          } else {
            WindowKey key{window,
                          {schedule.stream_window_location[ev->stream_index],
                           streams[ev->stream_index].game}};
            WindowBuf& buf = windows[key];
            if (buf.agg == nullptr) {
              buf.agg =
                  std::make_unique<WindowAggregate>(config_.sketch_alpha);
              buf.first_wall = ev->ingest_wall_s;
            }
            buf.agg->add(
                static_cast<double>(ev->measurement->latency_ms));
            buf.streamers.insert(
                schedule
                    .pseudonyms[streams[ev->stream_index].streamer_index]);
          }
          close_ready_windows();
          break;
        }
        case EventKind::kStreamEnd:
          wm.close(ev->stream_index);
          close_ready_windows();
          break;
        case EventKind::kEntry:
          collected.push_back(*ev->entry);
          break;
        case EventKind::kCheckpoint: {
          CheckpointData& draft = *ev->draft;
          draft.watermark = wm.watermark();
          draft.open_sources = wm.open_map();
          for (const auto& [key, buf] : windows) {
            CheckpointData::WindowState state;
            state.window = key.window;
            state.location = key.key.location;
            state.game = key.key.game;
            state.agg = export_aggregate(*buf.agg);
            state.streamers.assign(buf.streamers.begin(),
                                   buf.streamers.end());
            draft.windows.push_back(std::move(state));
          }
          for (const auto& [key, buf] : running) {
            CheckpointData::RunningState state;
            state.location = key.location;
            state.game = key.game;
            state.agg = export_aggregate(*buf.agg);
            state.streamers.assign(buf.streamers.begin(),
                                   buf.streamers.end());
            draft.running.push_back(std::move(state));
          }
          draft.collected = collected;
          draft.measurements = measurements;
          draft.late_events = late_events;
          draft.windows_closed = windows_closed;
          draft.windows_since_publish = windows_since_publish;
          draft.epoch_counter = epoch_counter;
          draft.epochs_published = epochs_published;
          if (!config_.checkpoint_dir.empty()) {
            write_checkpoint_file(draft, config_.checkpoint_dir);
          }
          ++checkpoints_written;
          if (checkpoints_counter != nullptr) checkpoints_counter->add();
          if (trace != nullptr) {
            trace->add_instant("stream.checkpoint", "stream");
          }
          if (config_.crash_after > 0 &&
              draft.id == config_.crash_after) {
            // Fault injection: die right after the checkpoint hits disk.
            // Closing our input wakes the producers; the close cascades
            // back to the source and every stage exits.
            crashed = true;
            to_sink.close();
          }
          break;
        }
      }
    }
  }

  source_thread.join();
  extract_thread.join();
  clean_thread.join();

  // Capture the trailing partial interval (crashed runs included — their
  // truncated history is still a valid, deterministic record).
  if (config_.timeline != nullptr && last_arrival_s > 0.0) {
    config_.timeline->flush(
        static_cast<std::uint64_t>(last_arrival_s * 1000.0));
  }

  StreamResult result;
  result.crashed = crashed;
  result.resumed_from = resumed_from;
  result.events = measurements;
  result.thumbnails = ext_thumbnails;
  result.late_events = late_events;
  result.windows_closed = windows_closed;
  result.epochs_published = epochs_published;
  result.checkpoints_written = checkpoints_written;
  result.download_throttled = schedule.download_throttled;
  result.to_extract = to_extract.stats();
  result.to_clean = to_clean.stats();
  result.to_sink = to_sink.stats();
  if (crashed) return result;

  // ---- Final flush: the exact batch-equivalent dataset -------------------
  // Collected entries land in group-completion (arrival) order; the batch
  // pipeline iterates its grouping std::map, i.e. GroupKey order. Sorting
  // by key makes the entry vector — and everything derived from it —
  // bit-identical to the batch run.
  {
    const obs::ScopedSpan span(trace, "stream.flush", "stage");
    std::sort(collected.begin(), collected.end(),
              [](const CollectedEntry& a, const CollectedEntry& b) {
                return a.key < b.key;
              });
    core::Dataset& dataset = result.dataset;
    dataset.funnel.streamers_total = world.streamers().size();
    dataset.funnel.streamers_located = schedule.located.streamers_located;
    dataset.funnel.quarantined = core::count_quarantined_streamers(
        schedule.located, streams, extract_fault,
        config_.tero.extraction_retry);
    dataset.funnel.thumbnails = ext_thumbnails;
    dataset.funnel.visible = ext_visible;
    dataset.funnel.ocr_ok = ext_ok;
    dataset.entries.reserve(collected.size());
    for (auto& c : collected) {
      dataset.funnel.retained += c.entry.clean.points_retained;
      dataset.entries.push_back(std::move(c.entry));
    }
    dataset.aggregates = core::aggregate_entries(
        dataset.entries, config_.tero.analysis,
        config_.tero.aggregate_granularity,
        config_.tero.reject_location_outliers, pool.get(), metrics, trace);
    for (const auto& aggregate : dataset.aggregates) {
      dataset.funnel.clustered += aggregate.distribution.size();
    }
    if (metrics != nullptr) dataset.funnel.record(*metrics);
    result.final_entries = serve::entries_from(dataset);
    result.final_epoch = ++epoch_counter;
    if (config_.service != nullptr) {
      const obs::ScopedTimer timer(publish_ms);
      config_.service->publish(std::make_shared<const serve::Snapshot>(
          result.final_epoch, result.final_entries));
    }
  }
  return result;
}

}  // namespace tero::stream
