#include "stream/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "store/kv_store.hpp"
#include "store/persistence.hpp"

namespace tero::stream {
namespace {

constexpr char kSep = '\x1f';

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::vector<std::string> split_fields(const std::string& record) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = record.find(kSep, start);
    if (sep == std::string::npos) {
      fields.push_back(record.substr(start));
      return fields;
    }
    fields.push_back(record.substr(start, sep - start));
    start = sep + 1;
  }
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::invalid_argument("stream::load_checkpoint: malformed " + what);
}

std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}
std::int64_t to_i64(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}
double to_f64(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

// Measurements: space-separated "t:lat:alt" triples; alt == "n" when the
// OCR alternative is absent. %.17g never emits ':' or ' '.
std::string encode_points(const std::vector<analysis::Measurement>& points) {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out += ' ';
    out += fmt(points[i].time_s);
    out += ':';
    out += std::to_string(points[i].latency_ms);
    out += ':';
    out += points[i].alternative_ms.has_value()
               ? std::to_string(*points[i].alternative_ms)
               : std::string("n");
  }
  return out;
}

std::vector<analysis::Measurement> decode_points(const std::string& encoded) {
  std::vector<analysis::Measurement> points;
  std::size_t start = 0;
  while (start < encoded.size()) {
    std::size_t end = encoded.find(' ', start);
    if (end == std::string::npos) end = encoded.size();
    const std::string triple = encoded.substr(start, end - start);
    const std::size_t c1 = triple.find(':');
    const std::size_t c2 = triple.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      malformed("measurement triple");
    }
    analysis::Measurement m;
    m.time_s = to_f64(triple.substr(0, c1));
    m.latency_ms = static_cast<int>(to_i64(triple.substr(c1 + 1, c2 - c1 - 1)));
    const std::string alt = triple.substr(c2 + 1);
    if (alt != "n") m.alternative_ms = static_cast<int>(to_i64(alt));
    points.push_back(m);
    start = end + 1;
  }
  return points;
}

std::string encode_sketch(const SketchState& sketch) {
  std::string out;
  for (std::size_t i = 0; i < sketch.buckets.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(sketch.buckets[i].first);
    out += ':';
    out += std::to_string(sketch.buckets[i].second);
  }
  return out;
}

SketchState decode_sketch(const std::string& buckets,
                          std::uint64_t underflow) {
  SketchState sketch;
  sketch.underflow = underflow;
  std::size_t start = 0;
  while (start < buckets.size()) {
    std::size_t end = buckets.find(' ', start);
    if (end == std::string::npos) end = buckets.size();
    const std::string pair = buckets.substr(start, end - start);
    const std::size_t colon = pair.find(':');
    if (colon == std::string::npos) malformed("sketch bucket");
    sketch.buckets.emplace_back(
        static_cast<int>(to_i64(pair.substr(0, colon))),
        to_u64(pair.substr(colon + 1)));
    start = end + 1;
  }
  return sketch;
}

/// Aggregate as five fields: count, mean, m2, underflow, buckets.
void append_aggregate(std::string& out, const AggregateState& agg) {
  out += std::to_string(agg.count);
  out += kSep;
  out += fmt(agg.mean);
  out += kSep;
  out += fmt(agg.m2);
  out += kSep;
  out += std::to_string(agg.sketch.underflow);
  out += kSep;
  out += encode_sketch(agg.sketch);
}

AggregateState decode_aggregate(const std::vector<std::string>& fields,
                                std::size_t at) {
  AggregateState agg;
  agg.count = to_u64(fields.at(at));
  agg.mean = to_f64(fields.at(at + 1));
  agg.m2 = to_f64(fields.at(at + 2));
  agg.sketch = decode_sketch(fields.at(at + 4), to_u64(fields.at(at + 3)));
  return agg;
}

std::string encode_spikes(const std::vector<analysis::SpikeEvent>& spikes) {
  std::string out;
  for (std::size_t i = 0; i < spikes.size(); ++i) {
    if (i > 0) out += ' ';
    out += fmt(spikes[i].start_s);
    out += ':';
    out += fmt(spikes[i].end_s);
    out += ':';
    out += std::to_string(spikes[i].peak_latency_ms);
    out += ':';
    out += std::to_string(spikes[i].baseline_ms);
  }
  return out;
}

std::vector<analysis::SpikeEvent> decode_spikes(const std::string& encoded) {
  std::vector<analysis::SpikeEvent> spikes;
  std::size_t start = 0;
  while (start < encoded.size()) {
    std::size_t end = encoded.find(' ', start);
    if (end == std::string::npos) end = encoded.size();
    const std::string rec = encoded.substr(start, end - start);
    const std::size_t c1 = rec.find(':');
    const std::size_t c2 = rec.find(':', c1 + 1);
    const std::size_t c3 = rec.find(':', c2 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        c3 == std::string::npos) {
      malformed("spike record");
    }
    analysis::SpikeEvent spike;
    spike.start_s = to_f64(rec.substr(0, c1));
    spike.end_s = to_f64(rec.substr(c1 + 1, c2 - c1 - 1));
    spike.peak_latency_ms = static_cast<int>(to_i64(rec.substr(c2 + 1, c3 - c2 - 1)));
    spike.baseline_ms = static_cast<int>(to_i64(rec.substr(c3 + 1)));
    spikes.push_back(spike);
    start = end + 1;
  }
  return spikes;
}

std::string encode_clusters(
    const std::vector<analysis::LatencyCluster>& clusters) {
  std::string out;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(clusters[i].min_ms);
    out += ':';
    out += std::to_string(clusters[i].max_ms);
    out += ':';
    out += fmt(clusters[i].weight);
    out += ':';
    out += std::to_string(clusters[i].point_count);
  }
  return out;
}

std::vector<analysis::LatencyCluster> decode_clusters(
    const std::string& encoded) {
  std::vector<analysis::LatencyCluster> clusters;
  std::size_t start = 0;
  while (start < encoded.size()) {
    std::size_t end = encoded.find(' ', start);
    if (end == std::string::npos) end = encoded.size();
    const std::string rec = encoded.substr(start, end - start);
    const std::size_t c1 = rec.find(':');
    const std::size_t c2 = rec.find(':', c1 + 1);
    const std::size_t c3 = rec.find(':', c2 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        c3 == std::string::npos) {
      malformed("cluster record");
    }
    analysis::LatencyCluster cluster;
    cluster.min_ms = static_cast<int>(to_i64(rec.substr(0, c1)));
    cluster.max_ms = static_cast<int>(to_i64(rec.substr(c1 + 1, c2 - c1 - 1)));
    cluster.weight = to_f64(rec.substr(c2 + 1, c3 - c2 - 1));
    cluster.point_count = to_u64(rec.substr(c3 + 1));
    clusters.push_back(cluster);
    start = end + 1;
  }
  return clusters;
}

}  // namespace

void save_checkpoint(const CheckpointData& data, std::ostream& os) {
  store::KvStore kv;
  {
    std::string meta;
    const auto field = [&meta](const std::string& v) {
      meta += v;
      meta += kSep;
    };
    field(std::to_string(data.id));
    field(std::to_string(data.cursor));
    field(std::to_string(data.events_total));
    field(std::to_string(data.thumbnails));
    field(std::to_string(data.visible));
    field(std::to_string(data.ocr_ok));
    field(fmt(data.watermark));
    field(std::to_string(data.measurements));
    field(std::to_string(data.late_events));
    field(std::to_string(data.windows_closed));
    field(std::to_string(data.windows_since_publish));
    field(std::to_string(data.epoch_counter));
    meta += std::to_string(data.epochs_published);
    kv.put("meta", meta);
  }
  {
    std::string open;
    bool first = true;
    for (const auto& [source, wm] : data.open_sources) {
      if (!first) open += ' ';
      first = false;
      open += std::to_string(source);
      open += ':';
      open += fmt(wm);
    }
    kv.put("open", open);
  }

  kv.put("groups", std::to_string(data.groups.size()));
  for (std::size_t i = 0; i < data.groups.size(); ++i) {
    const auto& group = data.groups[i];
    std::string rec = std::to_string(group.key.streamer_index);
    rec += kSep;
    rec += group.key.game;
    rec += kSep;
    rec += std::to_string(group.key.epoch);
    rec += kSep;
    rec += std::to_string(group.remaining);
    rec += kSep;
    rec += std::to_string(group.streams.size());
    kv.put("g" + std::to_string(i), rec);
    for (std::size_t j = 0; j < group.streams.size(); ++j) {
      std::string buf = std::to_string(group.streams[j].stream_index);
      buf += kSep;
      buf += encode_points(group.streams[j].points);
      std::string key = "g";
      key += std::to_string(i);
      key += ":s";
      key += std::to_string(j);
      kv.put(key, buf);
    }
  }

  kv.put("windows", std::to_string(data.windows.size()));
  for (std::size_t i = 0; i < data.windows.size(); ++i) {
    const auto& w = data.windows[i];
    std::string rec = std::to_string(w.window);
    rec += kSep;
    rec += w.location.city;
    rec += kSep;
    rec += w.location.region;
    rec += kSep;
    rec += w.location.country;
    rec += kSep;
    rec += w.game;
    rec += kSep;
    append_aggregate(rec, w.agg);
    for (const auto& streamer : w.streamers) {
      rec += kSep;
      rec += streamer;
    }
    kv.put("w" + std::to_string(i), rec);
  }

  kv.put("running", std::to_string(data.running.size()));
  for (std::size_t i = 0; i < data.running.size(); ++i) {
    const auto& r = data.running[i];
    std::string rec = r.location.city;
    rec += kSep;
    rec += r.location.region;
    rec += kSep;
    rec += r.location.country;
    rec += kSep;
    rec += r.game;
    rec += kSep;
    append_aggregate(rec, r.agg);
    for (const auto& streamer : r.streamers) {
      rec += kSep;
      rec += streamer;
    }
    kv.put("r" + std::to_string(i), rec);
  }

  kv.put("collected", std::to_string(data.collected.size()));
  for (std::size_t i = 0; i < data.collected.size(); ++i) {
    const auto& c = data.collected[i];
    const auto& e = c.entry;
    std::string rec;
    const auto field = [&rec](const std::string& v) {
      rec += v;
      rec += kSep;
    };
    field(std::to_string(c.key.streamer_index));
    field(c.key.game);
    field(std::to_string(c.key.epoch));
    field(e.pseudonym);
    field(e.location.city);
    field(e.location.region);
    field(e.location.country);
    field(e.true_location.city);
    field(e.true_location.region);
    field(e.true_location.country);
    field(std::to_string(static_cast<int>(e.location_source)));
    field(e.is_static ? "1" : "0");
    field(e.high_quality ? "1" : "0");
    field(std::to_string(e.clean.points_in));
    field(std::to_string(e.clean.points_retained));
    field(std::to_string(e.clean.points_corrected));
    field(std::to_string(e.clean.points_discarded));
    field(std::to_string(e.clean.spike_points));
    field(std::to_string(e.clean.glitch_segments));
    field(encode_spikes(e.clean.spikes));
    field(encode_clusters(e.clusters));
    rec += std::to_string(e.clean.retained.size());
    kv.put("c" + std::to_string(i), rec);
    for (std::size_t j = 0; j < e.clean.retained.size(); ++j) {
      const auto& stream = e.clean.retained[j];
      std::string buf = stream.streamer;
      buf += kSep;
      buf += stream.game;
      buf += kSep;
      buf += encode_points(stream.points);
      std::string key = "c";
      key += std::to_string(i);
      key += ":r";
      key += std::to_string(j);
      kv.put(key, buf);
    }
  }

  store::snapshot_kv(kv, os);
}

CheckpointData load_checkpoint(std::istream& is) {
  const store::KvStore kv = store::restore_kv(is);
  const auto need = [&kv](const std::string& key) -> std::string {
    const auto value = kv.get(key);
    if (!value.has_value()) malformed("missing key " + key);
    return *value;
  };

  CheckpointData data;
  {
    const auto fields = split_fields(need("meta"));
    if (fields.size() != 13) malformed("meta record");
    data.id = to_u64(fields[0]);
    data.cursor = to_u64(fields[1]);
    data.events_total = to_u64(fields[2]);
    data.thumbnails = to_u64(fields[3]);
    data.visible = to_u64(fields[4]);
    data.ocr_ok = to_u64(fields[5]);
    data.watermark = to_f64(fields[6]);
    data.measurements = to_u64(fields[7]);
    data.late_events = to_u64(fields[8]);
    data.windows_closed = to_u64(fields[9]);
    data.windows_since_publish = to_u64(fields[10]);
    data.epoch_counter = to_u64(fields[11]);
    data.epochs_published = to_u64(fields[12]);
  }
  {
    const std::string open = need("open");
    std::size_t start = 0;
    while (start < open.size()) {
      std::size_t end = open.find(' ', start);
      if (end == std::string::npos) end = open.size();
      const std::string pair = open.substr(start, end - start);
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) malformed("open source");
      data.open_sources.emplace(
          static_cast<std::uint32_t>(to_u64(pair.substr(0, colon))),
          to_f64(pair.substr(colon + 1)));
      start = end + 1;
    }
  }

  const std::size_t n_groups = to_u64(need("groups"));
  for (std::size_t i = 0; i < n_groups; ++i) {
    const auto fields = split_fields(need("g" + std::to_string(i)));
    if (fields.size() != 5) malformed("group record");
    CheckpointData::GroupState group;
    group.key.streamer_index = to_u64(fields[0]);
    group.key.game = fields[1];
    group.key.epoch = static_cast<int>(to_i64(fields[2]));
    group.remaining = to_u64(fields[3]);
    const std::size_t n_streams = to_u64(fields[4]);
    for (std::size_t j = 0; j < n_streams; ++j) {
      const auto buf = split_fields(
          need("g" + std::to_string(i) + ":s" + std::to_string(j)));
      if (buf.size() != 2) malformed("group stream record");
      CheckpointData::StreamBuffer stream;
      stream.stream_index = static_cast<std::uint32_t>(to_u64(buf[0]));
      stream.points = decode_points(buf[1]);
      group.streams.push_back(std::move(stream));
    }
    data.groups.push_back(std::move(group));
  }

  const std::size_t n_windows = to_u64(need("windows"));
  for (std::size_t i = 0; i < n_windows; ++i) {
    const auto fields = split_fields(need("w" + std::to_string(i)));
    if (fields.size() < 10) malformed("window record");
    CheckpointData::WindowState w;
    w.window = to_i64(fields[0]);
    w.location.city = fields[1];
    w.location.region = fields[2];
    w.location.country = fields[3];
    w.game = fields[4];
    w.agg = decode_aggregate(fields, 5);
    for (std::size_t f = 10; f < fields.size(); ++f) {
      w.streamers.push_back(fields[f]);
    }
    data.windows.push_back(std::move(w));
  }

  const std::size_t n_running = to_u64(need("running"));
  for (std::size_t i = 0; i < n_running; ++i) {
    const auto fields = split_fields(need("r" + std::to_string(i)));
    if (fields.size() < 9) malformed("running record");
    CheckpointData::RunningState r;
    r.location.city = fields[0];
    r.location.region = fields[1];
    r.location.country = fields[2];
    r.game = fields[3];
    r.agg = decode_aggregate(fields, 4);
    for (std::size_t f = 9; f < fields.size(); ++f) {
      r.streamers.push_back(fields[f]);
    }
    data.running.push_back(std::move(r));
  }

  const std::size_t n_collected = to_u64(need("collected"));
  for (std::size_t i = 0; i < n_collected; ++i) {
    const auto fields = split_fields(need("c" + std::to_string(i)));
    if (fields.size() != 22) malformed("collected record");
    CollectedEntry c;
    c.key.streamer_index = to_u64(fields[0]);
    c.key.game = fields[1];
    c.key.epoch = static_cast<int>(to_i64(fields[2]));
    auto& e = c.entry;
    e.pseudonym = fields[3];
    e.game = c.key.game;
    e.location.city = fields[4];
    e.location.region = fields[5];
    e.location.country = fields[6];
    e.true_location.city = fields[7];
    e.true_location.region = fields[8];
    e.true_location.country = fields[9];
    e.location_source =
        static_cast<social::LocationSource>(to_i64(fields[10]));
    e.is_static = fields[11] == "1";
    e.high_quality = fields[12] == "1";
    e.clean.points_in = to_u64(fields[13]);
    e.clean.points_retained = to_u64(fields[14]);
    e.clean.points_corrected = to_u64(fields[15]);
    e.clean.points_discarded = to_u64(fields[16]);
    e.clean.spike_points = to_u64(fields[17]);
    e.clean.glitch_segments = to_u64(fields[18]);
    e.clean.spikes = decode_spikes(fields[19]);
    e.clusters = decode_clusters(fields[20]);
    const std::size_t n_retained = to_u64(fields[21]);
    for (std::size_t j = 0; j < n_retained; ++j) {
      const auto buf = split_fields(
          need("c" + std::to_string(i) + ":r" + std::to_string(j)));
      if (buf.size() != 3) malformed("retained stream record");
      analysis::Stream stream;
      stream.streamer = buf[0];
      stream.game = buf[1];
      stream.points = decode_points(buf[2]);
      e.clean.retained.push_back(std::move(stream));
    }
    data.collected.push_back(std::move(c));
  }
  return data;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t id) {
  return dir + "/checkpoint-" + std::to_string(id) + ".kv";
}

void write_checkpoint_file(const CheckpointData& data,
                           const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path = checkpoint_path(dir, data.id);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("stream: cannot write checkpoint " + tmp);
    }
    save_checkpoint(data, os);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<std::uint64_t> latest_checkpoint_id(const std::string& dir) {
  std::error_code ec;
  std::optional<std::uint64_t> latest;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "checkpoint-";
    constexpr std::string_view suffix = ".kv";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::uint64_t id = to_u64(digits);
    if (!latest.has_value() || id > *latest) latest = id;
  }
  return latest;
}

CheckpointData read_checkpoint_file(const std::string& dir,
                                    std::uint64_t id) {
  std::ifstream is(checkpoint_path(dir, id), std::ios::binary);
  if (!is) {
    throw std::runtime_error("stream: cannot read checkpoint " +
                             checkpoint_path(dir, id));
  }
  return load_checkpoint(is);
}

}  // namespace tero::stream
