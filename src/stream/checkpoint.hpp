#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/types.hpp"
#include "geo/geo.hpp"
#include "stream/event.hpp"

namespace tero::stream {

/// Exact serialized state of one quantile sketch (obs::QuantileSketch
/// export/restore round-trips bit-identically).
struct SketchState {
  std::vector<std::pair<int, std::uint64_t>> buckets;
  std::uint64_t underflow = 0;
};

/// Exact state of one WindowAggregate.
struct AggregateState {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  SketchState sketch;
};

/// The barrier-carried checkpoint (Chandy–Lamport along a stage chain,
/// DESIGN.md §10): the source stamps its cursor, then each stage appends
/// its fragment as it forwards the barrier — channel FIFO order makes the
/// combined state globally consistent — and the sink finalizes and writes
/// it through store::persistence. Restoring every fragment and re-running
/// the source from `cursor` replays the tail exactly, so the final output
/// is bit-identical to an uninterrupted run.
struct CheckpointData {
  std::uint64_t id = 0;
  /// Schedule events the source had emitted when the barrier left it
  /// (the barrier itself included): resume starts at events[cursor].
  std::uint64_t cursor = 0;
  std::uint64_t events_total = 0;  ///< schedule size, for sanity checking

  // -- extraction fragment: funnel counters so far ------------------------
  std::uint64_t thumbnails = 0;
  std::uint64_t visible = 0;
  std::uint64_t ocr_ok = 0;

  // -- cleaning fragment: open group buffers ------------------------------
  struct StreamBuffer {
    std::uint32_t stream_index = 0;
    std::vector<analysis::Measurement> points;
  };
  struct GroupState {
    GroupKey key;
    std::uint64_t remaining = 0;  ///< streams still to end in this group
    std::vector<StreamBuffer> streams;
  };
  std::vector<GroupState> groups;

  // -- sink fragment ------------------------------------------------------
  double watermark = 0.0;
  std::map<std::uint32_t, double> open_sources;
  struct WindowState {
    std::int64_t window = 0;
    geo::Location location;
    std::string game;
    AggregateState agg;
    std::vector<std::string> streamers;  ///< distinct pseudonyms, sorted
  };
  std::vector<WindowState> windows;
  struct RunningState {
    geo::Location location;
    std::string game;
    AggregateState agg;
    std::vector<std::string> streamers;  ///< distinct pseudonyms, sorted
  };
  std::vector<RunningState> running;
  std::vector<CollectedEntry> collected;

  std::uint64_t measurements = 0;
  std::uint64_t late_events = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t windows_since_publish = 0;
  std::uint64_t epoch_counter = 0;
  std::uint64_t epochs_published = 0;
};

/// Serialize/restore through store::persistence (length-prefixed KV
/// snapshot; doubles printed %.17g for bit-exact round trips, fields
/// separated by 0x1f like serve::snapshot_io).
void save_checkpoint(const CheckpointData& data, std::ostream& os);
[[nodiscard]] CheckpointData load_checkpoint(std::istream& is);

/// File layout inside a checkpoint directory: checkpoint-<id>.kv, written
/// to a temp name and renamed so readers never see a torn file.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          std::uint64_t id);
void write_checkpoint_file(const CheckpointData& data, const std::string& dir);
/// Highest checkpoint id present in `dir`; nullopt when none.
[[nodiscard]] std::optional<std::uint64_t> latest_checkpoint_id(
    const std::string& dir);
[[nodiscard]] CheckpointData read_checkpoint_file(const std::string& dir,
                                                  std::uint64_t id);

}  // namespace tero::stream
