#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "tero/pipeline.hpp"

namespace tero::obs {
class MetricsTimeline;
}  // namespace tero::obs

namespace tero::serve {
class QueryService;
}  // namespace tero::serve

namespace tero::tsdb {
class TimeSeriesStore;
}  // namespace tero::tsdb

namespace tero::stream {

/// Configuration of the streaming ingestion pipeline (DESIGN.md §10). The
/// embedded TeroConfig supplies the shared knobs — analysis parameters,
/// extraction channel, seed, thread count, granularity, obs sinks — so a
/// streaming run and a batch run of the same scenario are configured from
/// the same values (the bit-equivalence contract).
struct StreamConfig {
  core::TeroConfig tero;

  /// Event-time tumbling window size, seconds.
  double window_size_s = 21600.0;  // 6 hours
  /// Windows stay open this long past their end (watermark time) before
  /// closing; events older than a closed window are late.
  double allowed_lateness_s = 0.0;
  /// Publish a live snapshot epoch every this many closed windows
  /// (0 = only the final exact snapshot).
  std::size_t publish_every_windows = 4;
  /// Relative-error parameter of the per-window quantile sketches.
  double sketch_alpha = 0.01;

  /// Write a checkpoint every this many windows' worth of arrival time
  /// (0 = checkpointing off). Requires checkpoint_dir.
  std::size_t checkpoint_every_windows = 0;
  std::string checkpoint_dir;
  /// Fault injection: simulate a crash immediately after checkpoint N is
  /// written (0 = off). The run stops with StreamResult::crashed == true.
  std::uint64_t crash_after = 0;

  /// Per-stream delivery delay is uniform in [0, max_delivery_delay_s];
  /// 0 means arrivals equal event times (no late events possible).
  double max_delivery_delay_s = 0.0;
  /// Virtual-time token bucket over thumbnail arrivals (Twitch API quota);
  /// rate <= 0 disables throttling.
  double download_rate = 0.0;
  double download_burst = 0.0;

  /// Bounded capacity of each inter-stage channel.
  std::size_t channel_capacity = 1024;
  /// Max thumbnails the extraction stage gathers before running one
  /// parallel extraction batch on the thread pool.
  std::size_t extract_batch = 64;
  /// Test/bench knob: microseconds the sink sleeps per event, to make the
  /// consumer slow and force backpressure. Wall-clock pacing only — never
  /// read by the data path.
  std::uint64_t sink_delay_us = 0;

  /// Live epoch target (not owned; may be null). Closed windows fold into
  /// snapshots published here; the final exact snapshot is published last.
  serve::QueryService* service = nullptr;

  /// Historical sink (not owned; may be null). Each closed window appends
  /// one sample — (entry key, window end, window mean) — to the head block
  /// and advances the store's virtual clock to the window end, so sealing
  /// and compaction march with the watermark. Windows close serially in the
  /// sink in deterministic order, preserving the tsdb's determinism.
  tsdb::TimeSeriesStore* tsdb = nullptr;

  /// Virtual-time telemetry scraper (not owned; may be null). The sink —
  /// which already processes events serially in deterministic arrival
  /// order — advances it past each event's virtual arrival time, so
  /// timeline snapshots of the sink-owned tero.stream.* series are
  /// bit-identical for any thread count (DESIGN.md §13).
  obs::MetricsTimeline* timeline = nullptr;
};

}  // namespace tero::stream
