#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "geo/geo.hpp"
#include "stream/config.hpp"
#include "stream/event.hpp"
#include "synth/sessions.hpp"
#include "synth/world.hpp"
#include "tero/pipeline.hpp"

namespace tero::stream {

/// The deterministic arrival plan for one scenario: every event the source
/// stage will emit, in delivery order, with all per-stream derived facts the
/// stages need (location module output, pseudonyms, group membership).
///
/// Built once, up front, as a pure function of (world, streams, config) —
/// the virtual-time analogue of "the CDN decides when thumbnails arrive".
/// Because the schedule is a pure function, the source stage's entire state
/// is a single cursor into `events`, which is all a checkpoint needs to
/// record to resume it, and the token-bucket throttle costs nothing to
/// restore (its effect is already baked into the arrival times).
struct StreamSchedule {
  /// All events in arrival order: per stream a kStreamStart, its
  /// kThumbnail events, then a kStreamEnd; kCheckpoint barriers
  /// interleaved at fixed arrival-time boundaries. Only streams of located
  /// streamers appear (exactly the streams the batch pipeline extracts).
  std::vector<StreamEvent> events;

  core::LocatedWorld located;
  /// Pseudonym per streamer index (make_pseudonymizer(config seed)).
  std::vector<std::string> pseudonyms;
  /// Per ground-truth stream: its analysis group, and its believed
  /// location truncated to the aggregate granularity (the live window key).
  std::vector<GroupKey> stream_group;
  std::vector<geo::Location> stream_window_location;
  /// Streams per group — the cleaning stage counts kStreamEnd markers down
  /// from this to know when a group is complete.
  std::map<GroupKey, std::size_t> group_sizes;

  std::uint64_t thumbnails = 0;   ///< kThumbnail events in `events`
  std::uint64_t checkpoints = 0;  ///< kCheckpoint barriers in `events`
  /// Token-bucket accounting from the build (deterministic).
  std::uint64_t download_acquired = 0;
  std::uint64_t download_throttled = 0;
};

/// Build the schedule. Delivery delay of stream i is uniform in
/// [0, max_delivery_delay_s] drawn from Rng::indexed(mix_seed(seed,
/// kDelaySalt), i); the download token bucket then pushes throttled
/// arrivals forward (arrival times stay monotone — delivery is FIFO).
/// Checkpoint barriers land every checkpoint_every_windows * window_size_s
/// of arrival time.
[[nodiscard]] StreamSchedule build_schedule(
    const synth::World& world, std::span<const synth::TrueStream> streams,
    const StreamConfig& config);

}  // namespace tero::stream
