#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"

namespace tero::stream {

/// Lifetime accounting for one channel; readable at any time, exact after
/// both sides have finished. `stalls` counts blocking pushes that found the
/// channel full (one stall per push, however long it waited) — the
/// backpressure signal. `max_depth` is the high-water mark of the queue and
/// by construction never exceeds the capacity.
struct ChannelStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t stalls = 0;
  std::uint64_t max_depth = 0;
};

/// Bounded MPSC/SPSC queue connecting two pipeline stages (DESIGN.md §10).
///
/// Semantics:
///  - push() blocks while the channel is full (bounded memory: at most
///    `capacity` elements are ever queued) and returns false once the
///    channel is closed — the producer's signal to shut down.
///  - try_push() never blocks; false means full or closed.
///  - pop() blocks while empty; after close() it drains the remaining
///    elements and then returns nullopt.
///  - close() is idempotent and callable from either side: it wakes blocked
///    producers (their push fails) and blocked consumers (pop drains, then
///    ends). A consumer closing its *input* channel is the teardown cascade:
///    every producer blocked on that channel unblocks with push() == false,
///    propagates the close to its own input, and exits.
///
/// The optional gauge/counter sinks export queue depth and backpressure
/// stalls into the metrics registry; like all obs wiring they are
/// observational only and never change queueing behaviour.
template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity, obs::Gauge* depth_gauge = nullptr,
                   obs::Counter* stall_counter = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        depth_gauge_(depth_gauge),
        stall_counter_(stall_counter) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking push; false when the channel was closed (value dropped).
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= capacity_ && !closed_) {
      ++stats_.stalls;
      if (stall_counter_ != nullptr) stall_counter_->add();
      not_full_.wait(lock,
                     [this] { return queue_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    enqueue_locked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      enqueue_locked(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    return dequeue_locked(lock);
  }

  /// Non-blocking pop; nullopt when currently empty (closed or not).
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    return dequeue_locked(lock);
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  /// Retune the bound mid-run (the overload controller's backpressure
  /// actuation). Growing wakes blocked producers immediately; shrinking
  /// below the current depth never drops queued elements — pushes simply
  /// block until the consumer drains below the new bound. 0 clamps to 1,
  /// as at construction.
  void set_capacity(std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      capacity_ = capacity == 0 ? 1 : capacity;
    }
    not_full_.notify_all();
  }

  [[nodiscard]] ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  void enqueue_locked(T value) {
    queue_.push_back(std::move(value));
    ++stats_.pushed;
    if (queue_.size() > stats_.max_depth) stats_.max_depth = queue_.size();
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(queue_.size()));
    }
  }

  std::optional<T> dequeue_locked(std::unique_lock<std::mutex>& lock) {
    std::optional<T> value(std::move(queue_.front()));
    queue_.pop_front();
    ++stats_.popped;
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(queue_.size()));
    }
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  std::size_t capacity_;  ///< guarded by mutex_ (set_capacity retunes it)
  obs::Gauge* depth_gauge_;
  obs::Counter* stall_counter_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
  ChannelStats stats_;
};

}  // namespace tero::stream
