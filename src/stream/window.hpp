#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tero::stream {

/// Mergeable incremental aggregate backing one tumbling-window (and one
/// running per-{location, game}) latency summary: count / mean / M2 via
/// Welford, plus the obs quantile sketch for box statistics. merge() uses
/// the parallel (Chan et al.) combination formula, so
///   fold(w1); fold(w2);  ==  fold(w1.merge(w2))
/// up to the formula's fixed floating-point evaluation order — window folds
/// always happen in window-close order, which is deterministic, so the
/// running state is bit-identical across thread counts and across
/// checkpoint/restore boundaries.
///
/// Not copyable (the sketch owns a mutex); held by unique_ptr in maps.
class WindowAggregate {
 public:
  explicit WindowAggregate(double sketch_alpha = 0.01)
      : sketch_(sketch_alpha) {}

  WindowAggregate(const WindowAggregate&) = delete;
  WindowAggregate& operator=(const WindowAggregate&) = delete;

  void add(double value) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    sketch_.add(value);
  }

  void merge(const WindowAggregate& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      count_ = other.count_;
      mean_ = other.mean_;
      m2_ = other.m2_;
    } else {
      const double na = static_cast<double>(count_);
      const double nb = static_cast<double>(other.count_);
      const double n = na + nb;
      const double delta = other.mean_ - mean_;
      mean_ += delta * nb / n;
      m2_ += other.m2_ + delta * delta * na * nb / n;
      count_ += other.count_;
    }
    sketch_.merge(other.sketch_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double m2() const noexcept { return m2_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] const obs::QuantileSketch& sketch() const noexcept {
    return sketch_;
  }

  /// Checkpoint support: replace the aggregate's exact state.
  void restore(std::uint64_t count, double mean, double m2,
               const std::vector<std::pair<int, std::uint64_t>>& buckets,
               std::uint64_t underflow) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
    sketch_.restore(buckets, underflow);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  obs::QuantileSketch sketch_;
};

/// Tumbling window index of event time `t`: floor(t / size).
[[nodiscard]] inline std::int64_t window_of(double t, double size) noexcept {
  return static_cast<std::int64_t>(std::floor(t / size));
}

/// Low-watermark tracking over per-source watermarks (DESIGN.md §10).
///
/// A source (one ground-truth stream) opens when its first delivery
/// arrives, advances its own watermark with each of its events (event time
/// is non-decreasing within a source), and closes at its end marker. The
/// global low watermark W is the running maximum of min-over-open-sources:
/// W never regresses, and once W passes a window's end (+ allowed
/// lateness) that window closes. A source that opens late — its delivery
/// delay held its whole lifetime back while other sources pushed W forward
/// — produces late events, the `tero.stream.late` pathway.
class WatermarkTracker {
 public:
  void open(std::uint32_t source, double event_time) {
    open_.emplace(source, event_time);
    advance();
  }

  void update(std::uint32_t source, double event_time) {
    const auto it = open_.find(source);
    if (it == open_.end()) return;
    if (event_time > it->second) it->second = event_time;
    advance();
  }

  void close(std::uint32_t source) {
    open_.erase(source);
    advance();
  }

  [[nodiscard]] double watermark() const noexcept { return watermark_; }
  [[nodiscard]] std::size_t open_sources() const noexcept {
    return open_.size();
  }

  /// Checkpoint support.
  [[nodiscard]] const std::map<std::uint32_t, double>& open_map() const {
    return open_;
  }
  void restore(double watermark, std::map<std::uint32_t, double> open) {
    watermark_ = watermark;
    open_ = std::move(open);
  }

 private:
  void advance() {
    if (open_.empty()) return;
    double low = std::numeric_limits<double>::infinity();
    for (const auto& [source, wm] : open_) {
      if (wm < low) low = wm;
    }
    if (low > watermark_) watermark_ = low;
  }

  double watermark_ = -std::numeric_limits<double>::infinity();
  std::map<std::uint32_t, double> open_;
};

}  // namespace tero::stream
