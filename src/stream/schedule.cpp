#include "stream/schedule.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "download/rate_limiter.hpp"
#include "util/rng.hpp"

namespace tero::stream {
namespace {

/// Salt for the per-stream delivery-delay draw; independent of the
/// extraction salt so delays never perturb extraction randomness.
constexpr std::uint64_t kDelaySalt = 0x7e21beef0002ULL;

/// Orders events with equal arrival time: a stream's start precedes its
/// thumbnails, which precede its end.
int marker_rank(EventKind kind) {
  switch (kind) {
    case EventKind::kStreamStart: return 0;
    case EventKind::kThumbnail: return 1;
    case EventKind::kStreamEnd: return 2;
    default: return 3;
  }
}

}  // namespace

StreamSchedule build_schedule(const synth::World& world,
                              std::span<const synth::TrueStream> streams,
                              const StreamConfig& config) {
  StreamSchedule schedule;
  schedule.located = core::locate_streamers(world);

  const store::Pseudonymizer pseudonymizer =
      core::make_pseudonymizer(config.tero.seed);
  schedule.pseudonyms.reserve(world.streamers().size());
  for (const auto& streamer : world.streamers()) {
    schedule.pseudonyms.push_back(pseudonymizer.pseudonym(streamer.id));
  }

  schedule.stream_group.resize(streams.size());
  schedule.stream_window_location.resize(streams.size());

  const std::uint64_t delay_seed =
      util::mix_seed(config.tero.seed, kDelaySalt);
  std::vector<StreamEvent> events;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto& true_stream = streams[i];
    if (!schedule.located.located[true_stream.streamer_index].has_value()) {
      continue;  // unlocated streamers never enter the pipeline (§3.1)
    }
    if (true_stream.points.empty()) continue;

    const int epoch = core::stream_epoch(world, schedule.located, true_stream);
    GroupKey key{true_stream.streamer_index, true_stream.game, epoch};
    schedule.stream_group[i] = key;
    const geo::Location& believed =
        epoch == 1
            ? *schedule.located.located_after[true_stream.streamer_index]
            : *schedule.located.located[true_stream.streamer_index];
    schedule.stream_window_location[i] =
        core::truncate_location(believed, config.tero.aggregate_granularity);
    ++schedule.group_sizes[key];

    double delay = 0.0;
    if (config.max_delivery_delay_s > 0.0) {
      util::Rng delay_rng = util::Rng::indexed(delay_seed, i);
      delay = delay_rng.uniform(0.0, config.max_delivery_delay_s);
    }

    StreamEvent start;
    start.kind = EventKind::kStreamStart;
    start.stream_index = static_cast<std::uint32_t>(i);
    start.event_time = true_stream.points.front().t;
    start.arrival_time = true_stream.points.front().t + delay;
    events.push_back(start);
    for (std::size_t p = 0; p < true_stream.points.size(); ++p) {
      StreamEvent ev;
      ev.kind = EventKind::kThumbnail;
      ev.stream_index = static_cast<std::uint32_t>(i);
      ev.point_index = static_cast<std::uint32_t>(p);
      ev.event_time = true_stream.points[p].t;
      ev.arrival_time = true_stream.points[p].t + delay;
      events.push_back(ev);
      ++schedule.thumbnails;
    }
    StreamEvent end;
    end.kind = EventKind::kStreamEnd;
    end.stream_index = static_cast<std::uint32_t>(i);
    end.event_time = true_stream.points.back().t;
    end.arrival_time = true_stream.points.back().t + delay;
    events.push_back(end);
  }

  std::sort(events.begin(), events.end(),
            [](const StreamEvent& a, const StreamEvent& b) {
              return std::make_tuple(a.arrival_time, a.stream_index,
                                     marker_rank(a.kind), a.point_index) <
                     std::make_tuple(b.arrival_time, b.stream_index,
                                     marker_rank(b.kind), b.point_index);
            });

  // Download quota: each thumbnail arrival spends one token; throttled
  // arrivals slip to when their token refills. Delivery is FIFO, so arrival
  // times are monotonized — a throttled thumbnail delays everything behind
  // it, exactly like a rate-limited download queue.
  if (config.download_rate > 0.0) {
    download::TokenBucket bucket(config.download_rate,
                                 config.download_burst > 0.0
                                     ? config.download_burst
                                     : config.download_rate);
    double clock = -std::numeric_limits<double>::infinity();
    for (auto& ev : events) {
      double now = std::max(ev.arrival_time, clock);
      if (ev.kind == EventKind::kThumbnail) {
        if (!bucket.try_acquire(now)) {
          ++schedule.download_throttled;
          now = bucket.next_available(now);
          bucket.try_acquire(now);
        }
        ++schedule.download_acquired;
      }
      ev.arrival_time = now;
      clock = now;
    }
  }

  // Checkpoint barriers at fixed arrival-time boundaries. The boundary
  // spacing is in arrival time, which equals event time when delivery is
  // undelayed and unthrottled — "every N windows" of the undisturbed clock.
  if (config.checkpoint_every_windows > 0) {
    const double interval =
        static_cast<double>(config.checkpoint_every_windows) *
        config.window_size_s;
    std::vector<StreamEvent> with_barriers;
    with_barriers.reserve(events.size() + 16);
    double origin = events.empty() ? 0.0 : events.front().arrival_time;
    double next_boundary = origin + interval;
    std::uint64_t id = 1;
    for (auto& ev : events) {
      while (ev.arrival_time >= next_boundary) {
        StreamEvent barrier;
        barrier.kind = EventKind::kCheckpoint;
        barrier.checkpoint_id = id++;
        barrier.arrival_time = next_boundary;
        with_barriers.push_back(barrier);
        next_boundary += interval;
        ++schedule.checkpoints;
      }
      with_barriers.push_back(std::move(ev));
    }
    events = std::move(with_barriers);
  }

  schedule.events = std::move(events);
  return schedule;
}

}  // namespace tero::stream
