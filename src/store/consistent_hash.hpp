#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tero::store {

/// Stable pseudonymization of streamer IDs (§7): Tero must remember that a
/// location and a set of measurements belong to the same streamer without
/// remembering who the streamer is. A salted consistent hash gives a stable
/// opaque ID; the salt never leaves the process.
class Pseudonymizer {
 public:
  explicit Pseudonymizer(std::uint64_t salt) : salt_(salt) {}

  /// "u" + 16 hex digits, stable for a given (salt, id) pair.
  [[nodiscard]] std::string pseudonym(std::string_view streamer_id) const;

 private:
  std::uint64_t salt_;
};

/// One contiguous arc of the hash space whose owner changed between two
/// ring configurations: every key hashing into [begin, end] (inclusive)
/// moved from `from` to `to`. An empty `from` means the arc had no owner
/// before (the ring was empty); likewise for `to`.
struct RemapRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string from;
  std::string to;
};

/// The exact set of keys a ring change moves, expressed as hash-space arcs
/// rather than a key sample — membership tests are O(log ranges) and the
/// moved fraction is exact, so callers (cluster hand-off bookkeeping, the
/// remap-bound property tests) no longer re-derive it with ad-hoc
/// sample-10k-keys-and-count math.
struct RemapDiff {
  /// Non-overlapping, sorted by `begin`; arcs that wrap past 2^64 are split
  /// into a tail range and a [0, ...] range.
  std::vector<RemapRange> ranges;

  [[nodiscard]] bool empty() const noexcept { return ranges.empty(); }
  /// Exact fraction of the 2^64 hash space whose owner changed.
  [[nodiscard]] double moved_fraction() const noexcept;
  /// Did `key` change owners? Pure binary search over `ranges`.
  [[nodiscard]] bool moved(std::string_view key) const noexcept;
  [[nodiscard]] bool moved_hash(std::uint64_t hash) const noexcept;
};

/// Classic consistent-hash ring with virtual nodes; used to shard keys
/// across store replicas so node churn only remaps a ~1/n fraction of keys.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int virtual_nodes = 64);

  void add_node(const std::string& node);
  void remove_node(const std::string& node);

  /// The node owning `key`; empty string if the ring is empty.
  [[nodiscard]] std::string node_for(std::string_view key) const;

  /// The first `n` *distinct* nodes clockwise from `key`'s hash — the
  /// replica set for `key` (owners[0] == node_for(key) is the leader, the
  /// rest are followers in ring order). Capped at node_count().
  [[nodiscard]] std::vector<std::string> nodes_for(std::string_view key,
                                                   std::size_t n) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Live nodes in insertion order (serve::QueryService enumerates its
  /// shards through this).
  [[nodiscard]] const std::vector<std::string>& nodes() const noexcept {
    return nodes_;
  }

  /// The position a key occupies on the ring (what node_for lower-bounds).
  [[nodiscard]] static std::uint64_t key_hash(std::string_view key);

  /// Every arc of the hash space whose owner differs between `before` and
  /// `after`. Walks the union of both rings' virtual-node boundaries, so
  /// the result is exact: adding or removing one of n nodes yields arcs
  /// totalling ~1/n of the space (the documented remap bound; see the
  /// store_test property tests).
  [[nodiscard]] static RemapDiff remap_diff(const ConsistentHashRing& before,
                                            const ConsistentHashRing& after);

 private:
  int virtual_nodes_;
  std::vector<std::string> nodes_;
  std::map<std::uint64_t, std::string> ring_;
};

}  // namespace tero::store
