#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tero::store {

/// Stable pseudonymization of streamer IDs (§7): Tero must remember that a
/// location and a set of measurements belong to the same streamer without
/// remembering who the streamer is. A salted consistent hash gives a stable
/// opaque ID; the salt never leaves the process.
class Pseudonymizer {
 public:
  explicit Pseudonymizer(std::uint64_t salt) : salt_(salt) {}

  /// "u" + 16 hex digits, stable for a given (salt, id) pair.
  [[nodiscard]] std::string pseudonym(std::string_view streamer_id) const;

 private:
  std::uint64_t salt_;
};

/// Classic consistent-hash ring with virtual nodes; used to shard keys
/// across store replicas so node churn only remaps a ~1/n fraction of keys.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int virtual_nodes = 64);

  void add_node(const std::string& node);
  void remove_node(const std::string& node);

  /// The node owning `key`; empty string if the ring is empty.
  [[nodiscard]] std::string node_for(std::string_view key) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Live nodes in insertion order (serve::QueryService enumerates its
  /// shards through this).
  [[nodiscard]] const std::vector<std::string>& nodes() const noexcept {
    return nodes_;
  }

 private:
  int virtual_nodes_;
  std::vector<std::string> nodes_;
  std::map<std::uint64_t, std::string> ring_;
};

}  // namespace tero::store
