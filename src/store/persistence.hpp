#pragma once

#include <iosfwd>
#include <string>

#include "store/doc_store.hpp"
#include "store/kv_store.hpp"

namespace tero::fault {
class FaultInjector;
}  // namespace tero::fault

namespace tero::store {

/// Snapshot/restore for the stores backing the micro-services (App. B):
/// the coordinator's crash recovery reads "most of its previous state" back
/// from the KV store, which in the real deployment is durable Redis; here a
/// length-prefixed text snapshot provides the same guarantee for tests and
/// long-running examples.
///
/// Format (line-oriented, values length-prefixed so they may contain
/// anything): `K <keylen> <key> <valuelen> <value>` for plain keys,
/// `L <keylen> <key> <valuelen> <value>` for list elements in FIFO order.
void snapshot_kv(const KvStore& kv, std::ostream& os);
[[nodiscard]] KvStore restore_kv(std::istream& is);

/// Document-store snapshot: `D <collectionlen> <collection> <fields>` then
/// one `F <keylen> <key> <valuelen> <value>` line per field.
void snapshot_docs(const DocStore& docs, std::ostream& os);
[[nodiscard]] DocStore restore_docs(std::istream& is);

// -- crash-safe file snapshots ------------------------------------------------
//
// save_kv_file writes `TEROKV 1\n<payload><payload_bytes> <fnv1a64>\nTEROKV
// END\n` to `<path>.tmp` and atomically renames it over `path`, so a crash
// mid-write leaves the previous snapshot intact and a reader never observes
// a half-written file. load_kv_file verifies the header, the footer, and the
// payload checksum, rejecting torn or truncated files with a clear error
// (std::runtime_error mentioning the path and what was wrong).
//
// `injector`, when non-null, arms the "persist.write" fault point: an
// injected kError or kCrash tears the write — the temp file is left
// truncated mid-payload, the primary file untouched — and save_kv_file
// throws std::runtime_error, which is exactly the torn-write failure
// load_kv_file's checks must catch.
void save_kv_file(const KvStore& kv, const std::string& path,
                  fault::FaultInjector* injector = nullptr);
[[nodiscard]] KvStore load_kv_file(const std::string& path);

}  // namespace tero::store
