#pragma once

#include <iosfwd>

#include "store/doc_store.hpp"
#include "store/kv_store.hpp"

namespace tero::store {

/// Snapshot/restore for the stores backing the micro-services (App. B):
/// the coordinator's crash recovery reads "most of its previous state" back
/// from the KV store, which in the real deployment is durable Redis; here a
/// length-prefixed text snapshot provides the same guarantee for tests and
/// long-running examples.
///
/// Format (line-oriented, values length-prefixed so they may contain
/// anything): `K <keylen> <key> <valuelen> <value>` for plain keys,
/// `L <keylen> <key> <valuelen> <value>` for list elements in FIFO order.
void snapshot_kv(const KvStore& kv, std::ostream& os);
[[nodiscard]] KvStore restore_kv(std::istream& is);

/// Document-store snapshot: `D <collectionlen> <collection> <fields>` then
/// one `F <keylen> <key> <valuelen> <value>` line per field.
void snapshot_docs(const DocStore& docs, std::ostream& os);
[[nodiscard]] DocStore restore_docs(std::istream& is);

}  // namespace tero::store
