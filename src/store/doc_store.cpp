#include "store/doc_store.hpp"

#include <cstdlib>

namespace tero::store {

std::uint64_t DocStore::insert(std::string_view collection, Document doc) {
  const std::uint64_t id = next_id_++;
  collections_[std::string(collection)].docs.emplace(id, std::move(doc));
  return id;
}

const Document* DocStore::find_by_id(std::string_view collection,
                                     std::uint64_t id) const {
  const auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) return nullptr;
  const auto it = coll_it->second.docs.find(id);
  return it == coll_it->second.docs.end() ? nullptr : &it->second;
}

std::vector<const Document*> DocStore::find_equal(std::string_view collection,
                                                  std::string_view field,
                                                  std::string_view value) const {
  return scan(collection, [&](const Document& doc) {
    const auto it = doc.find(field);
    return it != doc.end() && it->second == value;
  });
}

std::vector<const Document*> DocStore::scan(
    std::string_view collection,
    const std::function<bool(const Document&)>& predicate) const {
  std::vector<const Document*> results;
  const auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) return results;
  for (const auto& [id, doc] : coll_it->second.docs) {
    if (predicate(doc)) results.push_back(&doc);
  }
  return results;
}

std::size_t DocStore::count(std::string_view collection) const {
  const auto coll_it = collections_.find(collection);
  return coll_it == collections_.end() ? 0 : coll_it->second.docs.size();
}

std::size_t DocStore::remove_if(
    std::string_view collection,
    const std::function<bool(const Document&)>& predicate) {
  const auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) return 0;
  std::size_t removed = 0;
  for (auto it = coll_it->second.docs.begin();
       it != coll_it->second.docs.end();) {
    if (predicate(it->second)) {
      it = coll_it->second.docs.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> DocStore::collections() const {
  std::vector<std::string> names;
  for (const auto& [name, collection] : collections_) names.push_back(name);
  return names;
}

std::string doc_get(const Document& doc, std::string_view field,
                    std::string fallback) {
  const auto it = doc.find(field);
  return it == doc.end() ? std::move(fallback) : it->second;
}

double doc_get_num(const Document& doc, std::string_view field,
                   double fallback) {
  const auto it = doc.find(field);
  if (it == doc.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace tero::store
