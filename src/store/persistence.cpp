#include "store/persistence.hpp"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "fault/fault.hpp"
#include "util/rng.hpp"

namespace tero::store {
namespace {

void write_field(std::ostream& os, const std::string& value) {
  os << value.size() << ' ' << value;
}

std::string read_field(std::istream& is) {
  std::size_t length = 0;
  if (!(is >> length)) {
    throw std::invalid_argument("restore: truncated length");
  }
  is.get();  // separator space
  std::string value(length, '\0');
  is.read(value.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(is.gcount()) != length) {
    throw std::invalid_argument("restore: truncated value");
  }
  return value;
}

}  // namespace

void snapshot_kv(const KvStore& kv, std::ostream& os) {
  for (const auto& key : kv.keys_with_prefix("")) {
    os << "K ";
    write_field(os, key);
    os << ' ';
    write_field(os, *kv.get(key));
    os << '\n';
  }
  for (const auto& list_key : kv.list_keys()) {
    for (const auto& value : kv.list_contents(list_key)) {
      os << "L ";
      write_field(os, list_key);
      os << ' ';
      write_field(os, value);
      os << '\n';
    }
  }
}

KvStore restore_kv(std::istream& is) {
  KvStore kv;
  char tag = 0;
  while (is >> tag) {
    if (tag == 'K') {
      std::string key = read_field(is);
      std::string value = read_field(is);
      kv.put(std::move(key), std::move(value));
    } else if (tag == 'L') {
      const std::string list_key = read_field(is);
      kv.push_back(list_key, read_field(is));
    } else {
      throw std::invalid_argument("restore_kv: unknown record tag");
    }
  }
  return kv;
}

void snapshot_docs(const DocStore& docs, std::ostream& os) {
  for (const auto& collection : docs.collections()) {
    for (const Document* doc :
         docs.scan(collection, [](const Document&) { return true; })) {
      os << "D ";
      write_field(os, collection);
      os << ' ' << doc->size() << '\n';
      for (const auto& [field, value] : *doc) {
        os << "F ";
        write_field(os, field);
        os << ' ';
        write_field(os, value);
        os << '\n';
      }
    }
  }
}

DocStore restore_docs(std::istream& is) {
  DocStore docs;
  char tag = 0;
  while (is >> tag) {
    if (tag != 'D') {
      throw std::invalid_argument("restore_docs: expected D record");
    }
    const std::string collection = read_field(is);
    std::size_t fields = 0;
    if (!(is >> fields)) {
      throw std::invalid_argument("restore_docs: missing field count");
    }
    Document doc;
    for (std::size_t i = 0; i < fields; ++i) {
      if (!(is >> tag) || tag != 'F') {
        throw std::invalid_argument("restore_docs: expected F record");
      }
      std::string field = read_field(is);
      std::string value = read_field(is);
      doc.emplace(std::move(field), std::move(value));
    }
    docs.insert(collection, std::move(doc));
  }
  return docs;
}

namespace {

constexpr std::string_view kFileHeader = "TEROKV 1\n";
constexpr std::string_view kFileTrailer = "TEROKV END\n";

[[noreturn]] void reject(const std::string& path, std::string_view why) {
  throw std::runtime_error("load_kv_file: " + path + ": " + std::string(why));
}

}  // namespace

void save_kv_file(const KvStore& kv, const std::string& path,
                  fault::FaultInjector* injector) {
  std::ostringstream payload_os;
  snapshot_kv(kv, payload_os);
  const std::string payload = payload_os.str();

  fault::FaultPoint* point =
      fault::FaultInjector::maybe_point(injector, "persist.write");
  const fault::FaultDecision decision =
      point != nullptr ? point->hit() : fault::FaultDecision{};
  const bool torn = decision.kind == fault::FaultKind::kError ||
                    decision.kind == fault::FaultKind::kCrash ||
                    decision.kind == fault::FaultKind::kCorrupt;

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("save_kv_file: cannot open " + tmp_path);
    }
    os << kFileHeader;
    if (torn) {
      // Simulated crash mid-write: half the payload, no footer. The temp
      // file is deliberately left behind so load paths can prove they
      // reject it; the primary at `path` is untouched.
      os.write(payload.data(),
               static_cast<std::streamsize>(payload.size() / 2));
      os.flush();
      throw std::runtime_error("save_kv_file: injected torn write to " +
                               tmp_path);
    }
    os << payload;
    os << payload.size() << ' '
       << util::fnv1a64({payload.data(), payload.size()}) << '\n'
       << kFileTrailer;
    os.flush();
    if (!os) {
      throw std::runtime_error("save_kv_file: write failed for " + tmp_path);
    }
  }
  // Atomic publish: readers see either the old snapshot or the new one,
  // never a prefix.
  std::filesystem::rename(tmp_path, path);
}

KvStore load_kv_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) reject(path, "cannot open");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string contents = buffer.str();

  if (contents.size() < kFileHeader.size() ||
      contents.compare(0, kFileHeader.size(), kFileHeader) != 0) {
    reject(path, "missing TEROKV header (not a snapshot file?)");
  }
  if (contents.size() < kFileHeader.size() + kFileTrailer.size() ||
      contents.compare(contents.size() - kFileTrailer.size(),
                       kFileTrailer.size(), kFileTrailer) != 0) {
    reject(path, "missing end marker (torn or truncated write)");
  }

  // Body = payload + "<payload_bytes> <checksum>\n".
  const std::string_view body(
      contents.data() + kFileHeader.size(),
      contents.size() - kFileHeader.size() - kFileTrailer.size());
  const auto footer_start = body.rfind('\n', body.size() >= 2
                                                 ? body.size() - 2
                                                 : std::string_view::npos);
  const std::string_view footer =
      footer_start == std::string_view::npos
          ? body
          : body.substr(footer_start + 1);
  std::istringstream footer_is{std::string(footer)};
  std::size_t payload_bytes = 0;
  std::uint64_t checksum = 0;
  if (!(footer_is >> payload_bytes >> checksum)) {
    reject(path, "unparseable footer (torn or truncated write)");
  }
  const std::string_view payload = body.substr(0, body.size() - footer.size());
  if (payload.size() != payload_bytes) {
    reject(path, "payload length mismatch (torn or truncated write)");
  }
  if (util::fnv1a64({payload.data(), payload.size()}) != checksum) {
    reject(path, "payload checksum mismatch (corrupted snapshot)");
  }

  std::istringstream payload_is{std::string(payload)};
  try {
    return restore_kv(payload_is);
  } catch (const std::invalid_argument& error) {
    reject(path, std::string("malformed record: ") + error.what());
  }
}

}  // namespace tero::store
