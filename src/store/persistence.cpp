#include "store/persistence.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace tero::store {
namespace {

void write_field(std::ostream& os, const std::string& value) {
  os << value.size() << ' ' << value;
}

std::string read_field(std::istream& is) {
  std::size_t length = 0;
  if (!(is >> length)) {
    throw std::invalid_argument("restore: truncated length");
  }
  is.get();  // separator space
  std::string value(length, '\0');
  is.read(value.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(is.gcount()) != length) {
    throw std::invalid_argument("restore: truncated value");
  }
  return value;
}

}  // namespace

void snapshot_kv(const KvStore& kv, std::ostream& os) {
  for (const auto& key : kv.keys_with_prefix("")) {
    os << "K ";
    write_field(os, key);
    os << ' ';
    write_field(os, *kv.get(key));
    os << '\n';
  }
  for (const auto& list_key : kv.list_keys()) {
    for (const auto& value : kv.list_contents(list_key)) {
      os << "L ";
      write_field(os, list_key);
      os << ' ';
      write_field(os, value);
      os << '\n';
    }
  }
}

KvStore restore_kv(std::istream& is) {
  KvStore kv;
  char tag = 0;
  while (is >> tag) {
    if (tag == 'K') {
      std::string key = read_field(is);
      std::string value = read_field(is);
      kv.put(std::move(key), std::move(value));
    } else if (tag == 'L') {
      const std::string list_key = read_field(is);
      kv.push_back(list_key, read_field(is));
    } else {
      throw std::invalid_argument("restore_kv: unknown record tag");
    }
  }
  return kv;
}

void snapshot_docs(const DocStore& docs, std::ostream& os) {
  for (const auto& collection : docs.collections()) {
    for (const Document* doc :
         docs.scan(collection, [](const Document&) { return true; })) {
      os << "D ";
      write_field(os, collection);
      os << ' ' << doc->size() << '\n';
      for (const auto& [field, value] : *doc) {
        os << "F ";
        write_field(os, field);
        os << ' ';
        write_field(os, value);
        os << '\n';
      }
    }
  }
}

DocStore restore_docs(std::istream& is) {
  DocStore docs;
  char tag = 0;
  while (is >> tag) {
    if (tag != 'D') {
      throw std::invalid_argument("restore_docs: expected D record");
    }
    const std::string collection = read_field(is);
    std::size_t fields = 0;
    if (!(is >> fields)) {
      throw std::invalid_argument("restore_docs: missing field count");
    }
    Document doc;
    for (std::size_t i = 0; i < fields; ++i) {
      if (!(is >> tag) || tag != 'F') {
        throw std::invalid_argument("restore_docs: expected F record");
      }
      std::string field = read_field(is);
      std::string value = read_field(is);
      doc.emplace(std::move(field), std::move(value));
    }
    docs.insert(collection, std::move(doc));
  }
  return docs;
}

}  // namespace tero::store
