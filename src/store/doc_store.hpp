#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tero::store {

/// A flat string->string record; numeric fields are stored as decimal text
/// (the document store holds latency measurements and analysis results, all
/// of which serialize naturally).
using Document = std::map<std::string, std::string, std::less<>>;

/// MongoDB-like document store (App. B): named collections of schemaless
/// documents with insert / filtered scan / field equality indexes.
class DocStore {
 public:
  /// Insert and return the document's auto-assigned id.
  std::uint64_t insert(std::string_view collection, Document doc);

  [[nodiscard]] const Document* find_by_id(std::string_view collection,
                                           std::uint64_t id) const;

  /// All documents where `field` equals `value`.
  [[nodiscard]] std::vector<const Document*> find_equal(
      std::string_view collection, std::string_view field,
      std::string_view value) const;

  /// All documents matching an arbitrary predicate.
  [[nodiscard]] std::vector<const Document*> scan(
      std::string_view collection,
      const std::function<bool(const Document&)>& predicate) const;

  [[nodiscard]] std::size_t count(std::string_view collection) const;

  /// Remove documents matching the predicate, returning how many.
  std::size_t remove_if(std::string_view collection,
                        const std::function<bool(const Document&)>& predicate);

  /// Collection names (persistence / debugging).
  [[nodiscard]] std::vector<std::string> collections() const;

 private:
  struct Collection {
    std::map<std::uint64_t, Document> docs;
  };
  std::map<std::string, Collection, std::less<>> collections_;
  std::uint64_t next_id_ = 1;
};

/// Field helpers (missing field -> fallback).
[[nodiscard]] std::string doc_get(const Document& doc, std::string_view field,
                                  std::string fallback = "");
[[nodiscard]] double doc_get_num(const Document& doc, std::string_view field,
                                 double fallback = 0.0);

}  // namespace tero::store
