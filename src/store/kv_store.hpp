#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tero::fault {
class FaultPoint;
}  // namespace tero::fault

namespace tero::store {

/// In-memory key-value store standing in for Redis (App. B): plain string
/// keys/values plus FIFO lists, which is all the inter-process communication
/// Tero's modules use (producers push, consumers pull when ready). Keys are
/// ordered, so prefix scans are cheap — the coordinator's crash-recovery
/// path (App. A) reconstructs its state from a prefix scan.
class KvStore {
 public:
  // -- fault injection --------------------------------------------------------
  /// Attach the "kv.put" fault point (nullptr = off, the default). An
  /// injected kError makes the next put/push_back drop the write and return
  /// false — the in-memory analogue of a failed Redis command — which is
  /// what the download system's bounded KV-retry loop exercises.
  void set_fault_point(fault::FaultPoint* point) noexcept {
    fault_point_ = point;
  }

  // -- plain keys ------------------------------------------------------------
  /// Returns false (write dropped) only under an injected fault.
  bool put(std::string key, std::string value);
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  bool erase(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      std::string_view prefix) const;
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  // -- FIFO lists (work queues) -----------------------------------------------
  /// Returns false (write dropped) only under an injected fault.
  bool push_back(const std::string& list_key, std::string value);
  [[nodiscard]] std::optional<std::string> pop_front(
      const std::string& list_key);
  [[nodiscard]] std::size_t list_size(const std::string& list_key) const;
  /// Pop up to `batch` elements at once; image-processing workers pull
  /// fixed-size batches and leave smaller remainders for slower processes
  /// (App. B).
  [[nodiscard]] std::vector<std::string> pop_batch(const std::string& list_key,
                                                   std::size_t batch);

  // -- enumeration (persistence / debugging) ----------------------------------
  [[nodiscard]] std::vector<std::string> list_keys() const;
  [[nodiscard]] std::vector<std::string> list_contents(
      const std::string& list_key) const;

 private:
  [[nodiscard]] bool write_faulted();

  fault::FaultPoint* fault_point_ = nullptr;
  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, std::deque<std::string>, std::less<>> lists_;
};

}  // namespace tero::store
