#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tero::store {

/// In-memory key-value store standing in for Redis (App. B): plain string
/// keys/values plus FIFO lists, which is all the inter-process communication
/// Tero's modules use (producers push, consumers pull when ready). Keys are
/// ordered, so prefix scans are cheap — the coordinator's crash-recovery
/// path (App. A) reconstructs its state from a prefix scan.
class KvStore {
 public:
  // -- plain keys ------------------------------------------------------------
  void put(std::string key, std::string value);
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  bool erase(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      std::string_view prefix) const;
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  // -- FIFO lists (work queues) -----------------------------------------------
  void push_back(const std::string& list_key, std::string value);
  [[nodiscard]] std::optional<std::string> pop_front(
      const std::string& list_key);
  [[nodiscard]] std::size_t list_size(const std::string& list_key) const;
  /// Pop up to `batch` elements at once; image-processing workers pull
  /// fixed-size batches and leave smaller remainders for slower processes
  /// (App. B).
  [[nodiscard]] std::vector<std::string> pop_batch(const std::string& list_key,
                                                   std::size_t batch);

  // -- enumeration (persistence / debugging) ----------------------------------
  [[nodiscard]] std::vector<std::string> list_keys() const;
  [[nodiscard]] std::vector<std::string> list_contents(
      const std::string& list_key) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, std::deque<std::string>, std::less<>> lists_;
};

}  // namespace tero::store
