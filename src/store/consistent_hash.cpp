#include "store/consistent_hash.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "util/rng.hpp"

namespace tero::store {
namespace {

std::uint64_t hash_with_salt(std::string_view text, std::uint64_t salt) {
  std::array<char, 8> salt_bytes;
  for (int i = 0; i < 8; ++i) {
    salt_bytes[static_cast<std::size_t>(i)] =
        static_cast<char>((salt >> (8 * i)) & 0xff);
  }
  std::string salted(salt_bytes.begin(), salt_bytes.end());
  salted.append(text);
  return util::fnv1a64(std::span<const char>{salted.data(), salted.size()});
}

}  // namespace

std::string Pseudonymizer::pseudonym(std::string_view streamer_id) const {
  const std::uint64_t hash = hash_with_salt(streamer_id, salt_);
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "u%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

ConsistentHashRing::ConsistentHashRing(int virtual_nodes)
    : virtual_nodes_(std::max(1, virtual_nodes)) {}

void ConsistentHashRing::add_node(const std::string& node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) return;
  nodes_.push_back(node);
  for (int v = 0; v < virtual_nodes_; ++v) {
    const std::string vnode = node + "#" + std::to_string(v);
    ring_[hash_with_salt(vnode, 0)] = node;
  }
}

void ConsistentHashRing::remove_node(const std::string& node) {
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string ConsistentHashRing::node_for(std::string_view key) const {
  if (ring_.empty()) return {};
  const std::uint64_t h = hash_with_salt(key, 0);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace tero::store
