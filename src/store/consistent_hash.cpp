#include "store/consistent_hash.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>

#include "util/rng.hpp"

namespace tero::store {
namespace {

std::uint64_t hash_with_salt(std::string_view text, std::uint64_t salt) {
  std::array<char, 8> salt_bytes;
  for (int i = 0; i < 8; ++i) {
    salt_bytes[static_cast<std::size_t>(i)] =
        static_cast<char>((salt >> (8 * i)) & 0xff);
  }
  std::string salted(salt_bytes.begin(), salt_bytes.end());
  salted.append(text);
  return util::fnv1a64(std::span<const char>{salted.data(), salted.size()});
}

}  // namespace

std::string Pseudonymizer::pseudonym(std::string_view streamer_id) const {
  const std::uint64_t hash = hash_with_salt(streamer_id, salt_);
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "u%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

ConsistentHashRing::ConsistentHashRing(int virtual_nodes)
    : virtual_nodes_(std::max(1, virtual_nodes)) {}

void ConsistentHashRing::add_node(const std::string& node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) return;
  nodes_.push_back(node);
  for (int v = 0; v < virtual_nodes_; ++v) {
    const std::string vnode = node + "#" + std::to_string(v);
    ring_[hash_with_salt(vnode, 0)] = node;
  }
}

void ConsistentHashRing::remove_node(const std::string& node) {
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string ConsistentHashRing::node_for(std::string_view key) const {
  if (ring_.empty()) return {};
  const std::uint64_t h = hash_with_salt(key, 0);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::string> ConsistentHashRing::nodes_for(std::string_view key,
                                                       std::size_t n) const {
  std::vector<std::string> owners;
  if (ring_.empty() || n == 0) return owners;
  n = std::min(n, nodes_.size());
  owners.reserve(n);
  auto it = ring_.lower_bound(hash_with_salt(key, 0));
  if (it == ring_.end()) it = ring_.begin();
  while (owners.size() < n) {
    if (std::find(owners.begin(), owners.end(), it->second) == owners.end()) {
      owners.push_back(it->second);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return owners;
}

std::uint64_t ConsistentHashRing::key_hash(std::string_view key) {
  return hash_with_salt(key, 0);
}

double RemapDiff::moved_fraction() const noexcept {
  long double total = 0.0L;
  for (const RemapRange& range : ranges) {
    total += static_cast<long double>(range.end - range.begin) + 1.0L;
  }
  return static_cast<double>(total / 18446744073709551616.0L);  // 2^64
}

bool RemapDiff::moved_hash(std::uint64_t hash) const noexcept {
  // Ranges are sorted by begin and non-overlapping: find the last range
  // starting at or before `hash` and test its end.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), hash,
      [](std::uint64_t h, const RemapRange& r) { return h < r.begin; });
  if (it == ranges.begin()) return false;
  --it;
  return hash <= it->end;
}

bool RemapDiff::moved(std::string_view key) const noexcept {
  return moved_hash(ConsistentHashRing::key_hash(key));
}

RemapDiff ConsistentHashRing::remap_diff(const ConsistentHashRing& before,
                                         const ConsistentHashRing& after) {
  RemapDiff diff;
  if (before.ring_.empty() && after.ring_.empty()) return diff;
  const auto owner_at = [](const ConsistentHashRing& ring,
                           std::uint64_t h) -> const std::string& {
    static const std::string kNone;
    if (ring.ring_.empty()) return kNone;
    auto it = ring.ring_.lower_bound(h);
    if (it == ring.ring_.end()) it = ring.ring_.begin();
    return it->second;
  };

  // Ownership is constant on every arc (prev, cur] between consecutive
  // boundaries of the *union* of both rings' virtual nodes: neither ring
  // has a vnode strictly inside such an arc, so each ring's owner for the
  // whole arc is its owner at `cur`.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(before.ring_.size() + after.ring_.size());
  for (const auto& [h, node] : before.ring_) bounds.push_back(h);
  for (const auto& [h, node] : after.ring_) bounds.push_back(h);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (std::size_t j = 0; j < bounds.size(); ++j) {
    const std::uint64_t cur = bounds[j];
    const std::string& from = owner_at(before, cur);
    const std::string& to = owner_at(after, cur);
    if (from == to) continue;
    if (j > 0) {
      diff.ranges.push_back({bounds[j - 1] + 1, cur, from, to});
      continue;
    }
    // The first boundary's arc wraps: (last, 2^64) plus [0, cur]. With a
    // single boundary the arc is the whole space.
    if (bounds.size() == 1) {
      diff.ranges.push_back({0, std::numeric_limits<std::uint64_t>::max(),
                             from, to});
      continue;
    }
    diff.ranges.push_back({0, cur, from, to});
    if (bounds.back() < std::numeric_limits<std::uint64_t>::max()) {
      diff.ranges.push_back({bounds.back() + 1,
                             std::numeric_limits<std::uint64_t>::max(), from,
                             to});
    }
  }
  std::sort(diff.ranges.begin(), diff.ranges.end(),
            [](const RemapRange& a, const RemapRange& b) {
              return a.begin < b.begin;
            });
  return diff;
}

}  // namespace tero::store
