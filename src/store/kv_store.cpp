#include "store/kv_store.hpp"

#include "fault/fault.hpp"

namespace tero::store {

bool KvStore::write_faulted() {
  const fault::FaultDecision decision = fault_point_->hit();
  return decision.kind == fault::FaultKind::kError ||
         decision.kind == fault::FaultKind::kCrash;
}

bool KvStore::put(std::string key, std::string value) {
  if (fault_point_ != nullptr && write_faulted()) return false;
  values_[std::move(key)] = std::move(value);
  return true;
}

std::optional<std::string> KvStore::get(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::erase(std::string_view key) {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  values_.erase(it);
  return true;
}

bool KvStore::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::vector<std::string> KvStore::keys_with_prefix(
    std::string_view prefix) const {
  std::vector<std::string> keys;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

bool KvStore::push_back(const std::string& list_key, std::string value) {
  if (fault_point_ != nullptr && write_faulted()) return false;
  lists_[list_key].push_back(std::move(value));
  return true;
}

std::optional<std::string> KvStore::pop_front(const std::string& list_key) {
  const auto it = lists_.find(list_key);
  if (it == lists_.end() || it->second.empty()) return std::nullopt;
  std::string value = std::move(it->second.front());
  it->second.pop_front();
  return value;
}

std::size_t KvStore::list_size(const std::string& list_key) const {
  const auto it = lists_.find(list_key);
  return it == lists_.end() ? 0 : it->second.size();
}

std::vector<std::string> KvStore::pop_batch(const std::string& list_key,
                                            std::size_t batch) {
  std::vector<std::string> values;
  const auto it = lists_.find(list_key);
  if (it == lists_.end()) return values;
  while (values.size() < batch && !it->second.empty()) {
    values.push_back(std::move(it->second.front()));
    it->second.pop_front();
  }
  return values;
}

std::vector<std::string> KvStore::list_keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, values] : lists_) keys.push_back(key);
  return keys;
}

std::vector<std::string> KvStore::list_contents(
    const std::string& list_key) const {
  const auto it = lists_.find(list_key);
  if (it == lists_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace tero::store
