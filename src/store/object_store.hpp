#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tero::store {

/// S3-like blob store standing in for the Ceph object store (App. B) that
/// holds thumbnails and intermediate image-processing products. Objects live
/// in buckets and are deleted as soon as they are processed (§7: Tero keeps
/// no raw footage).
class ObjectStore {
 public:
  void put(std::string_view bucket, std::string_view key, std::string bytes);
  [[nodiscard]] std::optional<std::string> get(std::string_view bucket,
                                               std::string_view key) const;
  bool erase(std::string_view bucket, std::string_view key);
  [[nodiscard]] std::vector<std::string> list(std::string_view bucket) const;
  [[nodiscard]] std::size_t object_count() const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }

 private:
  // bucket -> key -> blob
  std::map<std::string, std::map<std::string, std::string, std::less<>>,
           std::less<>>
      buckets_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace tero::store
