#include "store/object_store.hpp"

namespace tero::store {

void ObjectStore::put(std::string_view bucket, std::string_view key,
                      std::string bytes) {
  auto& bucket_map = buckets_[std::string(bucket)];
  auto it = bucket_map.find(key);
  if (it != bucket_map.end()) {
    total_bytes_ -= it->second.size();
    it->second = std::move(bytes);
    total_bytes_ += it->second.size();
  } else {
    total_bytes_ += bytes.size();
    bucket_map.emplace(std::string(key), std::move(bytes));
  }
}

std::optional<std::string> ObjectStore::get(std::string_view bucket,
                                            std::string_view key) const {
  const auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) return std::nullopt;
  const auto it = bucket_it->second.find(key);
  if (it == bucket_it->second.end()) return std::nullopt;
  return it->second;
}

bool ObjectStore::erase(std::string_view bucket, std::string_view key) {
  const auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) return false;
  const auto it = bucket_it->second.find(key);
  if (it == bucket_it->second.end()) return false;
  total_bytes_ -= it->second.size();
  bucket_it->second.erase(it);
  return true;
}

std::vector<std::string> ObjectStore::list(std::string_view bucket) const {
  std::vector<std::string> keys;
  const auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) return keys;
  for (const auto& [key, blob] : bucket_it->second) keys.push_back(key);
  return keys;
}

std::size_t ObjectStore::object_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [bucket, objects] : buckets_) count += objects.size();
  return count;
}

}  // namespace tero::store
