#pragma once

#include <cstdint>
#include <vector>

#include "synth/world.hpp"

namespace tero::synth {

/// Behaviour and noise knobs for ground-truth session generation.
struct BehaviorConfig {
  int days = 14;
  double p_stream_per_day = 0.8;
  double session_hours_mean = 3.0;
  double session_hours_min = 0.75;
  /// A slice of streamers mislabel their game or draw custom UI elements
  /// (clocks, subscriber counters) where latency belongs — the
  /// image-processing module then reads junk numbers, producing the
  /// spike-heavy users the MaxSpikes filter exists to drop (§3.3.3).
  double p_mislabeled = 0.04;
  double mislabeled_junk_rate = 0.35;  ///< per-point junk probability

  /// A slice of the population streams rarely and briefly; these light
  /// users are the first discarded as StableLen grows (Fig. 15a).
  double p_casual = 0.25;
  double casual_day_factor = 0.15;   ///< multiplies p_stream_per_day
  double casual_hours_factor = 0.35; ///< multiplies session length
  double thumbnail_period_s = 300.0;   ///< 5 minutes (§2.1)
  double thumbnail_jitter_s = 60.0;    ///< up to a minute of variation

  // Individual latency spikes (congestion, server overload, ...).
  double spike_rate_per_hour = 0.35;
  double spike_magnitude_min_ms = 8.0;
  double spike_magnitude_alpha = 1.4;  ///< Pareto shape (heavy tail)
  double spike_duration_points_mean = 2.5;

  // Region-wide shared events (shared infrastructure problems, §3.3.2).
  double shared_events_per_region_day = 0.03;
  double shared_event_magnitude_ms = 35.0;
  double shared_event_duration_s = 1200.0;

  // User behaviour (Table 5 ground truth): hazards grow with experienced
  // spikes.
  /// Server-change hazard is per *point* (it compounds over the stream);
  /// game-change hazard is per stream end. The per-spike increments are
  /// sized so that game changes respond about an order of magnitude more
  /// strongly than server changes, as in Table 5 ("it is significantly
  /// easier to change games than servers").
  double p_server_change_base = 0.0008;      ///< per point
  double p_server_change_per_spike = 0.0025; ///< added per spike so far
  double p_game_change_base = 0.25;          ///< per stream end
  double p_game_change_per_spike = 0.08;     ///< added per spike in stream
  double p_alt_server_session = 0.03;       ///< session starts off-primary
  /// Fraction of streamers who habitually play on an alternate server
  /// (§1's UK-player-on-NA example); they produce the secondary latency
  /// clusters of Fig. 2.
  double p_alt_preference = 0.12;
  double p_alt_preference_strength = 0.85;  ///< their P[session off-primary]
};

/// One ground-truth displayed measurement.
struct TruePoint {
  double t = 0.0;
  int latency_ms = 0;       ///< the number on screen
  bool in_spike = false;
  double spike_magnitude_ms = 0.0;
  bool on_alt_server = false;
};

/// One ground-truth stream (one streamer, one game, one sitting).
struct TrueStream {
  std::size_t streamer_index = 0;
  std::string game;
  geo::Location location;  ///< where the streamer actually was
  std::vector<TruePoint> points;
  int server_changes = 0;             ///< mid-stream end-point changes
  int spikes_total = 0;               ///< spike events in this stream
  int spikes_before_first_change = 0;
  bool ended_with_game_change = false;
};

/// Generate all ground-truth streams for a world.
class SessionGenerator {
 public:
  SessionGenerator(const World& world, BehaviorConfig config,
                   std::uint64_t seed = 7);

  [[nodiscard]] std::vector<TrueStream> generate();

 private:
  const World* world_;
  BehaviorConfig config_;
  util::Rng rng_;
};

}  // namespace tero::synth
