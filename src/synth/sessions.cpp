#include "synth/sessions.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace tero::synth {
namespace {

constexpr double kSecondsPerDay = 86400.0;

std::string region_key(const geo::Location& location) {
  return location.region.empty() ? location.country
                                 : location.region + "/" + location.country;
}

struct SharedEvent {
  double start = 0.0;
  double end = 0.0;
  double magnitude_ms = 0.0;
};

struct SpikeWindow {
  double start = 0.0;
  double end = 0.0;
  double magnitude_ms = 0.0;
};

}  // namespace

SessionGenerator::SessionGenerator(const World& world, BehaviorConfig config,
                                   std::uint64_t seed)
    : world_(&world), config_(config), rng_(seed) {}

std::vector<TrueStream> SessionGenerator::generate() {
  const auto& catalog = geo::GameCatalog::builtin();
  const auto& gazetteer = geo::Gazetteer::world();
  const auto& model = world_->latency_model();
  std::vector<TrueStream> streams;

  // ---- Region-wide shared events (per {region, game}) -----------------------
  std::set<std::pair<std::string, std::string>> region_games;
  for (const auto& streamer : world_->streamers()) {
    region_games.emplace(region_key(streamer.home_location),
                         streamer.main_game);
  }
  std::map<std::pair<std::string, std::string>, std::vector<SharedEvent>>
      shared_events;
  for (const auto& rg : region_games) {
    auto& events = shared_events[rg];
    for (int day = 0; day < config_.days; ++day) {
      if (!rng_.bernoulli(config_.shared_events_per_region_day)) continue;
      SharedEvent event;
      event.start = day * kSecondsPerDay + rng_.uniform(0.0, kSecondsPerDay);
      event.end = event.start + config_.shared_event_duration_s;
      event.magnitude_ms =
          config_.shared_event_magnitude_ms * rng_.uniform(0.7, 1.4);
      events.push_back(event);
    }
  }

  // ---- Per-streamer sessions -------------------------------------------------
  const auto all_places = gazetteer.places();
  for (std::size_t index = 0; index < world_->streamers().size(); ++index) {
    const auto& streamer = world_->streamers()[index];
    geo::Location location = streamer.home_location;
    const geo::Place* place = streamer.home;

    // Relocation comes from the world's plan (the profile update and the
    // latency change must agree, §3.1.1).
    int move_day = -1;
    const geo::Place* move_target = nullptr;
    if (streamer.relocation.has_value()) {
      move_day = streamer.relocation->day;
      move_target = streamer.relocation->new_home;
    }
    // Mislabeled game / custom UI: the screen region Tero reads shows a
    // counter or clock, not latency.
    const bool mislabeled = rng_.bernoulli(config_.p_mislabeled);

    // Light users stream rarely and briefly.
    const bool casual = rng_.bernoulli(config_.p_casual);
    const double p_day = casual
                             ? config_.p_stream_per_day *
                                   config_.casual_day_factor
                             : config_.p_stream_per_day;
    const double hours_scale = casual ? config_.casual_hours_factor : 1.0;

    // Some streamers habitually join a different crowd's server.
    const bool prefers_alt = rng_.bernoulli(config_.p_alt_preference);
    const double p_session_alt =
        prefers_alt ? config_.p_alt_preference_strength
                    : config_.p_alt_server_session;
    // The alternate server is a stable choice per {streamer, game}: the
    // same friend group, hence the same crowd's server every time.
    std::map<std::string, const geo::GameServer*> alt_choice;

    std::string game = streamer.main_game;

    for (int day = 0; day < config_.days; ++day) {
      if (day == move_day && move_target != nullptr) {
        place = move_target;
        location = place->location();
      }
      if (!rng_.bernoulli(p_day)) continue;

      const geo::Game* game_info = catalog.find(game);
      if (game_info == nullptr || !game_info->servers_known()) continue;
      const geo::GameServer* primary =
          catalog.primary_server(*game_info, location);
      if (primary == nullptr) continue;
      // Alternate server: the crowd the streamer occasionally joins.
      const geo::GameServer* alt = alt_choice[game];
      if (alt == nullptr && game_info->servers.size() > 1) {
        do {
          alt = &game_info->servers[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(game_info->servers.size()) - 1))];
        } while (alt == primary);
        alt_choice[game] = alt;
      }

      const double session_start =
          day * kSecondsPerDay + rng_.uniform(8.0, 20.0) * 3600.0;
      const double hours =
          hours_scale *
          std::min(8.0, config_.session_hours_min +
                            rng_.exponential(1.0 / config_.session_hours_mean));
      const double session_end = session_start + hours * 3600.0;

      // Spike schedule for this session.
      std::vector<SpikeWindow> spikes;
      double t = session_start +
                 rng_.exponential(config_.spike_rate_per_hour / 3600.0);
      while (t < session_end) {
        SpikeWindow spike;
        spike.start = t;
        const double duration_points = std::max(
            1.0, rng_.exponential(1.0 / config_.spike_duration_points_mean));
        spike.end = t + duration_points * config_.thumbnail_period_s;
        spike.magnitude_ms =
            config_.spike_magnitude_min_ms *
            rng_.pareto(1.0, config_.spike_magnitude_alpha);
        spikes.push_back(spike);
        t = spike.end +
            rng_.exponential(config_.spike_rate_per_hour / 3600.0);
      }
      const auto& region_shared =
          shared_events[{region_key(location), game}];

      const RegionalPenalty penalty = regional_penalty(location);
      TrueStream stream;
      stream.streamer_index = index;
      stream.game = game;
      stream.location = location;

      bool on_alt = alt != nullptr && rng_.bernoulli(p_session_alt);
      int spikes_so_far = 0;
      std::set<const SpikeWindow*> seen_spikes;

      for (double pt = session_start + rng_.uniform(5.0, 30.0);
           pt < session_end;
           pt += config_.thumbnail_period_s +
                 rng_.uniform(0.0, config_.thumbnail_jitter_s)) {
        // Mid-stream server change: hazard grows with experienced spikes
        // (the behavioural ground truth Table 5's regression recovers).
        // Players parked on the alternate server drift back to their
        // primary much faster than they leave it.
        double hazard =
            std::min(0.05, config_.p_server_change_base +
                               config_.p_server_change_per_spike *
                                   spikes_so_far);
        if (on_alt && !prefers_alt) hazard = std::min(0.25, hazard * 6.0);
        if (alt != nullptr && rng_.bernoulli(hazard)) {
          on_alt = !on_alt;
          ++stream.server_changes;
          if (stream.server_changes == 1) {
            stream.spikes_before_first_change = spikes_so_far;
          }
        }

        const geo::GameServer* server = on_alt ? alt : primary;
        const double expected = model.rtt_to_server_ms(*server, location);

        double magnitude = 0.0;
        for (const auto& spike : spikes) {
          if (pt >= spike.start && pt <= spike.end) {
            magnitude += spike.magnitude_ms;
            if (seen_spikes.insert(&spike).second) ++spikes_so_far;
          }
        }
        for (const auto& event : region_shared) {
          if (pt >= event.start && pt <= event.end) {
            magnitude += event.magnitude_ms;
          }
        }

        TruePoint point;
        point.t = pt;
        point.on_alt_server = on_alt;
        point.in_spike = magnitude > 0.0;
        point.spike_magnitude_ms = magnitude;
        point.latency_ms =
            model.draw_measurement(expected, penalty,
                                   streamer.streamer_offset_ms, rng_) +
            static_cast<int>(magnitude + 0.5);
        if (mislabeled && rng_.bernoulli(config_.mislabeled_junk_rate)) {
          // The "latency" on screen is actually a counter/clock value.
          point.latency_ms = static_cast<int>(rng_.uniform_int(1, 999));
        }
        stream.points.push_back(point);
      }
      stream.spikes_total = spikes_so_far;
      if (stream.points.empty()) continue;

      // Game-change decision at stream end; hazard grows with spikes.
      const double game_change_p =
          std::min(0.9, config_.p_game_change_base +
                            config_.p_game_change_per_spike *
                                stream.spikes_total);
      stream.ended_with_game_change = rng_.bernoulli(game_change_p);
      if (stream.ended_with_game_change && world_->games().size() > 1) {
        std::string next;
        do {
          next = rng_.pick(world_->games());
        } while (next == game);
        game = next;
      }
      streams.push_back(std::move(stream));
    }
  }
  return streams;
}

}  // namespace tero::synth
