#pragma once

#include <string>

#include "geo/gazetteer.hpp"
#include "util/rng.hpp"

namespace tero::synth {

/// Username like "frostwolf842" — the shared-brand usernames §3.1 relies on.
[[nodiscard]] std::string random_username(util::Rng& rng);

/// A Twitch-style description that embeds the place ("Join us in Detroit!").
/// The phrasing may or may not name the region/country, which is exactly
/// what the conservative filter (App. D.1) keys on.
[[nodiscard]] std::string location_description(const geo::Place& place,
                                               util::Rng& rng);

/// A description with no location intent; a fraction contain "trap" words
/// that coincide with place names ("i love turkey sandwiches"), feeding the
/// geocoders' false positives (§4.2.1).
[[nodiscard]] std::string nonlocation_description(util::Rng& rng);

/// The paper's flagship confusing case: an informal demonym ("I live in
/// Denmarkian but have roots in ...") that substring-matchers mis-geocode.
[[nodiscard]] std::string misleading_description(const geo::Place& place,
                                                 util::Rng& rng);

/// A Twitter location-field value for the place: usually well-structured
/// ("Barcelona, Spain"), sometimes noisy ("Your heart, Chicago").
[[nodiscard]] std::string twitter_location_field(const geo::Place& place,
                                                 util::Rng& rng);

/// A short Twitter/Steam bio, optionally naming the place.
[[nodiscard]] std::string social_bio(const geo::Place* place, util::Rng& rng);

}  // namespace tero::synth
