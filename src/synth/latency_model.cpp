#include "synth/latency_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.hpp"

namespace tero::synth {
namespace {

struct PenaltyEntry {
  const char* name;
  RegionalPenalty penalty;
};

// Last-mile quality penalties, chosen so the reproduced Figs. 9-12 show the
// paper's qualitative surprises: locations at similar distances with very
// different latency. Regions first (more specific), then countries.
const std::map<std::string, RegionalPenalty, std::less<>>& region_penalties() {
  static const std::map<std::string, RegionalPenalty, std::less<>> table = {
      {"District of Columbia", {35.0, 6.0}},
      {"North Carolina", {25.0, 5.0}},
      {"Georgia", {18.0, 4.0}},   // the US state (ambiguity resolved upstream)
      {"Kentucky", {14.0, 3.0}},
      {"Pennsylvania", {12.0, 3.0}},
      {"Tennessee", {10.0, 3.0}},
      {"Virginia", {8.0, 2.0}},
      {"Minnesota", {6.0, 2.0}},
      {"Hawaii", {6.0, 3.0}},
      {"Oklahoma", {9.0, 3.0}},
      {"New Jersey", {7.0, 2.0}},
      {"Massachusetts", {5.0, 2.0}},
      {"Chiapas", {18.0, 5.0}},
      {"Tabasco", {14.0, 4.0}},
      {"Campeche", {12.0, 4.0}},
      {"Magdalena", {16.0, 5.0}},
      {"Bolivar", {13.0, 4.0}},
      {"Francisco Morazan", {20.0, 6.0}},
  };
  return table;
}

const std::map<std::string, RegionalPenalty, std::less<>>&
country_penalties() {
  static const std::map<std::string, RegionalPenalty, std::less<>> table = {
      {"Poland", {25.0, 5.0}},
      {"Italy", {12.0, 9.0}},  // wide 25th-75th gap across streamers (Fig 11b)
      {"Greece", {25.0, 6.0}},
      {"Turkey", {15.0, 5.0}},
      {"Saudi Arabia", {30.0, 8.0}},
      {"Bolivia", {55.0, 10.0}},
      {"Brazil", {10.0, 5.0}},
      {"Jamaica", {22.0, 6.0}},
      {"El Salvador", {15.0, 5.0}},
      {"Nicaragua", {25.0, 7.0}},
      {"Honduras", {20.0, 6.0}},
      {"Austria", {8.0, 3.0}},
      {"Denmark", {6.0, 2.0}},
      {"United Kingdom", {7.0, 3.0}},
      {"Germany", {7.0, 3.0}},
      {"France", {4.0, 1.5}},   // tight 25th-75th gap (Fig 11b)
      {"Switzerland", {2.0, 1.0}},
      {"Spain", {8.0, 3.0}},
      {"Mexico", {12.0, 4.0}},
      {"Colombia", {10.0, 4.0}},
      {"Ecuador", {12.0, 4.0}},
      {"Peru", {12.0, 4.0}},
      {"Argentina", {8.0, 3.0}},
      {"Chile", {5.0, 2.0}},
      {"South Korea", {1.0, 0.5}},
      {"Japan", {2.0, 1.0}},
      {"South Africa", {25.0, 8.0}},
      {"Egypt", {30.0, 8.0}},
      {"Nigeria", {40.0, 10.0}},
  };
  return table;
}

}  // namespace

RegionalPenalty regional_penalty(const geo::Location& location) {
  if (!location.region.empty()) {
    const auto it = region_penalties().find(location.region);
    if (it != region_penalties().end()) return it->second;
  }
  if (!location.country.empty()) {
    const auto it = country_penalties().find(location.country);
    if (it != country_penalties().end()) return it->second;
  }
  return {};
}

std::optional<double> LatencyModel::expected_rtt_ms(
    const geo::Game& game, const geo::Location& location) const {
  const auto& catalog = geo::GameCatalog::builtin();
  const double distance = catalog.distance_to_primary_km(game, location);
  if (distance < 0.0) return std::nullopt;
  return config_.base_ms + config_.ms_per_km * distance;
}

double LatencyModel::rtt_to_server_ms(const geo::GameServer& server,
                                      const geo::Location& location) const {
  const auto& gazetteer = geo::Gazetteer::world();
  const geo::Place* place = gazetteer.resolve(location);
  if (place == nullptr) return config_.base_ms;
  const double distance = geo::corrected_distance_km(
      place->center, place->mean_radius_km, server.center);
  return config_.base_ms + config_.ms_per_km * distance;
}

double LatencyModel::draw_streamer_offset(util::Rng& rng) const {
  return std::abs(rng.normal(0.0, config_.streamer_offset_sd));
}

int LatencyModel::draw_measurement(double expected_ms,
                                   const RegionalPenalty& penalty,
                                   double streamer_offset,
                                   util::Rng& rng) const {
  const double jitter_sd =
      std::hypot(config_.jitter_sd_ms, penalty.extra_jitter_ms);
  // Last-mile queueing is one-sided: fold the penalty jitter upward.
  const double value = expected_ms + penalty.extra_ms + streamer_offset +
                       std::abs(rng.normal(0.0, jitter_sd)) +
                       rng.normal(0.0, config_.jitter_sd_ms * 0.5);
  return std::max(1, static_cast<int>(value + 0.5));
}

}  // namespace tero::synth
