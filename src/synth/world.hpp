#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/gazetteer.hpp"
#include "geo/servers.hpp"
#include "social/platform.hpp"
#include "synth/latency_model.hpp"
#include "util/rng.hpp"

namespace tero::synth {

/// Knobs of the synthetic streamer population. Probability defaults are
/// chosen so the location module's extraction rates land in the paper's
/// ballpark (§3.1: 0.97% located from descriptions, ~2% via Twitter,
/// 7.57% country tags, 2.77% located overall).
struct WorldConfig {
  std::size_t num_streamers = 2000;
  std::uint64_t seed = 42;
  /// Games played (empty = all catalog games with known servers).
  std::vector<std::string> games;

  double p_description_location = 0.02;   ///< embeds location in description
  double p_description_misleading = 0.01; ///< informal demonyms etc.
  double p_country_tag = 0.0757;          ///< stable country tag (App. D.2)
  double p_twitter = 0.30;                ///< has a Twitter account
  double p_twitter_backlink = 0.85;       ///< ... with an explicit twitch link
  double p_twitter_location = 0.75;       ///< ... with a location field
  double p_steam = 0.12;
  double p_steam_backlink = 0.7;
  double p_false_location = 0.012;        ///< advertises somewhere they are not
  double p_username_collision = 0.02;     ///< same-name stranger on Twitter
  /// Fraction of colliding strangers that even link the streamer's channel
  /// (fan/impersonator accounts) — the source of wrong Twitch-Twitter
  /// mappings (Table 3: 1.6% mapping error).
  double p_collision_with_backlink = 0.15;

  /// Probability that a streamer permanently relocates partway through the
  /// observation window — and, being a streamer, advertises the new
  /// location (§3.1.1: every multi-location case the authors inspected was
  /// a real move).
  double p_move = 0.02;
  int move_day_min = 1;
  int move_day_max = 12;

  /// Non-empty: place `streamers_per_focus` streamers at each listed
  /// location instead of sampling homes globally (used by the regional
  /// figure benches).
  std::vector<geo::Location> focus_locations;
  std::size_t streamers_per_focus = 50;

  LatencyModelConfig latency;
};

/// A mid-dataset move (§3.1.1): from `day` onward the streamer lives at
/// `new_home` and their Twitter location field advertises it.
struct Relocation {
  int day = 0;
  const geo::Place* new_home = nullptr;
  geo::Location new_location;
  std::string new_twitter_location;  ///< the updated profile field
};

/// One synthetic streamer with full ground truth.
struct SyntheticStreamer {
  std::string id;  ///< Twitch username
  const geo::Place* home = nullptr;
  geo::Location home_location;
  std::string main_game;
  double streamer_offset_ms = 0.0;

  social::TwitchProfile twitch;
  /// What their public texts claim (may differ from home when lying).
  std::optional<geo::Location> advertised;
  bool advertised_truthfully = true;
  bool has_twitter = false;
  bool twitter_backlinked = false;
  bool has_steam = false;
  std::optional<Relocation> relocation;
};

/// The synthetic world: population, social directories, latency model.
class World {
 public:
  explicit World(WorldConfig config);

  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::span<const SyntheticStreamer> streamers() const noexcept {
    return streamers_;
  }
  [[nodiscard]] const social::SocialDirectory& twitter() const noexcept {
    return twitter_;
  }
  [[nodiscard]] const social::SocialDirectory& steam() const noexcept {
    return steam_;
  }
  [[nodiscard]] const LatencyModel& latency_model() const noexcept {
    return latency_model_;
  }
  [[nodiscard]] const std::vector<std::string>& games() const noexcept {
    return games_;
  }

 private:
  void build_population(util::Rng& rng);
  const geo::Place* draw_home(util::Rng& rng) const;

  WorldConfig config_;
  std::vector<std::string> games_;
  LatencyModel latency_model_;
  std::vector<SyntheticStreamer> streamers_;
  social::SocialDirectory twitter_;
  social::SocialDirectory steam_;
};

}  // namespace tero::synth
