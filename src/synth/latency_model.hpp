#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geo/gazetteer.hpp"
#include "geo/servers.hpp"
#include "util/rng.hpp"

namespace tero::synth {

/// The ground-truth latency generator. Base RTT grows with corrected
/// distance to the primary server (fiber propagation plus fixed protocol
/// overhead); on top of that sit regional last-mile penalties — the
/// "differences that cannot be justified by distance" the paper observes
/// (Poland vs Switzerland, DC vs Missouri, Bolivia vs Hawaii, ...) — a
/// per-streamer access offset, and per-measurement jitter.
struct LatencyModelConfig {
  double base_ms = 4.0;          ///< fixed client+server processing overhead
  double ms_per_km = 0.02;       ///< ~RTT over fiber incl. routing stretch
  double streamer_offset_sd = 3.0;
  double jitter_sd_ms = 2.0;
};

/// Extra last-mile latency (and jitter) attributed to a location, beyond
/// what distance explains.
struct RegionalPenalty {
  double extra_ms = 0.0;
  double extra_jitter_ms = 0.0;
};

/// Penalty for the most specific matching location (region first, then
/// country); defaults reproduce the paper's Fig. 9-12 surprises.
[[nodiscard]] RegionalPenalty regional_penalty(const geo::Location& location);

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig config = {})
      : config_(config) {}

  /// Expected RTT from `location` to its primary `game` server; nullopt if
  /// the game's servers are unknown for that area.
  [[nodiscard]] std::optional<double> expected_rtt_ms(
      const geo::Game& game, const geo::Location& location) const;

  /// Expected RTT to an explicit (possibly non-primary) server.
  [[nodiscard]] double rtt_to_server_ms(const geo::GameServer& server,
                                        const geo::Location& location) const;

  /// One streamer's constant offset (access technology, hardware).
  [[nodiscard]] double draw_streamer_offset(util::Rng& rng) const;

  /// One displayed measurement: expected + penalty jitter + noise, floored
  /// at 1 ms (games display integer milliseconds).
  [[nodiscard]] int draw_measurement(double expected_ms,
                                     const RegionalPenalty& penalty,
                                     double streamer_offset,
                                     util::Rng& rng) const;

  [[nodiscard]] const LatencyModelConfig& config() const noexcept {
    return config_;
  }

 private:
  LatencyModelConfig config_;
};

}  // namespace tero::synth
