#include "synth/text_gen.hpp"

#include <array>
#include <vector>

namespace tero::synth {
namespace {

const std::vector<std::string>& name_roots() {
  static const std::vector<std::string> roots = {
      "frost", "shadow", "pixel", "turbo", "night", "hyper", "cosmic",
      "lucky", "silent", "crimson", "neon", "ghost", "storm", "ember",
      "drift", "blaze", "wicked", "nova", "retro", "salty"};
  return roots;
}

const std::vector<std::string>& name_suffixes() {
  static const std::vector<std::string> suffixes = {
      "wolf", "fox", "gamer", "plays", "tv", "live", "king", "queen",
      "smith", "rider", "ninja", "mage", "pro", "main", "god", "cat"};
  return suffixes;
}

/// Name the place the way a human would in a sentence: cities often come
/// with their region or country, regions/countries stand alone.
std::string spoken_name(const geo::Place& place, util::Rng& rng) {
  switch (place.kind) {
    case geo::PlaceKind::kCity: {
      const double style = rng.uniform();
      if (style < 0.4) return place.name;
      if (style < 0.7 && !place.region.empty()) {
        return place.name + ", " + place.region;
      }
      return place.name + ", " + place.country;
    }
    case geo::PlaceKind::kRegion: {
      return rng.bernoulli(0.5) ? place.name
                                : place.name + ", " + place.country;
    }
    case geo::PlaceKind::kCountry:
      return place.name;
  }
  return place.name;
}

}  // namespace

std::string random_username(util::Rng& rng) {
  std::string name = rng.pick(name_roots()) + rng.pick(name_suffixes());
  if (rng.bernoulli(0.7)) {
    name += std::to_string(rng.uniform_int(0, 9999));
  }
  return name;
}

std::string location_description(const geo::Place& place, util::Rng& rng) {
  const std::string where = spoken_name(place, rng);
  static const std::array<const char*, 8> templates = {
      "Join us in %s!",
      "Streaming live from %s",
      "Gamer from %s, come say hi",
      "%s born and raised",
      "Based in %s. Variety games and chill",
      "Your favorite streamer from %s",
      "Playing ranked every night from %s",
      "Greetings from %s - drop a follow",
  };
  const char* tmpl = templates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(templates.size()) - 1))];
  std::string out;
  for (const char* p = tmpl; *p != '\0'; ++p) {
    if (p[0] == '%' && p[1] == 's') {
      out += where;
      ++p;
    } else {
      out += *p;
    }
  }
  return out;
}

std::string nonlocation_description(util::Rng& rng) {
  static const std::vector<std::string> neutral = {
      "Variety streamer. !discord for the community",
      "GM grind every single day. 18+ chat",
      "Just here to have fun and climb ranked",
      "Professional throw artist. Clips daily",
      "Road to Masters - wish me luck",
      "Playing whatever chat decides. Be kind",
      "Coffee, games, repeat",
      "Certified one-trick. AMA",
  };
  // Lowercase traps only fool substring/case-insensitive matchers;
  // capitalized traps fool every geocoder (the raw tools' 23-36% error
  // rates in Table 3 come from text like this).
  static const std::vector<std::string> lowercase_traps = {
      "i love turkey sandwiches more than wins",
      "georgia peach cobbler enjoyer",
      "paris hilton superfan and proud",
      "my cat is named chile because she is spicy",
      "jamaica me crazy with these queue times",
  };
  // City-name traps: every geocoder extracts them, but the conservative
  // filter rejects them (no country/region in the text) — the bulk of the
  // raw-tool error mass that "Tool++" eliminates in Table 3.
  static const std::vector<std::string> city_traps = {
      "Certified Paris Hilton stan account",
      "Barcelona FC supporter for life",
      "Toronto Raptors fan first, gamer second",
      "Dallas was the best TV show ever made",
      "Madrid vs anyone, we take all comers",
  };
  // Country/region-name traps: these *pass* the conservative filter too —
  // the small residual error that keeps Tool++ above 0% (2.4-3.6%).
  static const std::vector<std::string> country_traps = {
      "Turkey sandwich connoisseur and ranked warrior",
      "Georgia peach cobbler is the best dessert, fight me",
  };
  const double roll = rng.uniform();
  if (roll < 0.020) return rng.pick(city_traps);
  if (roll < 0.0225) return rng.pick(country_traps);
  if (roll < 0.045) return rng.pick(lowercase_traps);
  return rng.pick(neutral);
}

std::string misleading_description(const geo::Place& place, util::Rng& rng) {
  // Informal demonym: "Denmark" -> "Denmarkian".
  const std::string demonym = place.name + "ian";
  return rng.bernoulli(0.5)
             ? "I live in " + demonym + " but have roots elsewhere"
             : "proud " + demonym + " gamer at heart";
}

std::string twitter_location_field(const geo::Place& place, util::Rng& rng) {
  // A slice of fields is jokes/noise — some resolvable to the WRONG place
  // ("Paris of the South"), some to nothing ("Narnia"): the geoparsers' raw
  // error rates in Table 3 come from exactly this.
  static const std::vector<std::string> jokes = {
      "Gotham City",          "The Moon",
      "Narnia",               "Paris of the South",
      "somewhere between London and Tokyo",
      "Atlantis",             "Your mom's house",
  };
  const double style = rng.uniform();
  if (style < 0.10) return rng.pick(jokes);
  if (style < 0.60) return spoken_name(place, rng);
  if (style < 0.72) return place.name;
  if (style < 0.82 && place.kind == geo::PlaceKind::kCity) {
    return "Your heart, " + place.name;
  }
  if (style < 0.92) {
    const std::string country =
        place.kind == geo::PlaceKind::kCountry ? place.name : place.country;
    return "somewhere in " + country;
  }
  return spoken_name(place, rng) + " | she/they";
}

std::string social_bio(const geo::Place* place, util::Rng& rng) {
  std::string bio = rng.bernoulli(0.5)
                        ? "Streamer and content creator."
                        : "Gaming clips and hot takes.";
  if (place != nullptr && rng.bernoulli(0.4)) {
    bio += " Living in " + place->name + ".";
  }
  return bio;
}

}  // namespace tero::synth
