#pragma once

#include <string>

#include "image/image.hpp"
#include "ocr/game_ui.hpp"
#include "util/rng.hpp"

namespace tero::synth {

/// Why a rendered thumbnail's latency may be hard or impossible to read —
/// the paper's observed corruption modes (§3.2, §4.2.2, Fig. 6).
enum class Corruption {
  kNone,
  kOcclusion,    ///< a menu/pointer hides leading digit(s) -> digit drop
  kLowContrast,  ///< font colour too close to the background -> miss
  kClock,        ///< streamer replaced the latency with a clock (Fig. 6d)
  kHeavyNoise,   ///< encoder artefacts
  kCompression,  ///< low-bitrate encode: blur that merges/erodes glyphs, the
                 ///  paper's "75 dpi" degradation that breaks OCR (§3.2)
};

struct ThumbnailConfig {
  /// Probability that the thumbnail contains a visible latency measurement
  /// at all (the paper measures 34.97%; menus, loading screens and scene
  /// changes hide it the rest of the time).
  double p_latency_visible = 0.35;
  // Conditional corruption mix for thumbnails *with* a visible measurement.
  double p_occlusion = 0.015;
  double p_low_contrast = 0.15;
  double p_clock = 0.003;
  double p_heavy_noise = 0.05;
  double p_compression = 0.34;
  double base_noise_sd = 6.0;
  double heavy_noise_sd = 32.0;
  double compression_blur_min = 0.70;
  double compression_blur_max = 1.00;
};

/// Draw one corruption mode from the config's conditional mix.
[[nodiscard]] Corruption roll_corruption(const ThumbnailConfig& config,
                                         util::Rng& rng);

struct RenderedThumbnail {
  image::GrayImage image;
  Corruption corruption = Corruption::kNone;
  bool latency_visible = false;  ///< ground truth: a measurement is on screen
};

/// Rasterizes synthetic gaming footage: a busy "scene", the game's UI panel,
/// and the latency text per the game's GameUiSpec — then applies the
/// corruption mix. This is the stand-in for real Twitch thumbnails; the
/// image-processing module consumes it through the identical code path.
class ThumbnailRenderer {
 public:
  explicit ThumbnailRenderer(ThumbnailConfig config = {})
      : config_(config) {}

  [[nodiscard]] RenderedThumbnail render(const ocr::GameUiSpec& spec,
                                         int latency_ms,
                                         util::Rng& rng) const;

  /// Render with a forced corruption mode (tests / calibration).
  [[nodiscard]] RenderedThumbnail render_with(const ocr::GameUiSpec& spec,
                                              int latency_ms,
                                              Corruption corruption,
                                              util::Rng& rng) const;

  [[nodiscard]] const ThumbnailConfig& config() const noexcept {
    return config_;
  }

 private:
  ThumbnailConfig config_;
};

}  // namespace tero::synth
