#include "synth/thumbnail.hpp"

#include <algorithm>
#include <utility>

#include "image/draw.hpp"
#include "image/ops.hpp"

namespace tero::synth {
namespace {

/// A busy game scene: blocks of varying intensity, so OCR cannot rely on a
/// clean background outside the UI panel.
void draw_scene(image::GrayImage& img, util::Rng& rng) {
  img.fill(static_cast<std::uint8_t>(rng.uniform_int(30, 90)));
  const int blocks = static_cast<int>(rng.uniform_int(12, 28));
  for (int i = 0; i < blocks; ++i) {
    image::Rect rect;
    rect.x = static_cast<int>(rng.uniform_int(0, img.width() - 2));
    rect.y = static_cast<int>(rng.uniform_int(0, img.height() - 2));
    rect.w = static_cast<int>(rng.uniform_int(8, 90));
    rect.h = static_cast<int>(rng.uniform_int(8, 60));
    img.fill_rect(rect, static_cast<std::uint8_t>(rng.uniform_int(20, 200)));
  }
}

}  // namespace

Corruption roll_corruption(const ThumbnailConfig& config, util::Rng& rng) {
  double roll = rng.uniform();
  const std::pair<double, Corruption> mix[] = {
      {config.p_occlusion, Corruption::kOcclusion},
      {config.p_low_contrast, Corruption::kLowContrast},
      {config.p_clock, Corruption::kClock},
      {config.p_heavy_noise, Corruption::kHeavyNoise},
      {config.p_compression, Corruption::kCompression},
  };
  for (const auto& [probability, corruption] : mix) {
    if (roll < probability) return corruption;
    roll -= probability;
  }
  return Corruption::kNone;
}

RenderedThumbnail ThumbnailRenderer::render(const ocr::GameUiSpec& spec,
                                            int latency_ms,
                                            util::Rng& rng) const {
  if (!rng.bernoulli(config_.p_latency_visible)) {
    // No measurement on screen: scene only (menu, loading, cinematic).
    RenderedThumbnail out;
    out.image = image::GrayImage(ocr::kThumbnailWidth, ocr::kThumbnailHeight);
    draw_scene(out.image, rng);
    image::add_noise(out.image, config_.base_noise_sd, rng);
    out.latency_visible = false;
    return out;
  }
  return render_with(spec, latency_ms, roll_corruption(config_, rng), rng);
}

RenderedThumbnail ThumbnailRenderer::render_with(const ocr::GameUiSpec& spec,
                                                 int latency_ms,
                                                 Corruption corruption,
                                                 util::Rng& rng) const {
  RenderedThumbnail out;
  out.corruption = corruption;
  out.latency_visible = true;
  out.image = image::GrayImage(ocr::kThumbnailWidth, ocr::kThumbnailHeight);
  draw_scene(out.image, rng);

  // The game's UI panel.
  const auto& region = spec.latency_region;
  const std::uint8_t panel =
      static_cast<std::uint8_t>(rng.uniform_int(15, 40));
  out.image.fill_rect(region, panel);

  image::TextStyle style;
  style.scale = spec.text_scale;
  style.background = panel;
  style.foreground = corruption == Corruption::kLowContrast
                         ? static_cast<std::uint8_t>(panel +
                                                     rng.uniform_int(10, 40))
                         : static_cast<std::uint8_t>(rng.uniform_int(190, 255));

  std::string text = corruption == Corruption::kClock
                         ? std::to_string(rng.uniform_int(10, 23)) + ":" +
                               std::to_string(rng.uniform_int(10, 59))
                         : spec.prefix + std::to_string(latency_ms) +
                               spec.suffix;
  const int text_x = region.x + 2;
  const int text_y =
      region.y + (region.h - image::text_height(style)) / 2;
  image::draw_text(out.image, text_x, text_y, text, style);

  if (corruption == Corruption::kOcclusion) {
    // A drop-down menu / pointer covering the leading digit(s) (Fig. 6c):
    // the classic digit-drop error source.
    const int digits_x = text_x + image::text_width(spec.prefix, style) +
                         (spec.prefix.empty() ? 0 : style.scale);
    const int covered_digits = rng.bernoulli(0.8) ? 1 : 2;
    image::Rect occluder;
    occluder.x = digits_x - style.scale;
    occluder.y = region.y;
    occluder.w = covered_digits * 6 * style.scale + style.scale;
    occluder.h = region.h;
    out.image.fill_rect(occluder, panel);
  }

  if (corruption == Corruption::kCompression) {
    // Low-bitrate encode: the whole frame is softened, merging the tiny
    // latency glyphs — the degradation that makes out-of-the-box OCR fail.
    out.image = image::gaussian_blur(
        out.image, rng.uniform(config_.compression_blur_min,
                               config_.compression_blur_max));
  }
  const double noise_sd = corruption == Corruption::kHeavyNoise
                              ? config_.heavy_noise_sd
                              : config_.base_noise_sd;
  image::add_noise(out.image, noise_sd, rng);
  return out;
}

}  // namespace tero::synth
