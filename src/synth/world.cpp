#include "synth/world.hpp"

#include <algorithm>
#include <set>

#include "synth/text_gen.hpp"

namespace tero::synth {

World::World(WorldConfig config)
    : config_(std::move(config)), latency_model_(config_.latency) {
  if (config_.games.empty()) {
    for (const auto& game : geo::GameCatalog::builtin().games()) {
      if (game.servers_known()) games_.push_back(game.name);
    }
  } else {
    games_ = config_.games;
  }
  util::Rng rng(config_.seed);
  build_population(rng);
}

const geo::Place* World::draw_home(util::Rng& rng) const {
  const auto places = geo::Gazetteer::world().places();
  std::vector<double> weights;
  weights.reserve(places.size());
  for (const auto& place : places) weights.push_back(place.weight);
  return &places[rng.pick_weighted(weights)];
}

void World::build_population(util::Rng& rng) {
  // Work out home assignments first.
  std::vector<const geo::Place*> homes;
  if (config_.focus_locations.empty()) {
    homes.reserve(config_.num_streamers);
    for (std::size_t i = 0; i < config_.num_streamers; ++i) {
      homes.push_back(draw_home(rng));
    }
  } else {
    for (const auto& location : config_.focus_locations) {
      const geo::Place* place = geo::Gazetteer::world().resolve(location);
      if (place == nullptr) continue;
      for (std::size_t i = 0; i < config_.streamers_per_focus; ++i) {
        homes.push_back(place);
      }
    }
  }

  std::set<std::string> used_names;
  streamers_.reserve(homes.size());
  const auto all_places = geo::Gazetteer::world().places();

  for (const geo::Place* home : homes) {
    SyntheticStreamer streamer;
    do {
      streamer.id = random_username(rng);
    } while (!used_names.insert(streamer.id).second);
    streamer.home = home;
    streamer.home_location = home->location();
    streamer.main_game = rng.pick(games_);
    streamer.streamer_offset_ms = latency_model_.draw_streamer_offset(rng);

    // What the streamer publicly claims. A small fraction lies (§2.2
    // "Susceptibility to false descriptions").
    const geo::Place* claimed = home;
    streamer.advertised_truthfully = !rng.bernoulli(config_.p_false_location);
    if (!streamer.advertised_truthfully) {
      claimed = &all_places[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(all_places.size()) - 1))];
    }
    streamer.advertised = claimed->location();

    // Twitch profile.
    streamer.twitch.username = streamer.id;
    const double description_style = rng.uniform();
    if (description_style < config_.p_description_location) {
      streamer.twitch.description = location_description(*claimed, rng);
    } else if (description_style < config_.p_description_location +
                                       config_.p_description_misleading) {
      streamer.twitch.description = misleading_description(*claimed, rng);
    } else {
      streamer.twitch.description = nonlocation_description(rng);
    }
    if (rng.bernoulli(config_.p_country_tag)) {
      streamer.twitch.country_tag = claimed->kind == geo::PlaceKind::kCountry
                                        ? claimed->name
                                        : claimed->country;
    }

    // Twitter profile.
    if (rng.bernoulli(config_.p_twitter)) {
      streamer.has_twitter = true;
      social::SocialProfile profile;
      profile.username = streamer.id;
      if (rng.bernoulli(config_.p_twitter_location)) {
        profile.location_field = twitter_location_field(*claimed, rng);
      }
      profile.bio = social_bio(rng.bernoulli(0.3) ? claimed : nullptr, rng);
      if (rng.bernoulli(config_.p_twitter_backlink)) {
        streamer.twitter_backlinked = true;
        profile.links.push_back("https://twitch.tv/" + streamer.id);
      }
      twitter_.add(std::move(profile));
    } else if (rng.bernoulli(config_.p_username_collision)) {
      // A stranger with the same username and no backlink: the mapping
      // algorithm must not associate them (§3.1).
      const geo::Place* stranger_place =
          &all_places[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(all_places.size()) - 1))];
      social::SocialProfile stranger;
      stranger.username = streamer.id;
      stranger.location_field = twitter_location_field(*stranger_place, rng);
      stranger.bio = social_bio(stranger_place, rng);
      if (rng.bernoulli(config_.p_collision_with_backlink)) {
        // A fan or impersonator account that links the channel: the mapping
        // algorithm will wrongly associate it.
        stranger.links.push_back("https://twitch.tv/" + streamer.id);
      }
      twitter_.add(std::move(stranger));
    }

    // A permanent relocation partway through the data (§3.1.1). The new
    // location is advertised through an updated Twitter location field.
    if (streamer.has_twitter && rng.bernoulli(config_.p_move) &&
        config_.move_day_max > config_.move_day_min) {
      Relocation move;
      move.day = static_cast<int>(
          rng.uniform_int(config_.move_day_min, config_.move_day_max));
      move.new_home = &all_places[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(all_places.size()) - 1))];
      move.new_location = move.new_home->location();
      move.new_twitter_location =
          twitter_location_field(*move.new_home, rng);
      streamer.relocation = std::move(move);
    }

    // Steam profile (no location field; bio only).
    if (rng.bernoulli(config_.p_steam)) {
      streamer.has_steam = true;
      social::SocialProfile profile;
      profile.username = streamer.id;
      profile.bio = social_bio(rng.bernoulli(0.5) ? claimed : nullptr, rng);
      if (rng.bernoulli(config_.p_steam_backlink)) {
        profile.links.push_back("https://twitch.tv/" + streamer.id);
      }
      steam_.add(std::move(profile));
    }

    streamers_.push_back(std::move(streamer));
  }
}

}  // namespace tero::synth
