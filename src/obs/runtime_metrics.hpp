#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace tero::obs {

/// Export a ThreadPool's scheduling statistics into `registry` under
/// `prefix` (counters tero.pool.tasks_run, .steals, .failed_steals, .parks,
/// .parallel_for_calls, .parallel_for_failures; gauge .max_queue_depth).
/// ThreadPool::Stats counters accumulate since pool construction, so the
/// registry counters are bumped by the *delta* against the previous call
/// with the same registry+prefix — track the previous snapshot in `last`.
///
/// A failed parallel_for additionally records a labeled counter,
/// `<prefix>.parallel_for_failures{chunk=<index>}`, so the failing chunk of
/// the most recent error is visible in the export.
void record_pool_stats(const util::ThreadPool::Stats& stats,
                       MetricsRegistry& registry,
                       std::string_view prefix = "tero.pool",
                       util::ThreadPool::Stats* last = nullptr);

}  // namespace tero::obs
