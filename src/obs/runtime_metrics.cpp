#include "obs/runtime_metrics.hpp"

#include <algorithm>

namespace tero::obs {

void record_pool_stats(const util::ThreadPool::Stats& stats,
                       MetricsRegistry& registry, std::string_view prefix,
                       util::ThreadPool::Stats* last) {
  const util::ThreadPool::Stats base =
      last != nullptr ? *last : util::ThreadPool::Stats{};
  const std::string p(prefix);
  auto bump = [&](const char* name, std::uint64_t now, std::uint64_t before) {
    registry.counter(p + name).add(now >= before ? now - before : 0);
  };
  bump(".tasks_run", stats.tasks_run, base.tasks_run);
  bump(".steals", stats.steals, base.steals);
  bump(".failed_steals", stats.failed_steals, base.failed_steals);
  bump(".parks", stats.parks, base.parks);
  bump(".parallel_for_calls", stats.parallel_for_calls,
       base.parallel_for_calls);
  bump(".parallel_for_failures", stats.parallel_for_failures,
       base.parallel_for_failures);
  registry.gauge(p + ".max_queue_depth")
      .set(static_cast<double>(stats.max_queue_depth));
  if (stats.parallel_for_failures > base.parallel_for_failures &&
      stats.last_failed_chunk >= 0) {
    registry
        .counter(MetricsRegistry::labeled(
            p + ".parallel_for_failures",
            {{"chunk", std::to_string(stats.last_failed_chunk)}}))
        .add(1);
  }
  if (last != nullptr) *last = stats;
}

}  // namespace tero::obs
