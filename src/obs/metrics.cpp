#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace tero::obs {

namespace {

/// Below this, values share one underflow bucket (exactly reported as 0):
/// durations and latencies are positive, so this only catches zeros.
constexpr double kMinTrackable = 1e-9;

/// Shortest round-trippable representation of a double for the JSON sinks.
std::string fmt_json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Prefer a shorter form when it round-trips exactly.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.12g", value);
  if (std::strtod(shorter, nullptr) == value) return shorter;
  return buffer;
}

}  // namespace

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("QuantileSketch: alpha must be in (0, 1)");
  }
  log_gamma_ = std::log((1.0 + alpha) / (1.0 - alpha));
}

int QuantileSketch::bucket_index(double value) const {
  return static_cast<int>(std::ceil(std::log(value) / log_gamma_));
}

void QuantileSketch::add(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!(value > kMinTrackable)) {
    ++underflow_;
    return;
  }
  ++buckets_[bucket_index(value)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (&other == this) return;
  if (other.alpha_ != alpha_) {
    throw std::invalid_argument("QuantileSketch: merging different alphas");
  }
  // Copy the source under its own lock first, so two locks are never held
  // at once (no ordering issues) and self-locking is impossible.
  std::map<int, std::uint64_t> other_buckets;
  std::uint64_t other_underflow;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    other_buckets = other.buckets_;
    other_underflow = other.underflow_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  underflow_ += other_underflow;
  for (const auto& [index, count] : other_buckets) buckets_[index] += count;
}

std::vector<std::pair<int, std::uint64_t>> QuantileSketch::export_buckets()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {buckets_.begin(), buckets_.end()};
}

std::uint64_t QuantileSketch::underflow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return underflow_;
}

void QuantileSketch::restore(
    const std::vector<std::pair<int, std::uint64_t>>& buckets,
    std::uint64_t underflow) {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
  buckets_.insert(buckets.begin(), buckets.end());
  underflow_ = underflow;
}

std::uint64_t QuantileSketch::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = underflow_;
  for (const auto& [index, count] : buckets_) total += count;
  return total;
}

double QuantileSketch::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = underflow_;
  for (const auto& [index, count] : buckets_) total += count;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = underflow_;
  if (cumulative >= target) return 0.0;
  const double gamma = std::exp(log_gamma_);
  for (const auto& [index, count] : buckets_) {
    cumulative += count;
    if (cumulative >= target) {
      // Midpoint of (gamma^(i-1), gamma^i] — the estimate that bounds the
      // relative error by alpha.
      return 2.0 * std::pow(gamma, index) / (gamma + 1.0);
    }
  }
  return 2.0 * std::pow(gamma, buckets_.rbegin()->first) / (gamma + 1.0);
}

double QuantileSketch::quantile_of(
    double alpha, const std::vector<std::pair<int, std::uint64_t>>& buckets,
    std::uint64_t underflow, double q) {
  std::uint64_t total = underflow;
  for (const auto& [index, count] : buckets) total += count;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = underflow;
  if (cumulative >= target) return 0.0;
  // Same gamma derivation as the constructor, so results are bit-identical
  // to restore() + quantile() at the same alpha.
  const double gamma = std::exp(std::log((1.0 + alpha) / (1.0 - alpha)));
  for (const auto& [index, count] : buckets) {
    cumulative += count;
    if (cumulative >= target) {
      return 2.0 * std::pow(gamma, index) / (gamma + 1.0);
    }
  }
  return 2.0 * std::pow(gamma, buckets.back().first) / (gamma + 1.0);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::size_t Histogram::bucket_for(double value) const noexcept {
  // First bound >= value is the "le" bucket; past-the-end = overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(std::distance(bounds_.begin(), it));
}

void Histogram::observe(double value) {
  buckets_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  sketch_.add(value);
}

void Histogram::record(double value, std::uint64_t span_id) {
  observe(value);
  if (exemplars_ == nullptr) return;
  // Min-wise reservoir: the sample's rank is a pure function of
  // (seed, span_id, value), so whichever sample holds the minimum rank
  // wins the bucket regardless of arrival order or thread interleaving —
  // and it is still a uniform random pick among the bucket's samples.
  const std::uint64_t rank =
      util::Rng::indexed(
          exemplar_seed_,
          util::mix_seed(span_id, std::bit_cast<std::uint64_t>(value)))
          .next_u64();
  const std::size_t index = bucket_for(value);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  Exemplar& slot = exemplars_[index];
  if (rank < slot.rank ||
      (rank == slot.rank && span_id < slot.span_id)) {
    slot = Exemplar{value, span_id, rank};
  }
}

void Histogram::enable_exemplars(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplars_ != nullptr) return;
  exemplar_seed_ = seed;
  exemplars_ = std::make_unique<Exemplar[]>(bounds_.size() + 1);
}

std::vector<Exemplar> Histogram::exemplars() const {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplars_ == nullptr) return {};
  return {exemplars_.get(), exemplars_.get() + bounds_.size() + 1};
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

const std::vector<double>& default_duration_buckets_ms() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1, 0.25, 0.5,  1.0,    2.5,    5.0,    10.0,   25.0,
      50.0, 100, 250,  500,  1000,   2500,   5000,   10000,  30000};
  return kBuckets;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
    epoch_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    epoch_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? default_duration_buckets_ms() : std::move(bounds));
    epoch_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.get());
  }
  return out;  // std::map iterates name-sorted already
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::gauges()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

bool MetricsRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool removed = counters_.erase(name) + gauges_.erase(name) +
                           histograms_.erase(name) >
                       0;
  if (removed) epoch_.fetch_add(1, std::memory_order_release);
  return removed;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  epoch_.fetch_add(1, std::memory_order_release);
}

std::string MetricsRegistry::labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(name);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += '}';
  return out;
}

void MetricsRegistry::add_counter(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels,
    std::uint64_t n) {
  counter(labeled(name, labels)).add(n);
}

void MetricsRegistry::set_gauge(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels,
    double value) {
  gauge(labeled(name, labels)).set(value);
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << fmt_json_number(gauge->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
       << "\"count\": " << histogram->count()
       << ", \"sum\": " << fmt_json_number(histogram->sum())
       << ", \"mean\": " << fmt_json_number(histogram->mean())
       << ", \"quantiles\": {"
       << "\"p50\": " << fmt_json_number(histogram->quantile(0.50))
       << ", \"p90\": " << fmt_json_number(histogram->quantile(0.90))
       << ", \"p99\": " << fmt_json_number(histogram->quantile(0.99))
       << "}, \"buckets\": [";
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < bounds.size()) {
        os << fmt_json_number(bounds[i]);
      } else {
        os << "\"+Inf\"";
      }
      os << ", \"count\": " << counts[i] << '}';
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_table(std::ostream& os) const {
  util::Table table({"metric", "type", "value"});
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    table.add_row({name, "counter", std::to_string(counter->value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    table.add_row({name, "gauge", util::fmt_double(gauge->value(), 3)});
  }
  for (const auto& [name, histogram] : histograms_) {
    table.add_row(
        {name, "histogram",
         "count=" + std::to_string(histogram->count()) +
             " mean=" + util::fmt_double(histogram->mean(), 3) +
             " p50=" + util::fmt_double(histogram->quantile(0.50), 3) +
             " p90=" + util::fmt_double(histogram->quantile(0.90), 3) +
             " p99=" + util::fmt_double(histogram->quantile(0.99), 3)});
  }
  table.print(os);
}

}  // namespace tero::obs
