#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tero::obs {

class MetricsTimeline;

/// Declarative SLOs evaluated against a MetricsTimeline on the virtual
/// clock: each scrape produces a good/bad verdict per SLO, verdicts roll
/// into fast- and slow-window burn rates (burn = bad-fraction / budget, so
/// burn 1.0 means the error budget is being consumed exactly at the rate
/// that exhausts it over the window), and an alert fires when BOTH windows
/// burn at or above the threshold — the standard multi-window guard against
/// one-scrape blips. Because the inputs are virtual-time snapshots, the
/// full alert log is a pure function of (seed, spec set) and is
/// bit-identical at any thread count.

/// One parsed SLO spec. Text grammar (parse() / to_string() round-trip):
///
///   [slo] <name>: <stat>(<series>) < <threshold>[ms|s] over <N>s [window]
///         [,] budget <P>%
///
/// e.g. `slo latency: p99(tero.loadgen.latency_ms) < 5ms over 60s window,
/// budget 0.1%`. Stats: p50/p90/p99/mean (histogram, measured over the
/// scrape interval), rate (counter increase per second), value (gauge).
/// The threshold unit only scales the number (`s` = x1000, i.e. seconds
/// into the ms the histograms record); `>` flips the good direction.
struct SloSpec {
  enum class Stat { kP50, kP90, kP99, kMean, kRate, kValue };

  std::string name;
  Stat stat = Stat::kP99;
  std::string series;
  double threshold = 0.0;
  bool less_than = true;       ///< good when measured < threshold (else >)
  std::uint64_t window_ms = 60'000;  ///< slow burn window
  double budget = 0.001;       ///< allowed bad fraction of scrapes

  /// Parse the grammar above; throws std::invalid_argument with the
  /// offending fragment on any malformed spec.
  [[nodiscard]] static SloSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::string_view stat_name(Stat stat);
};

/// One alert-log event (fire or resolve), stamped on the virtual clock.
struct SloAlert {
  std::string slo;
  std::uint64_t t_ms = 0;
  bool firing = false;   ///< true = fired, false = resolved
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  double measured = 0.0;  ///< the stat's value at the triggering scrape
};

/// Point-in-time health of one SLO.
struct SloStatus {
  std::string slo;
  double measured = 0.0;       ///< stat at the last scrape
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  std::uint64_t good = 0;      ///< lifetime verdict totals
  std::uint64_t bad = 0;
  double budget_consumed = 0.0;  ///< lifetime bad fraction / budget
  bool firing = false;
};

class SloTracker {
 public:
  struct Config {
    std::uint64_t fast_window_ms = 5'000;
    /// Both windows must burn at >= this multiple of the sustainable rate
    /// for an alert to fire; both must drop below it to resolve.
    double burn_threshold = 1.0;
  };

  SloTracker();
  explicit SloTracker(Config config);

  void add(SloSpec spec);
  /// add(SloSpec::parse(text)); returns the parsed spec's name.
  std::string add(std::string_view spec_text);
  [[nodiscard]] std::size_t size() const noexcept { return slos_.size(); }

  /// Evaluate every SLO against the timeline's state at virtual time
  /// `t_ms`; appends to the alert log on fire/resolve edges. Call once per
  /// scrape (attach() wires this to the timeline's scrape hook).
  void evaluate(const MetricsTimeline& timeline, std::uint64_t t_ms);

  /// Register with `timeline.set_on_scrape` so every scrape evaluates the
  /// SLOs on the same virtual clock. The timeline must outlive *this.
  void attach(MetricsTimeline& timeline);

  [[nodiscard]] const std::vector<SloAlert>& alerts() const noexcept {
    return alerts_;
  }
  /// True when any alert for `slo_name` fired (optionally only at/after
  /// `since_ms`).
  [[nodiscard]] bool fired(std::string_view slo_name,
                           std::uint64_t since_ms = 0) const;
  [[nodiscard]] std::vector<SloStatus> status() const;

  /// {"slos": [spec+status...], "alerts": [events...]} — deterministic key
  /// order; the CI bit-identity diff covers this too.
  void write_json(std::ostream& os) const;
  /// Human-readable burn-rate summary through util::Table.
  void write_table(std::ostream& os) const;

 private:
  struct State {
    SloSpec spec;
    /// (t_ms, good) per evaluation, pruned to the slow window.
    std::deque<std::pair<std::uint64_t, bool>> verdicts;
    std::uint64_t good = 0, bad = 0;  ///< lifetime totals
    double measured = 0.0;
    double burn_fast = 0.0, burn_slow = 0.0;
    bool firing = false;
  };

  [[nodiscard]] double measure(const State& state,
                               const MetricsTimeline& timeline) const;
  [[nodiscard]] static double burn(const State& state, std::uint64_t t_ms,
                                   std::uint64_t window_ms);

  Config config_;
  std::vector<State> slos_;
  std::vector<SloAlert> alerts_;
};

}  // namespace tero::obs
