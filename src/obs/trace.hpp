#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace tero::obs {

/// Span-based tracing that emits the Chrome trace-event JSON array format —
/// load the file at https://ui.perfetto.dev (or chrome://tracing) to see the
/// pipeline stages and their nested per-task spans on a per-thread timeline.
///
/// Spans are recorded as complete ("ph": "X") events with microsecond
/// timestamps relative to the recorder's construction. Thread ids are mapped
/// to small stable integers in first-seen order, so traces from repeated
/// runs diff cleanly. Thread-safe; like the metrics registry, the recorder
/// is observational only and never consulted by the pipeline.
///
/// Spans carry ids (`args.span_id` in the JSON, printed as 0x hex) so
/// histogram exemplars can point back at the exact span that produced a
/// bucket's sampled value; exemplar instants re-emit the link from the
/// metric side (`add_exemplar_instant`).
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since the recorder was constructed.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Fresh nonzero span id (monotonic; 0 is reserved for "no span").
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Record one complete span on the calling thread's track.
  void add_span(std::string_view name, std::string_view category,
                std::uint64_t start_us, std::uint64_t duration_us);
  /// Same, tagged with an explicit span id (0 = untagged).
  void add_span(std::string_view name, std::string_view category,
                std::uint64_t start_us, std::uint64_t duration_us,
                std::uint64_t span_id);

  /// Instantaneous event ("ph": "i") — crash markers, alerts.
  void add_instant(std::string_view name, std::string_view category);

  /// Instant linking a histogram exemplar back to its span: carries
  /// args.span_id and args.value so the trace viewer shows which span
  /// produced the sampled (e.g. p99-bucket) value.
  void add_exemplar_instant(std::string_view name, std::uint64_t span_id,
                            double value);

  [[nodiscard]] std::size_t span_count() const;

  /// JSON array of trace events (the format Perfetto auto-detects).
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase;  ///< 'X' complete, 'i' instant
    std::uint64_t start_us;
    std::uint64_t duration_us;
    int tid;
    std::uint64_t span_id = 0;  ///< 0 = untagged
    double value = 0.0;         ///< exemplar value (valid iff has_value)
    bool has_value = false;
  };

  int tid_for_current_thread();  ///< callers must hold mutex_

  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> next_span_id_{1};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> thread_ids_;
};

/// Hex rendering used everywhere a span id faces a human: "0x1a2b".
[[nodiscard]] std::string format_span_id(std::uint64_t span_id);

/// RAII span: records [construction, destruction) into the recorder. A null
/// recorder makes both ends a single branch — the hot-path off switch.
/// Movable: the moved-from span is disarmed so each started span records
/// exactly once.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string_view name,
             std::string_view category = "pipeline")
      : ScopedSpan(recorder, name, category,
                   recorder != nullptr ? recorder->next_span_id() : 0) {}

  /// Span with a caller-chosen id — lets request paths reuse an externally
  /// assigned id (e.g. a query's trace_id) so exemplars and spans agree.
  ScopedSpan(TraceRecorder* recorder, std::string_view name,
             std::string_view category, std::uint64_t span_id)
      : recorder_(recorder), span_id_(span_id) {
    if (recorder_ == nullptr) return;
    name_ = name;  // copied: the span may outlive a temporary name
    category_ = category;
    start_us_ = recorder_->now_us();
  }
  ~ScopedSpan() { finish(); }

  ScopedSpan(ScopedSpan&& other) noexcept
      : recorder_(other.recorder_),
        name_(std::move(other.name_)),
        category_(std::move(other.category_)),
        start_us_(other.start_us_),
        span_id_(other.span_id_) {
    other.recorder_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      finish();  // close out our own span before adopting the other
      recorder_ = other.recorder_;
      name_ = std::move(other.name_);
      category_ = std::move(other.category_);
      start_us_ = other.start_us_;
      span_id_ = other.span_id_;
      other.recorder_ = nullptr;
    }
    return *this;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id (0 when tracing is off or the span was moved from).
  [[nodiscard]] std::uint64_t span_id() const noexcept {
    return recorder_ != nullptr ? span_id_ : 0;
  }

 private:
  void finish() noexcept {
    if (recorder_ == nullptr) return;
    recorder_->add_span(name_, category_, start_us_,
                        recorder_->now_us() - start_us_, span_id_);
    recorder_ = nullptr;
  }

  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  std::uint64_t start_us_ = 0;
  std::uint64_t span_id_ = 0;
};

}  // namespace tero::obs
