#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace tero::obs {

/// Span-based tracing that emits the Chrome trace-event JSON array format —
/// load the file at https://ui.perfetto.dev (or chrome://tracing) to see the
/// pipeline stages and their nested per-task spans on a per-thread timeline.
///
/// Spans are recorded as complete ("ph": "X") events with microsecond
/// timestamps relative to the recorder's construction. Thread ids are mapped
/// to small stable integers in first-seen order, so traces from repeated
/// runs diff cleanly. Thread-safe; like the metrics registry, the recorder
/// is observational only and never consulted by the pipeline.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since the recorder was constructed.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Record one complete span on the calling thread's track.
  void add_span(std::string_view name, std::string_view category,
                std::uint64_t start_us, std::uint64_t duration_us);

  /// Instantaneous event ("ph": "i") — crash markers, alerts.
  void add_instant(std::string_view name, std::string_view category);

  [[nodiscard]] std::size_t span_count() const;

  /// JSON array of trace events (the format Perfetto auto-detects).
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase;  ///< 'X' complete, 'i' instant
    std::uint64_t start_us;
    std::uint64_t duration_us;
    int tid;
  };

  int tid_for_current_thread();  ///< callers must hold mutex_

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> thread_ids_;
};

/// RAII span: records [construction, destruction) into the recorder. A null
/// recorder makes both ends a single branch — the hot-path off switch.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string_view name,
             std::string_view category = "pipeline")
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    name_ = name;  // copied: the span may outlive a temporary name
    category_ = category;
    start_us_ = recorder_->now_us();
  }
  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    recorder_->add_span(name_, category_, start_us_,
                        recorder_->now_us() - start_us_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  std::uint64_t start_us_ = 0;
};

}  // namespace tero::obs
