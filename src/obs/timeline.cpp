#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"

namespace tero::obs {

namespace {

std::string fmt_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.12g", value);
  if (std::strtod(shorter, nullptr) == value) return shorter;
  return buffer;
}

}  // namespace

MetricsTimeline::MetricsTimeline(const MetricsRegistry& registry,
                                 TimelineConfig config)
    : registry_(&registry), config_(std::move(config)) {
  if (config_.scrape_every_ms == 0) {
    throw std::invalid_argument("MetricsTimeline: scrape_every_ms must be >0");
  }
  if (config_.capacity < 2) {
    throw std::invalid_argument("MetricsTimeline: capacity must be >= 2");
  }
  interval_ms_ = config_.scrape_every_ms;
  next_scrape_ms_ = interval_ms_;
}

bool MetricsTimeline::included(std::string_view name) const {
  if (config_.prefixes.empty()) return true;
  for (const auto& prefix : config_.prefixes) {
    if (name.substr(0, prefix.size()) == prefix) return true;
  }
  return false;
}

void MetricsTimeline::advance_slow(std::uint64_t virtual_ms) {
  while (virtual_ms >= next_scrape_ms_) {
    scrape(next_scrape_ms_);
    next_scrape_ms_ += interval_ms_;
  }
}

void MetricsTimeline::refresh_series_cache(std::uint64_t epoch) {
  cached_counters_.clear();
  cached_gauges_.clear();
  cached_hists_.clear();
  // Registry iteration is name-sorted, so series interning (and therefore
  // every snapshot's layout) is identical across same-seed runs.
  for (const auto& [name, counter] : registry_->counters()) {
    if (!included(name)) continue;
    const auto [it, inserted] =
        counter_ids_.try_emplace(name, counter_ids_.size());
    if (inserted) counter_last_total_.push_back(0);
    cached_counters_.emplace_back(it->second, counter);
  }
  for (const auto& [name, gauge] : registry_->gauges()) {
    if (!included(name)) continue;
    const std::size_t id =
        gauge_ids_.try_emplace(name, gauge_ids_.size()).first->second;
    cached_gauges_.emplace_back(id, gauge);
  }
  for (const auto& [name, histogram] : registry_->histograms()) {
    if (!included(name)) continue;
    const auto [it, inserted] = hist_ids_.try_emplace(name, hist_ids_.size());
    if (inserted) {
      hist_meta_.push_back(
          HistMeta{histogram->sketch().alpha(), histogram->bounds()});
    }
    cached_hists_.emplace_back(it->second, histogram);
  }
  cache_epoch_ = epoch;
  cache_valid_ = true;
}

void MetricsTimeline::scrape(std::uint64_t virtual_ms) {
  const std::uint64_t epoch = registry_->mutation_epoch();
  if (!cache_valid_ || cache_epoch_ != epoch) refresh_series_cache(epoch);

  Snapshot snap;
  snap.t_ms = virtual_ms;
  if (!cached_counters_.empty()) {
    snap.counter_deltas.resize(counter_ids_.size(), 0);
  }
  if (!cached_gauges_.empty()) snap.gauges.resize(gauge_ids_.size(), 0.0);
  if (!cached_hists_.empty()) snap.hists.resize(hist_ids_.size());

  for (const auto& [id, counter] : cached_counters_) {
    const std::uint64_t total = counter->value();
    snap.counter_deltas[id] = total - counter_last_total_[id];
    counter_last_total_[id] = total;
  }
  for (const auto& [id, gauge] : cached_gauges_) {
    snap.gauges[id] = gauge->value();
  }
  for (const auto& [id, histogram] : cached_hists_) {
    HistPoint& point = snap.hists[id];
    point.count = histogram->count();
    point.sum = histogram->sum();
    point.bucket_counts = histogram->bucket_counts();
    point.sketch.buckets = histogram->sketch().export_buckets();
    point.sketch.underflow = histogram->sketch().underflow();
  }

  snapshots_.push_back(std::move(snap));
  if (snapshots_.size() > config_.capacity) downsample();
  if (on_scrape_) on_scrape_(virtual_ms);
}

void MetricsTimeline::flush(std::uint64_t virtual_ms) {
  advance_to(virtual_ms);
  if (snapshots_.empty() || snapshots_.back().t_ms < virtual_ms) {
    scrape(virtual_ms);
    next_scrape_ms_ = virtual_ms + interval_ms_;
  }
}

void MetricsTimeline::downsample() {
  // Merge adjacent pairs: counter deltas add, the later point's gauge and
  // histogram state survives (they are last-value / cumulative), the later
  // timestamp stands. Nothing is dropped, so prefix sums stay exact totals.
  std::vector<Snapshot> merged;
  merged.reserve(snapshots_.size() / 2 + 1);
  std::size_t i = 0;
  for (; i + 1 < snapshots_.size(); i += 2) {
    Snapshot& a = snapshots_[i];
    Snapshot& b = snapshots_[i + 1];
    if (b.counter_deltas.size() < a.counter_deltas.size()) {
      b.counter_deltas.resize(a.counter_deltas.size(), 0);
    }
    for (std::size_t c = 0; c < a.counter_deltas.size(); ++c) {
      b.counter_deltas[c] += a.counter_deltas[c];
    }
    merged.push_back(std::move(b));
  }
  if (i < snapshots_.size()) merged.push_back(std::move(snapshots_[i]));
  snapshots_ = std::move(merged);
  interval_ms_ *= 2;
}

std::vector<std::uint64_t> MetricsTimeline::snapshot_times() const {
  std::vector<std::uint64_t> times;
  times.reserve(snapshots_.size());
  for (const auto& snap : snapshots_) times.push_back(snap.t_ms);
  return times;
}

std::size_t MetricsTimeline::window_begin(std::uint64_t window_ms) const {
  const std::uint64_t last = snapshots_.back().t_ms;
  const std::uint64_t cutoff = last >= window_ms ? last - window_ms : 0;
  std::size_t begin = snapshots_.size();
  while (begin > 0 && snapshots_[begin - 1].t_ms > cutoff) --begin;
  return begin;
}

double MetricsTimeline::increase(std::string_view counter_name,
                                 std::uint64_t window_ms) const {
  const auto it = counter_ids_.find(counter_name);
  if (it == counter_ids_.end() || snapshots_.empty()) return 0.0;
  const std::size_t id = it->second;
  std::uint64_t total = 0;
  for (std::size_t i = window_begin(window_ms); i < snapshots_.size(); ++i) {
    if (id < snapshots_[i].counter_deltas.size()) {
      total += snapshots_[i].counter_deltas[id];
    }
  }
  return static_cast<double>(total);
}

double MetricsTimeline::rate(std::string_view counter_name,
                             std::uint64_t window_ms) const {
  if (snapshots_.empty()) return 0.0;
  const std::size_t begin = window_begin(window_ms);
  const std::uint64_t base_t = begin > 0 ? snapshots_[begin - 1].t_ms : 0;
  const std::uint64_t elapsed_ms = snapshots_.back().t_ms - base_t;
  if (elapsed_ms == 0) return 0.0;
  return increase(counter_name, window_ms) * 1000.0 /
         static_cast<double>(elapsed_ms);
}

double MetricsTimeline::gauge_value(std::string_view name) const {
  const auto it = gauge_ids_.find(name);
  if (it == gauge_ids_.end() || snapshots_.empty()) return 0.0;
  const auto& gauges = snapshots_.back().gauges;
  return it->second < gauges.size() ? gauges[it->second] : 0.0;
}

std::uint64_t MetricsTimeline::counter_total(std::string_view name) const {
  const auto it = counter_ids_.find(name);
  return it == counter_ids_.end() ? 0 : counter_last_total_[it->second];
}

const MetricsTimeline::HistPoint* MetricsTimeline::hist_point(
    const Snapshot& snap, std::size_t sid) const {
  return sid < snap.hists.size() ? &snap.hists[sid] : nullptr;
}

double MetricsTimeline::quantile(std::string_view histogram_name, double q,
                                 std::uint64_t window_ms) const {
  const auto it = hist_ids_.find(histogram_name);
  if (it == hist_ids_.end() || snapshots_.empty()) return 0.0;
  const std::size_t id = it->second;
  const HistPoint* last = hist_point(snapshots_.back(), id);
  if (last == nullptr) return 0.0;
  const std::size_t begin = window_begin(window_ms);
  const HistPoint* base =
      begin > 0 ? hist_point(snapshots_[begin - 1], id) : nullptr;

  // Windowed sketch = cumulative(last) - cumulative(baseline), bucket-wise.
  // Both exports are ascending by bucket index and the baseline's buckets
  // are a subset of the later snapshot's (counts only grow), so the
  // subtraction is one sorted merge — no scratch map, no scratch sketch.
  std::uint64_t underflow = last->sketch.underflow;
  std::vector<std::pair<int, std::uint64_t>> diff;
  const auto* window = &last->sketch.buckets;
  if (base != nullptr) {
    const auto& cur = last->sketch.buckets;
    const auto& old = base->sketch.buckets;
    diff.reserve(cur.size());
    std::size_t oi = 0;
    for (const auto& [index, count] : cur) {
      std::uint64_t subtract = 0;
      if (oi < old.size() && old[oi].first == index) {
        subtract = old[oi].second;
        ++oi;
      }
      if (count > subtract) diff.emplace_back(index, count - subtract);
    }
    underflow -= base->sketch.underflow;
    window = &diff;
  }
  if (window->empty() && underflow == 0) return 0.0;
  return QuantileSketch::quantile_of(hist_meta_[id].alpha, *window, underflow,
                                     q);
}

double MetricsTimeline::windowed_mean(std::string_view histogram_name,
                                      std::uint64_t window_ms) const {
  const auto it = hist_ids_.find(histogram_name);
  if (it == hist_ids_.end() || snapshots_.empty()) return 0.0;
  const HistPoint* last = hist_point(snapshots_.back(), it->second);
  if (last == nullptr) return 0.0;
  const std::size_t begin = window_begin(window_ms);
  const HistPoint* base =
      begin > 0 ? hist_point(snapshots_[begin - 1], it->second) : nullptr;
  const std::uint64_t count = last->count - (base != nullptr ? base->count : 0);
  if (count == 0) return 0.0;
  const double sum = last->sum - (base != nullptr ? base->sum : 0.0);
  return sum / static_cast<double>(count);
}

std::uint64_t MetricsTimeline::windowed_count(std::string_view histogram_name,
                                              std::uint64_t window_ms) const {
  const auto it = hist_ids_.find(histogram_name);
  if (it == hist_ids_.end() || snapshots_.empty()) return 0;
  const HistPoint* last = hist_point(snapshots_.back(), it->second);
  if (last == nullptr) return 0;
  const std::size_t begin = window_begin(window_ms);
  const HistPoint* base =
      begin > 0 ? hist_point(snapshots_[begin - 1], it->second) : nullptr;
  return last->count - (base != nullptr ? base->count : 0);
}

bool MetricsTimeline::has_series(std::string_view name) const {
  return counter_ids_.find(name) != counter_ids_.end() ||
         gauge_ids_.find(name) != gauge_ids_.end() ||
         hist_ids_.find(name) != hist_ids_.end();
}

void MetricsTimeline::write_json(std::ostream& os) const {
  os << "{\n  \"scrape_interval_ms\": " << interval_ms_
     << ",\n  \"snapshot_count\": " << snapshots_.size()
     << ",\n  \"snapshots\": [";
  // Running totals recovered from the delta encoding as we stream.
  std::vector<std::uint64_t> totals(counter_ids_.size(), 0);
  bool first_snap = true;
  for (const auto& snap : snapshots_) {
    os << (first_snap ? "\n" : ",\n") << "    {\"t_ms\": " << snap.t_ms
       << ", \"counters\": {";
    bool first = true;
    for (const auto& [name, id] : counter_ids_) {
      if (id >= snap.counter_deltas.size()) continue;
      totals[id] += snap.counter_deltas[id];
      os << (first ? "" : ", ") << '"' << json_escape(name)
         << "\": {\"delta\": " << snap.counter_deltas[id]
         << ", \"total\": " << totals[id] << '}';
      first = false;
    }
    os << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, id] : gauge_ids_) {
      if (id >= snap.gauges.size()) continue;
      os << (first ? "" : ", ") << '"' << json_escape(name)
         << "\": " << fmt_number(snap.gauges[id]);
      first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto& [name, id] : hist_ids_) {
      const HistPoint* point = hist_point(snap, id);
      if (point == nullptr) continue;
      os << (first ? "" : ", ") << '"' << json_escape(name)
         << "\": {\"count\": " << point->count
         << ", \"sum\": " << fmt_number(point->sum) << ", \"buckets\": [";
      for (std::size_t i = 0; i < point->bucket_counts.size(); ++i) {
        os << (i > 0 ? ", " : "") << point->bucket_counts[i];
      }
      os << "], \"sketch\": [";
      for (std::size_t i = 0; i < point->sketch.buckets.size(); ++i) {
        os << (i > 0 ? ", " : "") << '[' << point->sketch.buckets[i].first
           << ", " << point->sketch.buckets[i].second << ']';
      }
      os << "], \"underflow\": " << point->sketch.underflow << '}';
      first = false;
    }
    os << "}}";
    first_snap = false;
  }
  os << (first_snap ? "]" : "\n  ]") << "\n}\n";
}

void MetricsTimeline::write_prom(std::ostream& os) const {
  for (const auto& [series, id] : counter_ids_) {
    const ParsedSeriesName parsed = split_labeled_name(series);
    const std::string base = prom_name(parsed.name);
    const std::string labels = prom_label_block(parsed.labels);
    os << "# TYPE " << base << " counter\n";
    std::uint64_t total = 0;
    for (const auto& snap : snapshots_) {
      if (id >= snap.counter_deltas.size()) continue;
      total += snap.counter_deltas[id];
      os << base << labels << ' ' << total << ' ' << snap.t_ms << '\n';
    }
  }
  for (const auto& [series, id] : gauge_ids_) {
    const ParsedSeriesName parsed = split_labeled_name(series);
    const std::string base = prom_name(parsed.name);
    const std::string labels = prom_label_block(parsed.labels);
    os << "# TYPE " << base << " gauge\n";
    for (const auto& snap : snapshots_) {
      if (id >= snap.gauges.size()) continue;
      os << base << labels << ' ' << fmt_number(snap.gauges[id]) << ' '
         << snap.t_ms << '\n';
    }
  }
  for (const auto& [series, id] : hist_ids_) {
    const ParsedSeriesName parsed = split_labeled_name(series);
    const std::string base = prom_name(parsed.name);
    const std::string labels = prom_label_block(parsed.labels);
    const auto& bounds = hist_meta_[id].bounds;
    os << "# TYPE " << base << " histogram\n";
    for (const auto& snap : snapshots_) {
      const HistPoint* point = hist_point(snap, id);
      if (point == nullptr) continue;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < point->bucket_counts.size(); ++i) {
        cumulative += point->bucket_counts[i];
        auto bucket_labels = parsed.labels;
        bucket_labels.emplace_back(
            "le", i < bounds.size() ? fmt_number(bounds[i]) : "+Inf");
        os << base << "_bucket" << prom_label_block(bucket_labels) << ' '
           << cumulative << ' ' << snap.t_ms << '\n';
      }
      os << base << "_sum" << labels << ' ' << fmt_number(point->sum) << ' '
         << snap.t_ms << '\n';
      os << base << "_count" << labels << ' ' << point->count << ' '
         << snap.t_ms << '\n';
    }
  }
}

}  // namespace tero::obs
