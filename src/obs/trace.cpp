#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>

#include "obs/json.hpp"

namespace tero::obs {

std::string format_span_id(std::uint64_t span_id) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(span_id));
  return buffer;
}

TraceRecorder::TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceRecorder::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

int TraceRecorder::tid_for_current_thread() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const int tid = static_cast<int>(thread_ids_.size());
  thread_ids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::add_span(std::string_view name, std::string_view category,
                             std::uint64_t start_us,
                             std::uint64_t duration_us) {
  add_span(name, category, start_us, duration_us, 0);
}

void TraceRecorder::add_span(std::string_view name, std::string_view category,
                             std::uint64_t start_us,
                             std::uint64_t duration_us,
                             std::uint64_t span_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{std::string(name), std::string(category), 'X',
                          start_us, duration_us, tid_for_current_thread(),
                          span_id, 0.0, false});
}

void TraceRecorder::add_instant(std::string_view name,
                                std::string_view category) {
  const std::uint64_t now = now_us();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{std::string(name), std::string(category), 'i', now,
                          0, tid_for_current_thread()});
}

void TraceRecorder::add_exemplar_instant(std::string_view name,
                                         std::uint64_t span_id,
                                         double value) {
  const std::uint64_t now = now_us();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{std::string(name), "exemplar", 'i', now, 0,
                          tid_for_current_thread(), span_id, value, true});
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "[";
  bool first = true;
  for (const auto& event : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"" << json_escape(event.name) << "\", \"cat\": \""
       << json_escape(event.category) << "\", \"ph\": \"" << event.phase
       << "\", \"ts\": " << event.start_us;
    if (event.phase == 'X') {
      os << ", \"dur\": " << event.duration_us;
    } else {
      os << ", \"s\": \"t\"";  // instant scope: thread
    }
    os << ", \"pid\": 0, \"tid\": " << event.tid;
    if (event.span_id != 0 || event.has_value) {
      os << ", \"args\": {\"span_id\": \"" << format_span_id(event.span_id)
         << '"';
      if (event.has_value) {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", event.value);
        os << ", \"value\": " << buffer;
      }
      os << '}';
    }
    os << '}';
  }
  os << (first ? "]" : "\n]") << '\n';
}

}  // namespace tero::obs
