#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace tero::obs {

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto it = object.find(key);
  if (it == object.end()) {
    throw std::out_of_range("json: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return object.find(key) != object.end();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue value;
        value.type = JsonValue::Type::kString;
        value.string = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          value.boolean = true;
        } else if (consume_literal("false")) {
          value.boolean = false;
        } else {
          fail("bad literal");
        }
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // \uXXXX: decode the code point; non-ASCII becomes UTF-8.
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      fail("bad number '" + token + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tero::obs
