#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tero::obs {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

/// Virtual-time metrics scraper: snapshots a MetricsRegistry every
/// `scrape_every_ms` of *virtual* time into a fixed-capacity buffer, giving
/// any run a full telemetry history (rates, windowed quantiles, burn-rate
/// inputs) without wall clocks anywhere in the data.
///
/// Determinism contract (DESIGN.md §13): advance_to() is driven by the
/// loadgen/stream virtual clock from the serial accounting sections, series
/// are iterated in the registry's sorted order, and the prefix filter limits
/// scraping to series whose values are pure functions of (seed, input) — so
/// two same-seed runs produce byte-identical write_json() output at any
/// thread count. The timeline itself is not thread-safe: scrape and query
/// from the serial section only (the registry underneath stays thread-safe
/// for the writers).
///
/// Encoding: counters are delta-encoded per snapshot (totals are recovered
/// by prefix sum — nothing is ever dropped, see downsampling), gauges keep
/// the last value, histograms keep cumulative count/sum/fixed buckets plus
/// the full sketch state so windowed quantiles come from exact bucket-wise
/// subtraction between two snapshots. On overflow past `capacity` the
/// buffer downsamples: adjacent snapshot pairs merge (deltas add, the later
/// point's state survives) and the scrape interval doubles, preserving
/// total history at half the resolution.
struct TimelineConfig {
  std::uint64_t scrape_every_ms = 1000;
  std::size_t capacity = 512;  ///< max snapshots held; >= 2
  /// Series-name prefixes to scrape; empty = every series. Determinism
  /// gates list only virtual-time-driven series here (e.g. "tero.loadgen.").
  std::vector<std::string> prefixes;
};

class MetricsTimeline {
 public:
  MetricsTimeline(const MetricsRegistry& registry, TimelineConfig config);

  /// Advance the virtual clock; takes one scrape per interval boundary
  /// crossed (a big jump emits every intermediate snapshot, so history has
  /// no gaps). Idempotent for non-advancing calls. Inline fast path: calls
  /// that don't cross a boundary — the per-event common case — cost one
  /// compare, so call sites can invoke this unconditionally in hot loops.
  void advance_to(std::uint64_t virtual_ms) {
    if (virtual_ms >= next_scrape_ms_) advance_slow(virtual_ms);
  }

  /// Force one scrape stamped at `virtual_ms` (advance_to's worker; also
  /// used for a final flush at end of run).
  void scrape(std::uint64_t virtual_ms);

  /// End-of-run capture: advance to `virtual_ms` and, if the tail of the
  /// run fell short of the next boundary, take one final scrape at
  /// `virtual_ms` so the last partial interval is never lost.
  void flush(std::uint64_t virtual_ms);

  /// Invoked after every scrape with the snapshot's virtual timestamp —
  /// the SloTracker attaches here so SLO evaluation rides the same clock.
  void set_on_scrape(std::function<void(std::uint64_t)> callback) {
    on_scrape_ = std::move(callback);
  }

  [[nodiscard]] std::size_t snapshot_count() const noexcept {
    return snapshots_.size();
  }
  /// Current interval (doubles on each downsample).
  [[nodiscard]] std::uint64_t scrape_interval_ms() const noexcept {
    return interval_ms_;
  }
  [[nodiscard]] std::uint64_t last_scrape_ms() const noexcept {
    return snapshots_.empty() ? 0 : snapshots_.back().t_ms;
  }
  [[nodiscard]] std::vector<std::uint64_t> snapshot_times() const;

  /// Counter increase per second over the trailing `window_ms` ending at
  /// the last snapshot (0 when unknown series or fewer than one interval
  /// of history). The window is clamped to recorded history; time before
  /// the first snapshot counts from a zero origin.
  [[nodiscard]] double rate(std::string_view counter_name,
                            std::uint64_t window_ms) const;
  /// Counter increase (not per-second) over the trailing window.
  [[nodiscard]] double increase(std::string_view counter_name,
                                std::uint64_t window_ms) const;
  /// Last scraped gauge value (0 when unknown).
  [[nodiscard]] double gauge_value(std::string_view name) const;
  /// Last scraped counter total (0 when unknown).
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;
  /// Quantile of histogram samples that landed inside the trailing window
  /// (sketch subtraction between the window's bracketing snapshots; 0 when
  /// the window saw no samples).
  [[nodiscard]] double quantile(std::string_view histogram_name, double q,
                                std::uint64_t window_ms) const;
  /// Mean of histogram samples inside the trailing window.
  [[nodiscard]] double windowed_mean(std::string_view histogram_name,
                                     std::uint64_t window_ms) const;
  /// Count of histogram samples inside the trailing window.
  [[nodiscard]] std::uint64_t windowed_count(std::string_view histogram_name,
                                             std::uint64_t window_ms) const;
  /// True when the series has ever been scraped (any kind).
  [[nodiscard]] bool has_series(std::string_view name) const;

  /// Full history as one JSON object (deterministic byte-for-byte given
  /// deterministic scraped series — the CI bit-identity diff runs on this).
  void write_json(std::ostream& os) const;
  /// Full history in Prometheus text format with millisecond timestamps
  /// (one sample line per snapshot per series).
  void write_prom(std::ostream& os) const;

 private:
  struct SketchState {
    std::vector<std::pair<int, std::uint64_t>> buckets;
    std::uint64_t underflow = 0;
  };
  struct HistPoint {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> bucket_counts;  ///< per-bucket, overflow last
    SketchState sketch;                        ///< cumulative
  };
  struct Snapshot {
    std::uint64_t t_ms = 0;
    /// Indexed by series id; series discovered after this snapshot simply
    /// aren't present (shorter vectors read as zero/absent).
    std::vector<std::uint64_t> counter_deltas;
    std::vector<double> gauges;
    std::vector<HistPoint> hists;
  };
  struct HistMeta {
    double alpha = 0.0;           ///< sketch alpha, for reconstruction
    std::vector<double> bounds;   ///< fixed bucket bounds, for exposition
  };

  [[nodiscard]] bool included(std::string_view name) const;
  /// advance_to's out-of-line half: loops scrape() over every boundary
  /// crossed.
  void advance_slow(std::uint64_t virtual_ms);
  /// Re-list the registry, intern any new series, and rebuild the cached
  /// (id, pointer) scrape lists. Called only when the registry's
  /// mutation_epoch() moved, so a steady-state scrape touches no strings
  /// and allocates nothing beyond the snapshot itself.
  void refresh_series_cache(std::uint64_t epoch);
  void downsample();
  /// Index of the first snapshot with t > last - window (the window's
  /// content); snapshots_[i - 1] (or a zero origin) is the baseline.
  [[nodiscard]] std::size_t window_begin(std::uint64_t window_ms) const;
  [[nodiscard]] const HistPoint* hist_point(const Snapshot& snap,
                                            std::size_t sid) const;

  const MetricsRegistry* registry_;
  TimelineConfig config_;
  std::uint64_t interval_ms_;
  std::uint64_t next_scrape_ms_;
  std::function<void(std::uint64_t)> on_scrape_;

  // Series tables: name -> dense id, append-only in first-seen order
  // (deterministic because scrapes are serial and registry iteration is
  // sorted).
  std::map<std::string, std::size_t, std::less<>> counter_ids_;
  std::map<std::string, std::size_t, std::less<>> gauge_ids_;
  std::map<std::string, std::size_t, std::less<>> hist_ids_;
  std::vector<std::uint64_t> counter_last_total_;  ///< by counter id
  std::vector<HistMeta> hist_meta_;                ///< by histogram id

  // Scrape cache: the included series as (id, live pointer) pairs, valid
  // for the registry epoch it was built against (pointers are stable until
  // a series is removed or the registry resets — both bump the epoch).
  std::uint64_t cache_epoch_ = 0;
  bool cache_valid_ = false;
  std::vector<std::pair<std::size_t, const Counter*>> cached_counters_;
  std::vector<std::pair<std::size_t, const Gauge*>> cached_gauges_;
  std::vector<std::pair<std::size_t, const Histogram*>> cached_hists_;

  std::vector<Snapshot> snapshots_;
};

}  // namespace tero::obs
