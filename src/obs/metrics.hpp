#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tero::obs {

/// Zero-dependency observability primitives: counters, gauges, fixed-bucket
/// histograms with an embedded quantile sketch, all owned by a thread-safe
/// MetricsRegistry.
///
/// Determinism rules (DESIGN.md §8): metrics are *observational only*. The
/// pipeline never reads a metric to make a decision, instrumentation never
/// draws from a util::Rng, and every funnel counter is incremented in the
/// serial reduction sections, so output stays bit-identical for any thread
/// count whether a registry is attached or not.
///
/// Null-registry cost contract: call sites hold plain pointers
/// (Counter*/Histogram*/...) that are nullptr when observability is off, so
/// a disabled registry costs exactly one predictable branch per hot-path
/// event (see ScopedTimer / the `if (counter) counter->add()` idiom).

/// Monotonically increasing event count. Thread-safe, lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (queue depth, lag, configuration echo). Thread-safe.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Mergeable log-bucketed quantile sketch (DDSketch-style): values are
/// counted in buckets whose bounds grow geometrically by
/// gamma = (1 + alpha) / (1 - alpha), which guarantees every reported
/// quantile is within relative error `alpha` of the true value. Merging two
/// sketches with the same alpha is exact (bucket counts add).
class QuantileSketch {
 public:
  explicit QuantileSketch(double alpha = 0.01);

  void add(double value);
  void merge(const QuantileSketch& other);

  /// Value at quantile q in [0, 1]; 0 when empty. Accurate to within the
  /// relative error alpha (exact for non-positive values, which share one
  /// underflow bucket).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Checkpoint support: the exact internal state as (bucket index, count)
  /// pairs in ascending index order plus the underflow count. restore()
  /// replaces the sketch's contents with a previously exported state; a
  /// restored sketch reports bit-identical quantiles (same alpha required).
  [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> export_buckets()
      const;
  [[nodiscard]] std::uint64_t underflow() const;
  void restore(const std::vector<std::pair<int, std::uint64_t>>& buckets,
               std::uint64_t underflow);

 private:
  [[nodiscard]] int bucket_index(double value) const;

  double alpha_;
  double log_gamma_;
  mutable std::mutex mutex_;
  std::map<int, std::uint64_t> buckets_;  ///< index -> count, positive values
  std::uint64_t underflow_ = 0;           ///< values <= kMinTrackable
};

/// Fixed-bucket histogram (cumulative "le" bounds, Prometheus-style) with an
/// embedded QuantileSketch so sinks can report both exact bucket counts and
/// tight p50/p90/p99 estimates. observe() is thread-safe.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bounds; an implicit +Inf
  /// overflow bucket is always appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  /// Per-bucket (non-cumulative) counts; last entry is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] double quantile(double q) const { return sketch_.quantile(q); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  QuantileSketch sketch_;
};

/// Default bucket bounds for duration histograms, in milliseconds.
[[nodiscard]] const std::vector<double>& default_duration_buckets_ms();

/// Thread-safe name -> metric owner. Metric references returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime, so
/// hot paths resolve them once and keep the pointer.
///
/// Naming scheme: dot-separated `tero.<module>.<event>[{label=value,...}]`,
/// e.g. `tero.funnel.ocr_ok` or `tero.pool.parallel_for_failures{chunk=3}`.
/// Use labeled() to build labeled names consistently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bounds; later calls with the same name
  /// return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  [[nodiscard]] static std::string labeled(
      std::string_view name,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          labels);

  /// Labeled one-shot conveniences: build the labeled name and update the
  /// metric in a single call. For cold and warm paths (publish events,
  /// per-shard queue-depth gauges); true hot loops should still resolve the
  /// metric pointer once and keep it.
  void add_counter(std::string_view name,
                   std::initializer_list<
                       std::pair<std::string_view, std::string_view>>
                       labels,
                   std::uint64_t n = 1);
  void set_gauge(std::string_view name,
                 std::initializer_list<
                     std::pair<std::string_view, std::string_view>>
                     labels,
                 double value);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, quantiles, buckets}}}.
  void write_json(std::ostream& os) const;

  /// Human-readable dump through util::Table (one row per metric).
  void write_table(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII wall-time probe: observes the elapsed milliseconds into `histogram`
/// on destruction. A null histogram makes both ends a single branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tero::obs
