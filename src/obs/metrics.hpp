#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tero::obs {

/// Zero-dependency observability primitives: counters, gauges, fixed-bucket
/// histograms with an embedded quantile sketch, all owned by a thread-safe
/// MetricsRegistry.
///
/// Determinism rules (DESIGN.md §8): metrics are *observational only*. The
/// pipeline never reads a metric to make a decision, instrumentation never
/// draws from a util::Rng, and every funnel counter is incremented in the
/// serial reduction sections, so output stays bit-identical for any thread
/// count whether a registry is attached or not.
///
/// Null-registry cost contract: call sites hold plain pointers
/// (Counter*/Histogram*/...) that are nullptr when observability is off, so
/// a disabled registry costs exactly one predictable branch per hot-path
/// event (see ScopedTimer / the `if (counter) counter->add()` idiom).

/// Monotonically increasing event count. Thread-safe, lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (queue depth, lag, configuration echo). Thread-safe.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Mergeable log-bucketed quantile sketch (DDSketch-style): values are
/// counted in buckets whose bounds grow geometrically by
/// gamma = (1 + alpha) / (1 - alpha), which guarantees every reported
/// quantile is within relative error `alpha` of the true value. Merging two
/// sketches with the same alpha is exact (bucket counts add).
class QuantileSketch {
 public:
  explicit QuantileSketch(double alpha = 0.01);

  void add(double value);
  void merge(const QuantileSketch& other);

  /// Value at quantile q in [0, 1]; 0 when empty. Accurate to within the
  /// relative error alpha (exact for non-positive values, which share one
  /// underflow bucket).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Checkpoint support: the exact internal state as (bucket index, count)
  /// pairs in ascending index order plus the underflow count. restore()
  /// replaces the sketch's contents with a previously exported state; a
  /// restored sketch reports bit-identical quantiles (same alpha required).
  [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> export_buckets()
      const;
  [[nodiscard]] std::uint64_t underflow() const;
  void restore(const std::vector<std::pair<int, std::uint64_t>>& buckets,
               std::uint64_t underflow);

  /// Quantile computed straight from exported state — `buckets` must be in
  /// ascending index order, exactly as export_buckets() returns. Equivalent
  /// to restore() + quantile() on a scratch sketch with the same `alpha`,
  /// without building one (the timeline's windowed-quantile hot path).
  [[nodiscard]] static double quantile_of(
      double alpha, const std::vector<std::pair<int, std::uint64_t>>& buckets,
      std::uint64_t underflow, double q);

 private:
  [[nodiscard]] int bucket_index(double value) const;

  double alpha_;
  double log_gamma_;
  mutable std::mutex mutex_;
  std::map<int, std::uint64_t> buckets_;  ///< index -> count, positive values
  std::uint64_t underflow_ = 0;           ///< values <= kMinTrackable
};

/// One sampled observation attached to a histogram bucket: the exact value,
/// the trace span that produced it, and the selection rank that let it win
/// its bucket's reservoir slot. `rank` is a pure function of (seed, value,
/// span_id), so the winning exemplar depends only on the *set* of samples a
/// bucket saw — never on arrival order or thread interleaving.
struct Exemplar {
  static constexpr std::uint64_t kEmpty =
      0xffffffffffffffffULL;  ///< rank of an unoccupied slot

  double value = 0.0;
  std::uint64_t span_id = 0;
  std::uint64_t rank = kEmpty;

  [[nodiscard]] bool valid() const noexcept { return rank != kEmpty; }
};

/// Fixed-bucket histogram (cumulative "le" bounds, Prometheus-style) with an
/// embedded QuantileSketch so sinks can report both exact bucket counts and
/// tight p50/p90/p99 estimates. observe() is thread-safe.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bounds; an implicit +Inf
  /// overflow bucket is always appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// observe() plus deterministic exemplar capture: when exemplars are
  /// enabled, the sample competes for its bucket's single exemplar slot
  /// with rank Rng::indexed(seed, mix(span_id, value)) — a min-wise
  /// reservoir, i.e. a uniform random choice among the bucket's samples
  /// that is bit-identical for any arrival order or thread count. With
  /// exemplars off this is exactly observe().
  void record(double value, std::uint64_t span_id);

  /// Arm exemplar capture (one slot per bucket, including overflow).
  /// Idempotent; the seed fixes which sample each bucket elects. Setup-time
  /// call: arm before concurrent record() traffic starts.
  void enable_exemplars(std::uint64_t seed);
  [[nodiscard]] bool exemplars_enabled() const noexcept {
    return exemplars_ != nullptr;
  }
  /// Per-bucket exemplar slots (bounds().size() + 1 entries, overflow
  /// last); slots with !valid() never saw a record(). Empty when disabled.
  [[nodiscard]] std::vector<Exemplar> exemplars() const;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  /// Per-bucket (non-cumulative) counts; last entry is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] double quantile(double q) const { return sketch_.quantile(q); }
  /// The embedded sketch — lets the MetricsTimeline snapshot cumulative
  /// sketch state and compute windowed quantiles by bucket subtraction.
  [[nodiscard]] const QuantileSketch& sketch() const noexcept {
    return sketch_;
  }

 private:
  [[nodiscard]] std::size_t bucket_for(double value) const noexcept;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  QuantileSketch sketch_;
  /// Exemplar state; allocated lazily by enable_exemplars() (cold path —
  /// the plain observe() hot path never touches it).
  mutable std::mutex exemplar_mutex_;
  std::unique_ptr<Exemplar[]> exemplars_;
  std::uint64_t exemplar_seed_ = 0;
};

/// Default bucket bounds for duration histograms, in milliseconds.
[[nodiscard]] const std::vector<double>& default_duration_buckets_ms();

/// Thread-safe name -> metric owner. Metric references returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime, so
/// hot paths resolve them once and keep the pointer.
///
/// Naming scheme: dot-separated `tero.<module>.<event>[{label=value,...}]`,
/// e.g. `tero.funnel.ocr_ok` or `tero.pool.parallel_for_failures{chunk=3}`.
/// Use labeled() to build labeled names consistently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bounds; later calls with the same name
  /// return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Stable, name-sorted iteration (the MetricsTimeline's determinism
  /// anchor: series order in every scrape and export is the sorted name
  /// order, never map-internal iteration luck). The returned pointers stay
  /// valid until the named series is remove()d or the registry is reset()
  /// or destroyed.
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>> gauges()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>>
  histograms() const;

  /// Structure version: bumps whenever a series is created or removed
  /// (reset() counts too). Scrapers cache their name -> pointer series
  /// lists against this and rebuild only when it moves, so a steady-state
  /// scrape never re-lists (or re-allocates) the registry.
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Drop one series (any kind). Returns whether anything was removed.
  /// Invalidates pointers previously handed out for that name — callers
  /// holding hot-path metric pointers must not remove those series.
  bool remove(const std::string& name);
  /// Drop every series. Same invalidation caveat as remove().
  void reset();

  [[nodiscard]] static std::string labeled(
      std::string_view name,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          labels);

  /// Labeled one-shot conveniences: build the labeled name and update the
  /// metric in a single call. For cold and warm paths (publish events,
  /// per-shard queue-depth gauges); true hot loops should still resolve the
  /// metric pointer once and keep it.
  void add_counter(std::string_view name,
                   std::initializer_list<
                       std::pair<std::string_view, std::string_view>>
                       labels,
                   std::uint64_t n = 1);
  void set_gauge(std::string_view name,
                 std::initializer_list<
                     std::pair<std::string_view, std::string_view>>
                     labels,
                 double value);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, quantiles, buckets}}}.
  void write_json(std::ostream& os) const;

  /// Human-readable dump through util::Table (one row per metric).
  void write_table(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// RAII wall-time probe: observes the elapsed milliseconds into `histogram`
/// on destruction. A null histogram makes both ends a single branch.
/// Movable: the moved-from timer is disarmed (null histogram) so exactly one
/// observation is recorded per started timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { finish(); }

  ScopedTimer(ScopedTimer&& other) noexcept
      : histogram_(other.histogram_), start_(other.start_) {
    other.histogram_ = nullptr;
  }
  ScopedTimer& operator=(ScopedTimer&& other) noexcept {
    if (this != &other) {
      finish();  // close out our own measurement before adopting the other
      histogram_ = other.histogram_;
      start_ = other.start_;
      other.histogram_ = nullptr;
    }
    return *this;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void finish() noexcept {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(
        std::chrono::duration<double, std::milli>(elapsed).count());
    histogram_ = nullptr;
  }

  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tero::obs
