#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tero::obs {

/// Minimal JSON value + recursive-descent parser, used to validate the
/// metrics/trace sinks' output (round-trip tests, CLI sanity checks) without
/// an external dependency. Numbers are stored as double; object key order is
/// not preserved (std::map).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::kString;
  }

  /// Object member access; throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
};

/// Parse a complete JSON document; throws std::invalid_argument on any
/// syntax error or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Escape a string for embedding between double quotes in JSON output.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace tero::obs
