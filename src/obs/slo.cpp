#include "obs/slo.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "util/table.hpp"

namespace tero::obs {

namespace {

std::string fmt_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.12g", value);
  if (std::strtod(shorter, nullptr) == value) return shorter;
  return buffer;
}

/// Compact human form for spec round-tripping: no exponent noise for the
/// typical small thresholds/budgets.
std::string fmt_spec_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

void skip_spaces(std::string_view& text) {
  while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
}

bool eat(std::string_view& text, std::string_view token) {
  skip_spaces(text);
  if (text.substr(0, token.size()) != token) return false;
  text.remove_prefix(token.size());
  return true;
}

double eat_number(std::string_view& text, std::string_view what) {
  skip_spaces(text);
  const std::string buffer(text.substr(0, 64));
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str()) {
    throw std::invalid_argument("SloSpec: expected number for " +
                                std::string(what) + " near '" +
                                std::string(text.substr(0, 16)) + "'");
  }
  text.remove_prefix(static_cast<std::size_t>(end - buffer.c_str()));
  return value;
}

[[noreturn]] void fail(std::string_view what, std::string_view near) {
  throw std::invalid_argument("SloSpec: " + std::string(what) + " near '" +
                              std::string(near.substr(0, 24)) + "'");
}

}  // namespace

SloTracker::SloTracker() : SloTracker(Config{}) {}
SloTracker::SloTracker(Config config) : config_(config) {}

std::string_view SloSpec::stat_name(Stat stat) {
  switch (stat) {
    case Stat::kP50: return "p50";
    case Stat::kP90: return "p90";
    case Stat::kP99: return "p99";
    case Stat::kMean: return "mean";
    case Stat::kRate: return "rate";
    case Stat::kValue: return "value";
  }
  return "?";
}

SloSpec SloSpec::parse(std::string_view text) {
  SloSpec spec;
  skip_spaces(text);
  eat(text, "slo ");  // optional prefix
  skip_spaces(text);

  const auto colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail("expected '<name>:'", text);
  }
  spec.name = std::string(text.substr(0, colon));
  while (!spec.name.empty() && spec.name.back() == ' ') spec.name.pop_back();
  text.remove_prefix(colon + 1);

  skip_spaces(text);
  const auto paren = text.find('(');
  if (paren == std::string_view::npos) fail("expected '<stat>(series)'", text);
  std::string_view stat = text.substr(0, paren);
  while (!stat.empty() && stat.back() == ' ') stat.remove_suffix(1);
  if (stat == "p50") {
    spec.stat = Stat::kP50;
  } else if (stat == "p90") {
    spec.stat = Stat::kP90;
  } else if (stat == "p99") {
    spec.stat = Stat::kP99;
  } else if (stat == "mean") {
    spec.stat = Stat::kMean;
  } else if (stat == "rate") {
    spec.stat = Stat::kRate;
  } else if (stat == "value") {
    spec.stat = Stat::kValue;
  } else {
    fail("unknown stat (want p50|p90|p99|mean|rate|value)", stat);
  }
  text.remove_prefix(paren + 1);
  const auto close = text.find(')');
  if (close == std::string_view::npos || close == 0) {
    fail("unterminated series name", text);
  }
  spec.series = std::string(text.substr(0, close));
  text.remove_prefix(close + 1);

  skip_spaces(text);
  if (eat(text, "<")) {
    spec.less_than = true;
  } else if (eat(text, ">")) {
    spec.less_than = false;
  } else {
    fail("expected '<' or '>'", text);
  }
  spec.threshold = eat_number(text, "threshold");
  if (eat(text, "ms")) {
    // histogram units already are ms
  } else if (eat(text, "s")) {
    spec.threshold *= 1000.0;
  }

  if (!eat(text, "over")) fail("expected 'over <N>s'", text);
  const double window = eat_number(text, "window");
  if (eat(text, "ms")) {
    spec.window_ms = static_cast<std::uint64_t>(window);
  } else if (eat(text, "s")) {
    spec.window_ms = static_cast<std::uint64_t>(window * 1000.0);
  } else {
    fail("window needs a unit (s or ms)", text);
  }
  if (spec.window_ms == 0) fail("window must be > 0", text);
  eat(text, "window");  // optional noise word
  eat(text, ",");       // optional separator

  if (!eat(text, "budget")) fail("expected 'budget <P>%'", text);
  const double percent = eat_number(text, "budget");
  if (!eat(text, "%")) fail("budget needs '%'", text);
  spec.budget = percent / 100.0;
  if (!(spec.budget > 0.0 && spec.budget <= 1.0)) {
    fail("budget must be in (0%, 100%]", text);
  }

  skip_spaces(text);
  if (!text.empty()) fail("trailing garbage", text);
  return spec;
}

std::string SloSpec::to_string() const {
  std::string out = name;
  out += ": ";
  out += stat_name(stat);
  out += '(';
  out += series;
  out += ") ";
  out += less_than ? '<' : '>';
  out += ' ';
  out += fmt_spec_number(threshold);
  out += " over ";
  if (window_ms % 1000 == 0) {
    out += fmt_spec_number(static_cast<double>(window_ms) / 1000.0);
    out += 's';
  } else {
    out += std::to_string(window_ms);
    out += "ms";
  }
  out += " budget ";
  out += fmt_spec_number(budget * 100.0);
  out += '%';
  return out;
}

void SloTracker::add(SloSpec spec) {
  slos_.push_back(State{std::move(spec), {}, 0, 0, 0.0, 0.0, 0.0, false});
}

std::string SloTracker::add(std::string_view spec_text) {
  SloSpec spec = SloSpec::parse(spec_text);
  std::string name = spec.name;
  add(std::move(spec));
  return name;
}

double SloTracker::measure(const State& state,
                           const MetricsTimeline& timeline) const {
  // Point verdicts are measured over one scrape interval (the delta since
  // the previous snapshot); the windows then aggregate those verdicts.
  const std::uint64_t interval = timeline.scrape_interval_ms();
  const SloSpec& spec = state.spec;
  switch (spec.stat) {
    case SloSpec::Stat::kP50: return timeline.quantile(spec.series, 0.50,
                                                       interval);
    case SloSpec::Stat::kP90: return timeline.quantile(spec.series, 0.90,
                                                       interval);
    case SloSpec::Stat::kP99: return timeline.quantile(spec.series, 0.99,
                                                       interval);
    case SloSpec::Stat::kMean:
      return timeline.windowed_mean(spec.series, interval);
    case SloSpec::Stat::kRate: return timeline.rate(spec.series, interval);
    case SloSpec::Stat::kValue: return timeline.gauge_value(spec.series);
  }
  return 0.0;
}

double SloTracker::burn(const State& state, std::uint64_t t_ms,
                        std::uint64_t window_ms) {
  const std::uint64_t cutoff = t_ms >= window_ms ? t_ms - window_ms : 0;
  std::uint64_t total = 0, bad = 0;
  for (auto it = state.verdicts.rbegin(); it != state.verdicts.rend(); ++it) {
    if (it->first <= cutoff) break;
    ++total;
    if (!it->second) ++bad;
  }
  if (total == 0) return 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) /
         state.spec.budget;
}

void SloTracker::evaluate(const MetricsTimeline& timeline,
                          std::uint64_t t_ms) {
  for (State& state : slos_) {
    state.measured = measure(state, timeline);
    const bool good = state.spec.less_than
                          ? state.measured < state.spec.threshold
                          : state.measured > state.spec.threshold;
    state.verdicts.emplace_back(t_ms, good);
    if (good) {
      ++state.good;
    } else {
      ++state.bad;
    }
    // Keep only what the widest window can see.
    const std::uint64_t keep_ms =
        std::max(state.spec.window_ms, config_.fast_window_ms);
    const std::uint64_t cutoff = t_ms >= keep_ms ? t_ms - keep_ms : 0;
    while (!state.verdicts.empty() && state.verdicts.front().first <= cutoff) {
      state.verdicts.pop_front();
    }

    state.burn_fast = burn(state, t_ms, config_.fast_window_ms);
    state.burn_slow = burn(state, t_ms, state.spec.window_ms);
    const bool above = state.burn_fast >= config_.burn_threshold &&
                       state.burn_slow >= config_.burn_threshold;
    if (above != state.firing) {
      state.firing = above;
      alerts_.push_back(SloAlert{state.spec.name, t_ms, above,
                                 state.burn_fast, state.burn_slow,
                                 state.measured});
    }
  }
}

void SloTracker::attach(MetricsTimeline& timeline) {
  timeline.set_on_scrape(
      [this, &timeline](std::uint64_t t_ms) { evaluate(timeline, t_ms); });
}

bool SloTracker::fired(std::string_view slo_name, std::uint64_t since_ms) const {
  return std::any_of(alerts_.begin(), alerts_.end(),
                     [&](const SloAlert& alert) {
                       return alert.firing && alert.slo == slo_name &&
                              alert.t_ms >= since_ms;
                     });
}

std::vector<SloStatus> SloTracker::status() const {
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const State& state : slos_) {
    const std::uint64_t total = state.good + state.bad;
    out.push_back(SloStatus{
        state.spec.name, state.measured, state.burn_fast, state.burn_slow,
        state.good, state.bad,
        total == 0 ? 0.0
                   : (static_cast<double>(state.bad) /
                      static_cast<double>(total)) /
                         state.spec.budget,
        state.firing});
  }
  return out;
}

void SloTracker::write_json(std::ostream& os) const {
  os << "{\n  \"slos\": [";
  const auto statuses = status();
  bool first = true;
  for (std::size_t i = 0; i < slos_.size(); ++i) {
    const SloStatus& s = statuses[i];
    os << (first ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(s.slo) << "\", \"spec\": \""
       << json_escape(slos_[i].spec.to_string())
       << "\", \"measured\": " << fmt_number(s.measured)
       << ", \"burn_fast\": " << fmt_number(s.burn_fast)
       << ", \"burn_slow\": " << fmt_number(s.burn_slow)
       << ", \"good\": " << s.good << ", \"bad\": " << s.bad
       << ", \"budget_consumed\": " << fmt_number(s.budget_consumed)
       << ", \"firing\": " << (s.firing ? "true" : "false") << '}';
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"alerts\": [";
  first = true;
  for (const SloAlert& alert : alerts_) {
    os << (first ? "\n" : ",\n") << "    {\"slo\": \""
       << json_escape(alert.slo) << "\", \"t_ms\": " << alert.t_ms
       << ", \"event\": \"" << (alert.firing ? "fire" : "resolve")
       << "\", \"burn_fast\": " << fmt_number(alert.burn_fast)
       << ", \"burn_slow\": " << fmt_number(alert.burn_slow)
       << ", \"measured\": " << fmt_number(alert.measured) << '}';
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

void SloTracker::write_table(std::ostream& os) const {
  util::Table table(
      {"slo", "measured", "burn_fast", "burn_slow", "budget_used", "state"});
  for (const SloStatus& s : status()) {
    table.add_row({s.slo, util::fmt_double(s.measured, 3),
                   util::fmt_double(s.burn_fast, 2),
                   util::fmt_double(s.burn_slow, 2),
                   util::fmt_double(s.budget_consumed * 100.0, 1) + "%",
                   s.firing ? "FIRING" : "ok"});
  }
  table.print(os);
}

}  // namespace tero::obs
