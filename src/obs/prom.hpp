#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tero::obs {

class MetricsRegistry;

/// Prometheus text exposition for the registry's series names
/// (`tero.<module>.<event>[{label=value,...}]`, see MetricsRegistry). Dots
/// become underscores, internal labels become quoted Prometheus labels, and
/// histograms expand into the `_bucket{le=...}` / `_sum` / `_count` family.
/// Exemplar-armed histograms additionally emit OpenMetrics-style exemplars
/// (`... # {span_id="0x2a"} 4.25`) on their bucket lines, which is what lets
/// `tero_cli obs report` jump from a p99 bucket to the span that filled it.

/// A registry series name split into its base name and label pairs:
/// "tero.serve.cache_hits{shard=3}" -> {"tero.serve.cache_hits", {{"shard",
/// "3"}}}. Malformed label blocks are left un-split (the whole string stays
/// in `name`), matching how the registry treats names as opaque keys.
struct ParsedSeriesName {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
};
[[nodiscard]] ParsedSeriesName split_labeled_name(std::string_view series);

/// Sanitize a metric name to the Prometheus charset [a-zA-Z0-9_:] (every
/// other byte becomes '_'; a leading digit gains a '_' prefix).
[[nodiscard]] std::string prom_name(std::string_view name);

/// Escape a label value for a double-quoted Prometheus label: backslash,
/// double quote, and newline become \\, \", and \n.
[[nodiscard]] std::string prom_escape_label(std::string_view value);

/// Render "{k1=\"v1\",k2=\"v2\"}" (empty string when no labels).
[[nodiscard]] std::string prom_label_block(
    const std::vector<std::pair<std::string, std::string>>& labels);

/// Write the registry's current state in Prometheus text format (sorted
/// series order, `# TYPE` per family, exemplars on exemplar-armed
/// histogram buckets).
void write_prom(const MetricsRegistry& registry, std::ostream& os);

/// Minimal format checker for the exposition format we emit (the CI
/// `obs-smoke` gate runs it over exported files). Accepts comments,
/// `# TYPE` lines, samples `name{labels} value [timestamp_ms]`, and
/// OpenMetrics exemplar suffixes. Returns "" when valid, otherwise
/// "line N: <problem>" for the first offending line.
[[nodiscard]] std::string validate_prom_text(std::string_view text);

}  // namespace tero::obs
