#include "obs/prom.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tero::obs {

namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool is_label_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string fmt_prom_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.12g", value);
  if (std::strtod(shorter, nullptr) == value) return shorter;
  return buffer;
}

}  // namespace

ParsedSeriesName split_labeled_name(std::string_view series) {
  ParsedSeriesName out;
  const auto brace = series.find('{');
  if (brace == std::string_view::npos || series.back() != '}') {
    out.name = std::string(series);
    return out;
  }
  std::vector<std::pair<std::string, std::string>> labels;
  std::string_view body = series.substr(brace + 1, series.size() - brace - 2);
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      // Not our k=v scheme: treat the whole series as an opaque name.
      out.name = std::string(series);
      out.labels.clear();
      return out;
    }
    labels.emplace_back(std::string(item.substr(0, eq)),
                        std::string(item.substr(eq + 1)));
    if (comma == std::string_view::npos) break;
    body.remove_prefix(comma + 1);
  }
  out.name = std::string(series.substr(0, brace));
  out.labels = std::move(labels);
  return out;
}

std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    out += (is_name_char(c) ? c : '_');
  }
  if (out.empty() || !is_name_start(out.front())) out.insert(out.begin(), '_');
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_label_block(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_name(key);
    out += "=\"";
    out += prom_escape_label(value);
    out += '"';
  }
  out += '}';
  return out;
}

void write_prom(const MetricsRegistry& registry, std::ostream& os) {
  // Sorted series order (registry iteration is name-sorted); TYPE is
  // emitted once per base name even when labeled variants repeat it.
  std::string last_typed;
  const auto type_line = [&](const std::string& base,
                             std::string_view kind) {
    if (base == last_typed) return;
    last_typed = base;
    os << "# TYPE " << base << ' ' << kind << '\n';
  };

  for (const auto& [series, counter] : registry.counters()) {
    const ParsedSeriesName parsed = split_labeled_name(series);
    const std::string base = prom_name(parsed.name);
    type_line(base, "counter");
    os << base << prom_label_block(parsed.labels) << ' ' << counter->value()
       << '\n';
  }
  last_typed.clear();
  for (const auto& [series, gauge] : registry.gauges()) {
    const ParsedSeriesName parsed = split_labeled_name(series);
    const std::string base = prom_name(parsed.name);
    type_line(base, "gauge");
    os << base << prom_label_block(parsed.labels) << ' '
       << fmt_prom_number(gauge->value()) << '\n';
  }
  last_typed.clear();
  for (const auto& [series, histogram] : registry.histograms()) {
    const ParsedSeriesName parsed = split_labeled_name(series);
    const std::string base = prom_name(parsed.name);
    type_line(base, "histogram");
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->bounds();
    const auto exemplars = histogram->exemplars();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      auto labels = parsed.labels;
      labels.emplace_back(
          "le", i < bounds.size() ? fmt_prom_number(bounds[i]) : "+Inf");
      os << base << "_bucket" << prom_label_block(labels) << ' '
         << cumulative;
      if (i < exemplars.size() && exemplars[i].valid()) {
        os << " # {span_id=\"" << format_span_id(exemplars[i].span_id)
           << "\"} " << fmt_prom_number(exemplars[i].value);
      }
      os << '\n';
    }
    os << base << "_sum" << prom_label_block(parsed.labels) << ' '
       << fmt_prom_number(histogram->sum()) << '\n';
    os << base << "_count" << prom_label_block(parsed.labels) << ' '
       << histogram->count() << '\n';
  }
}

namespace {

/// One-line validators for validate_prom_text. Each returns "" or a problem.

std::string check_label_block(std::string_view& rest) {
  // rest starts at '{'; consumes through the matching '}'.
  rest.remove_prefix(1);
  bool first = true;
  while (true) {
    if (rest.empty()) return "unterminated label block";
    if (rest.front() == '}') {
      rest.remove_prefix(1);
      return {};
    }
    if (!first) {
      if (rest.front() != ',') return "expected ',' between labels";
      rest.remove_prefix(1);
    }
    first = false;
    std::size_t k = 0;
    while (k < rest.size() && is_label_key_char(rest[k])) ++k;
    if (k == 0) return "empty label name";
    rest.remove_prefix(k);
    if (rest.empty() || rest.front() != '=') return "expected '=' in label";
    rest.remove_prefix(1);
    if (rest.empty() || rest.front() != '"') {
      return "label value must be double-quoted";
    }
    rest.remove_prefix(1);
    while (true) {
      if (rest.empty()) return "unterminated label value";
      const char c = rest.front();
      rest.remove_prefix(1);
      if (c == '"') break;
      if (c == '\\') {
        if (rest.empty() ||
            (rest.front() != '\\' && rest.front() != '"' &&
             rest.front() != 'n')) {
          return "invalid escape in label value (want \\\\, \\\" or \\n)";
        }
        rest.remove_prefix(1);
      }
    }
  }
}

std::string check_number(std::string_view& rest, std::string_view what) {
  // Accepts floats plus the Prometheus specials +Inf/-Inf/NaN.
  for (const std::string_view special : {"+Inf", "-Inf", "Inf", "NaN"}) {
    if (rest.substr(0, special.size()) == special) {
      rest.remove_prefix(special.size());
      return {};
    }
  }
  const std::string text(rest);
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return std::string("missing ") + std::string(what);
  rest.remove_prefix(static_cast<std::size_t>(end - text.c_str()));
  return {};
}

std::string check_sample_line(std::string_view rest) {
  std::size_t n = 0;
  if (rest.empty() || !is_name_start(rest.front())) {
    return "sample must start with a metric name";
  }
  while (n < rest.size() && is_name_char(rest[n])) ++n;
  rest.remove_prefix(n);
  if (!rest.empty() && rest.front() == '{') {
    if (auto err = check_label_block(rest); !err.empty()) return err;
  }
  if (rest.empty() || rest.front() != ' ') {
    return "expected ' ' before sample value";
  }
  rest.remove_prefix(1);
  if (auto err = check_number(rest, "sample value"); !err.empty()) return err;
  if (!rest.empty() && rest.front() == ' ' && rest.size() > 1 &&
      rest[1] != '#') {
    // Optional millisecond timestamp.
    rest.remove_prefix(1);
    std::size_t t = rest.front() == '-' ? 1 : 0;
    const std::size_t digits_from = t;
    while (t < rest.size() &&
           std::isdigit(static_cast<unsigned char>(rest[t]))) {
      ++t;
    }
    if (t == digits_from) return "invalid timestamp";
    rest.remove_prefix(t);
  }
  if (!rest.empty()) {
    // Optional OpenMetrics exemplar: " # {labels} value".
    if (rest.substr(0, 3) != " # ") return "trailing garbage after sample";
    rest.remove_prefix(3);
    if (rest.empty() || rest.front() != '{') {
      return "exemplar must carry a label block";
    }
    if (auto err = check_label_block(rest); !err.empty()) return err;
    if (rest.empty() || rest.front() != ' ') {
      return "expected ' ' before exemplar value";
    }
    rest.remove_prefix(1);
    if (auto err = check_number(rest, "exemplar value"); !err.empty()) {
      return err;
    }
  }
  if (!rest.empty()) return "trailing garbage after sample";
  return {};
}

std::string check_comment_line(std::string_view rest) {
  // "# TYPE <name> <kind>" is structured; any other comment is free-form.
  if (rest.substr(0, 7) != "# TYPE ") return {};
  rest.remove_prefix(7);
  std::size_t n = 0;
  while (n < rest.size() && is_name_char(rest[n])) ++n;
  if (n == 0) return "TYPE line missing metric name";
  rest.remove_prefix(n);
  if (rest.empty() || rest.front() != ' ') return "TYPE line missing kind";
  rest.remove_prefix(1);
  for (const std::string_view kind :
       {"counter", "gauge", "histogram", "summary", "untyped"}) {
    if (rest == kind) return {};
  }
  return "TYPE line kind must be counter|gauge|histogram|summary|untyped";
}

}  // namespace

std::string validate_prom_text(std::string_view text) {
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const auto nl = text.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (line.empty()) continue;
    const std::string err = line.front() == '#' ? check_comment_line(line)
                                                : check_sample_line(line);
    if (!err.empty()) {
      return "line " + std::to_string(line_no) + ": " + err;
    }
  }
  return {};
}

}  // namespace tero::obs
