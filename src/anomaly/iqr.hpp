#pragma once

#include <span>
#include <vector>

namespace tero::anomaly {

/// Inter-quartile-range outlier rule: flag x outside
/// [Q1 - k * IQR, Q3 + k * IQR]. App. J uses this to threshold Isolation
/// Forest scores with k in [0.5, 2.0].
[[nodiscard]] std::vector<bool> iqr_outliers(std::span<const double> values,
                                             double k = 1.5);

}  // namespace tero::anomaly
