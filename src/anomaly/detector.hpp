#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace tero::anomaly {

/// Interface of the unsupervised anomaly-detection baselines Tero is
/// compared against in App. J. Input is one streamer's latency series (ms);
/// output marks each point as anomalous or not.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<bool> detect(
      std::span<const double> series) const = 0;
};

/// Local Outlier Factor [4] (distance-based): density relative to the K
/// nearest neighbours; LOF above `threshold` flags an anomaly.
[[nodiscard]] std::unique_ptr<AnomalyDetector> make_lof(
    int k = 10, double threshold = 1.5);

/// Isolation Forest [29] (isolation-based): score by average isolation
/// depth across random trees; following App. J, anomalies are the points
/// whose scores are IQR outliers with range parameter `iqr_k`.
[[nodiscard]] std::unique_ptr<AnomalyDetector> make_iforest(
    int trees = 100, int subsample = 128, double iqr_k = 1.5,
    std::uint64_t seed = 1);

/// Minimum Covariance Determinant [45] (distribution-based): robust
/// mean/variance from the least-variable h-subset; points with robust
/// z-score above the cutoff implied by `contamination` are anomalous.
[[nodiscard]] std::unique_ptr<AnomalyDetector> make_mcd(
    double contamination = 0.05);

}  // namespace tero::anomaly
