#include "anomaly/pelt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"

namespace tero::anomaly {
namespace {

/// Segment cost: n * log(variance) (normal likelihood, variance unknown).
class SegmentCost {
 public:
  explicit SegmentCost(std::span<const double> series)
      : sum_(series.size() + 1, 0.0), sq_(series.size() + 1, 0.0) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      sum_[i + 1] = sum_[i] + series[i];
      sq_[i + 1] = sq_[i] + series[i] * series[i];
    }
  }

  /// Cost of the segment covering indices [start, end).
  [[nodiscard]] double operator()(std::size_t start, std::size_t end) const {
    const auto n = static_cast<double>(end - start);
    if (n < 1.0) return 0.0;
    const double mean = (sum_[end] - sum_[start]) / n;
    const double var =
        std::max(1e-8, (sq_[end] - sq_[start]) / n - mean * mean);
    return n * std::log(var);
  }

 private:
  std::vector<double> sum_;
  std::vector<double> sq_;
};

}  // namespace

std::vector<std::size_t> pelt_changepoints(std::span<const double> series,
                                           double penalty) {
  const std::size_t n = series.size();
  if (n < 4) return {};
  const SegmentCost cost(series);

  // f[t] = optimal cost of series[0, t); prev[t] = last changepoint.
  std::vector<double> f(n + 1, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> prev(n + 1, 0);
  f[0] = -penalty;
  std::vector<std::size_t> candidates = {0};

  for (std::size_t t = 1; t <= n; ++t) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_s = 0;
    for (std::size_t s : candidates) {
      const double value = f[s] + cost(s, t) + penalty;
      if (value < best) {
        best = value;
        best_s = s;
      }
    }
    f[t] = best;
    prev[t] = best_s;
    // PELT pruning: s can never be optimal again if
    // f[s] + cost(s, t) > f[t].
    std::vector<std::size_t> kept;
    kept.reserve(candidates.size() + 1);
    for (std::size_t s : candidates) {
      if (f[s] + cost(s, t) <= f[t]) kept.push_back(s);
    }
    kept.push_back(t);
    candidates = std::move(kept);
  }

  std::vector<std::size_t> changepoints;
  std::size_t t = n;
  while (t > 0) {
    const std::size_t s = prev[t];
    if (s > 0) changepoints.push_back(s);
    t = s;
  }
  std::reverse(changepoints.begin(), changepoints.end());
  return changepoints;
}

std::vector<std::size_t> pelt_changepoints(std::span<const double> series) {
  const double n = static_cast<double>(series.size());
  return pelt_changepoints(series, 2.0 * std::log(std::max(2.0, n)));
}

}  // namespace tero::anomaly
