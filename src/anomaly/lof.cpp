#include <algorithm>
#include <cmath>

#include "anomaly/detector.hpp"

namespace tero::anomaly {
namespace {

/// 1-D Local Outlier Factor. K controls "the number of neighbours that need
/// to be similar to a point to consider it normal" (App. J).
class Lof final : public AnomalyDetector {
 public:
  Lof(int k, double threshold) : k_(k), threshold_(threshold) {}

  [[nodiscard]] std::string name() const override { return "LOF"; }

  [[nodiscard]] std::vector<bool> detect(
      std::span<const double> series) const override {
    const std::size_t n = series.size();
    std::vector<bool> flags(n, false);
    const std::size_t k = static_cast<std::size_t>(k_);
    if (n <= k + 1) return flags;

    // Sort once; k nearest neighbours of a value are a contiguous window.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return series[a] < series[b];
    });
    std::vector<double> sorted(n);
    for (std::size_t i = 0; i < n; ++i) sorted[i] = series[order[i]];

    // For the sorted position `pos`, the indices (into sorted order) of the
    // k nearest values.
    auto neighbours_of = [&](std::size_t pos) {
      std::vector<std::size_t> neighbours;
      neighbours.reserve(k);
      std::size_t lo = pos;
      std::size_t hi = pos;
      while (neighbours.size() < k) {
        const bool can_lo = lo > 0;
        const bool can_hi = hi + 1 < n;
        if (!can_lo && !can_hi) break;
        const double d_lo =
            can_lo ? sorted[pos] - sorted[lo - 1]
                   : std::numeric_limits<double>::infinity();
        const double d_hi =
            can_hi ? sorted[hi + 1] - sorted[pos]
                   : std::numeric_limits<double>::infinity();
        if (d_lo <= d_hi) {
          --lo;
          neighbours.push_back(lo);
        } else {
          ++hi;
          neighbours.push_back(hi);
        }
      }
      return neighbours;
    };

    // k-distance and local reachability density per sorted position.
    std::vector<double> k_distance(n);
    std::vector<std::vector<std::size_t>> knn(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      knn[pos] = neighbours_of(pos);
      double dmax = 0.0;
      for (std::size_t q : knn[pos]) {
        dmax = std::max(dmax, std::abs(sorted[pos] - sorted[q]));
      }
      k_distance[pos] = dmax;
    }
    std::vector<double> lrd(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      double reach_sum = 0.0;
      for (std::size_t q : knn[pos]) {
        reach_sum += std::max(k_distance[q], std::abs(sorted[pos] - sorted[q]));
      }
      lrd[pos] = reach_sum > 0.0
                     ? static_cast<double>(knn[pos].size()) / reach_sum
                     : std::numeric_limits<double>::infinity();
    }
    for (std::size_t pos = 0; pos < n; ++pos) {
      double lof_sum = 0.0;
      std::size_t finite = 0;
      for (std::size_t q : knn[pos]) {
        if (std::isinf(lrd[pos])) continue;
        lof_sum += lrd[q] / lrd[pos];
        ++finite;
      }
      const double lof =
          finite > 0 ? lof_sum / static_cast<double>(finite) : 1.0;
      if (lof > threshold_) flags[order[pos]] = true;
    }
    return flags;
  }

 private:
  int k_;
  double threshold_;
};

}  // namespace

std::unique_ptr<AnomalyDetector> make_lof(int k, double threshold) {
  return std::make_unique<Lof>(k, threshold);
}

}  // namespace tero::anomaly
