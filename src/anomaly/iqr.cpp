#include "anomaly/iqr.hpp"

#include "stats/descriptive.hpp"

namespace tero::anomaly {

std::vector<bool> iqr_outliers(std::span<const double> values, double k) {
  std::vector<bool> flags(values.size(), false);
  if (values.size() < 4) return flags;
  const double q1 = stats::percentile(values, 25.0);
  const double q3 = stats::percentile(values, 75.0);
  const double iqr = q3 - q1;
  const double lo = q1 - k * iqr;
  const double hi = q3 + k * iqr;
  for (std::size_t i = 0; i < values.size(); ++i) {
    flags[i] = values[i] < lo || values[i] > hi;
  }
  return flags;
}

}  // namespace tero::anomaly
