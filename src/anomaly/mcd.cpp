#include <algorithm>
#include <cmath>

#include "anomaly/detector.hpp"
#include "stats/distributions.hpp"

namespace tero::anomaly {
namespace {

/// 1-D Minimum Covariance Determinant: in one dimension the MCD estimator
/// is exact — the h-subset with the smallest variance is a contiguous
/// window of the sorted sample, so a sliding window finds it in O(n log n).
class Mcd final : public AnomalyDetector {
 public:
  explicit Mcd(double contamination) : contamination_(contamination) {}

  [[nodiscard]] std::string name() const override { return "MCD"; }

  [[nodiscard]] std::vector<bool> detect(
      std::span<const double> series) const override {
    const std::size_t n = series.size();
    std::vector<bool> flags(n, false);
    if (n < 8) return flags;

    std::vector<double> sorted(series.begin(), series.end());
    std::sort(sorted.begin(), sorted.end());
    // Classic h = (n + 2) / 2 subset size.
    const std::size_t h = (n + 2) / 2;

    // Prefix sums for O(1) window variance.
    std::vector<double> sum(n + 1, 0.0);
    std::vector<double> sq(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      sum[i + 1] = sum[i] + sorted[i];
      sq[i + 1] = sq[i] + sorted[i] * sorted[i];
    }
    double best_var = std::numeric_limits<double>::infinity();
    std::size_t best_start = 0;
    for (std::size_t start = 0; start + h <= n; ++start) {
      const double s = sum[start + h] - sum[start];
      const double s2 = sq[start + h] - sq[start];
      const double mean = s / static_cast<double>(h);
      const double var = s2 / static_cast<double>(h) - mean * mean;
      if (var < best_var) {
        best_var = var;
        best_start = start;
      }
    }
    const double mean =
        (sum[best_start + h] - sum[best_start]) / static_cast<double>(h);
    // Consistency factor for the half-sample MCD under normality: the most
    // concentrated half of a normal sample is the central 50% mass, whose
    // variance is sigma^2 * (1 - 2 a phi(a) / 0.5) with a = 0.6745, i.e.
    // ~0.1426 sigma^2 — so the raw sd underestimates sigma by ~2.65x.
    const double raw_sd = std::sqrt(std::max(best_var, 1e-12));
    const double consistency = 2.6477;
    const double sd = raw_sd * consistency;

    // Cutoff from the assumed contamination: flag the tail mass.
    const double cutoff =
        stats::normal_quantile(1.0 - contamination_ / 2.0);
    for (std::size_t i = 0; i < n; ++i) {
      flags[i] = std::abs(series[i] - mean) / sd > cutoff;
    }
    return flags;
  }

 private:
  double contamination_;
};

}  // namespace

std::unique_ptr<AnomalyDetector> make_mcd(double contamination) {
  return std::make_unique<Mcd>(contamination);
}

}  // namespace tero::anomaly
