#pragma once

#include <span>
#include <vector>

namespace tero::anomaly {

/// PELT changepoint detection [26] with a normal-likelihood cost: finds the
/// segmentation minimizing sum of per-segment costs plus `penalty` per
/// changepoint, pruning candidates that can never be optimal (linear
/// expected time). Returns the changepoint indices (each the first index of
/// a new segment), excluding 0 and n.
///
/// The paper reports PELT "did not complete in useful time" on Tero's data;
/// we keep it both as a baseline and to benchmark that claim.
[[nodiscard]] std::vector<std::size_t> pelt_changepoints(
    std::span<const double> series, double penalty);

/// Convenience: default penalty 2 * log(n) * variance-scale (BIC-like).
[[nodiscard]] std::vector<std::size_t> pelt_changepoints(
    std::span<const double> series);

}  // namespace tero::anomaly
