#include <algorithm>
#include <cmath>

#include "anomaly/detector.hpp"
#include "anomaly/iqr.hpp"
#include "util/rng.hpp"

namespace tero::anomaly {
namespace {

/// Average path length of an unsuccessful BST search — the normalizer c(n)
/// from the Isolation Forest paper [29].
double average_path_length(std::size_t n) {
  if (n <= 1) return 0.0;
  const double h = std::log(static_cast<double>(n - 1)) + 0.5772156649;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

/// One isolation tree over a 1-D sample, built implicitly: the expected
/// isolation depth of a query only depends on where random split points
/// fall, so we grow the tree on the sorted sample and answer depth queries
/// by descending it.
class IsolationTree {
 public:
  IsolationTree(std::vector<double> sample, int max_depth, util::Rng& rng) {
    std::sort(sample.begin(), sample.end());
    root_ = build(sample, 0, sample.size(), 0, max_depth, rng);
  }

  [[nodiscard]] double depth_of(double value) const {
    double depth = 0.0;
    int node = root_;
    while (node >= 0) {
      const Node& current = nodes_[static_cast<std::size_t>(node)];
      if (current.leaf_size > 0) {
        return depth + average_path_length(
                           static_cast<std::size_t>(current.leaf_size));
      }
      node = value < current.split ? current.left : current.right;
      depth += 1.0;
    }
    return depth;
  }

 private:
  struct Node {
    double split = 0.0;
    int left = -1;
    int right = -1;
    int leaf_size = 0;  ///< > 0 marks a leaf
  };

  int build(const std::vector<double>& sorted, std::size_t lo, std::size_t hi,
            int depth, int max_depth, util::Rng& rng) {
    const std::size_t count = hi - lo;
    if (count == 0) return -1;
    Node node;
    if (count == 1 || depth >= max_depth || sorted[lo] == sorted[hi - 1]) {
      node.leaf_size = static_cast<int>(count);
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    node.split = rng.uniform(sorted[lo], sorted[hi - 1]);
    const auto mid = static_cast<std::size_t>(
        std::lower_bound(sorted.begin() + static_cast<std::ptrdiff_t>(lo),
                         sorted.begin() + static_cast<std::ptrdiff_t>(hi),
                         node.split) -
        sorted.begin());
    const int self = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    const int left = build(sorted, lo, mid, depth + 1, max_depth, rng);
    const int right = build(sorted, mid, hi, depth + 1, max_depth, rng);
    nodes_[static_cast<std::size_t>(self)].left = left;
    nodes_[static_cast<std::size_t>(self)].right = right;
    return self;
  }

  std::vector<Node> nodes_;
  int root_ = -1;
};

class IForest final : public AnomalyDetector {
 public:
  IForest(int trees, int subsample, double iqr_k, std::uint64_t seed)
      : trees_(trees), subsample_(subsample), iqr_k_(iqr_k), seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "iForests"; }

  [[nodiscard]] std::vector<bool> detect(
      std::span<const double> series) const override {
    const std::size_t n = series.size();
    if (n < 8) return std::vector<bool>(n, false);
    util::Rng rng(seed_);
    const std::size_t sample_size =
        std::min<std::size_t>(static_cast<std::size_t>(subsample_), n);
    const int max_depth = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(sample_size)))) + 1;

    std::vector<double> depth_sum(n, 0.0);
    for (int t = 0; t < trees_; ++t) {
      const auto indices = rng.sample_indices(n, sample_size);
      std::vector<double> sample;
      sample.reserve(sample_size);
      for (std::size_t i : indices) sample.push_back(series[i]);
      const IsolationTree tree(std::move(sample), max_depth, rng);
      for (std::size_t i = 0; i < n; ++i) {
        depth_sum[i] += tree.depth_of(series[i]);
      }
    }
    const double c = average_path_length(sample_size);
    std::vector<double> scores(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double mean_depth = depth_sum[i] / trees_;
      scores[i] = std::pow(2.0, -mean_depth / c);
    }
    // App. J: the paper's fixed-contamination threshold yields too many
    // false anomalies; only scores that are IQR outliers count.
    auto outliers = iqr_outliers(scores, iqr_k_);
    // Isolation scores are one-sided: only high scores are anomalous.
    const double median = stats_median(scores);
    for (std::size_t i = 0; i < n; ++i) {
      if (outliers[i] && scores[i] < median) outliers[i] = false;
    }
    return outliers;
  }

 private:
  static double stats_median(std::vector<double> values) {
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    return values[values.size() / 2];
  }

  int trees_;
  int subsample_;
  double iqr_k_;
  std::uint64_t seed_;
};

}  // namespace

std::unique_ptr<AnomalyDetector> make_iforest(int trees, int subsample,
                                              double iqr_k,
                                              std::uint64_t seed) {
  return std::make_unique<IForest>(trees, subsample, iqr_k, seed);
}

}  // namespace tero::anomaly
