#include "stats/probit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/matrix.hpp"

namespace tero::stats {
namespace {

// Clamp the linear index so Phi stays strictly inside (0, 1).
constexpr double kMaxIndex = 8.0;

double clamped_cdf(double eta) noexcept {
  return normal_cdf(std::clamp(eta, -kMaxIndex, kMaxIndex));
}

}  // namespace

ProbitResult probit_fit(const std::vector<std::vector<double>>& x,
                        std::span<const int> y, int max_iterations,
                        double tolerance) {
  const std::size_t n = x.size();
  if (n == 0 || n != y.size()) {
    throw std::invalid_argument("probit_fit: empty or mismatched input");
  }
  const std::size_t k = x[0].size() + 1;  // + intercept
  for (const auto& row : x) {
    if (row.size() + 1 != k) {
      throw std::invalid_argument("probit_fit: ragged design matrix");
    }
  }

  auto design = [&](std::size_t i, std::size_t j) -> double {
    return j == 0 ? 1.0 : x[i][j - 1];
  };

  ProbitResult result;
  std::vector<double> beta(k, 0.0);

  // Initialize the intercept from the base rate.
  double base_rate = 0.0;
  for (int yi : y) base_rate += yi;
  base_rate /= static_cast<double>(n);
  base_rate = std::clamp(base_rate, 1e-4, 1.0 - 1e-4);
  beta[0] = normal_quantile(base_rate);

  Matrix fisher(k, k);
  std::vector<double> score(k);

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Score vector and expected (Fisher) information.
    for (auto& v : score) v = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) fisher.at(a, b) = 0.0;
    }
    double log_lik = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double eta = 0.0;
      for (std::size_t j = 0; j < k; ++j) eta += beta[j] * design(i, j);
      const double phi = normal_pdf(std::clamp(eta, -kMaxIndex, kMaxIndex));
      const double cdf = std::clamp(clamped_cdf(eta), 1e-12, 1.0 - 1e-12);
      log_lik += y[i] == 1 ? std::log(cdf) : std::log1p(-cdf);
      // Generalized residual: phi * (y - Phi) / (Phi (1 - Phi)).
      const double weight = phi * phi / (cdf * (1.0 - cdf));
      const double resid =
          phi * (static_cast<double>(y[i]) - cdf) / (cdf * (1.0 - cdf));
      for (std::size_t a = 0; a < k; ++a) {
        score[a] += resid * design(i, a);
        for (std::size_t b = a; b < k; ++b) {
          fisher.at(a, b) += weight * design(i, a) * design(i, b);
        }
      }
    }
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < a; ++b) fisher.at(a, b) = fisher.at(b, a);
      fisher.at(a, a) += 1e-10;  // ridge for near-singular designs
    }
    result.log_likelihood = log_lik;

    const auto step = fisher.solve_spd(score);
    double max_step = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      beta[j] += step[j];
      max_step = std::max(max_step, std::abs(step[j]));
    }
    result.iterations = iter + 1;
    if (max_step < tolerance) {
      result.converged = true;
      break;
    }
  }

  result.beta = beta;
  // Standard errors from the inverse Fisher information at the optimum.
  const Matrix cov = fisher.inverse_spd();
  result.std_err.resize(k);
  result.z.resize(k);
  result.p_value.resize(k);
  result.marginal_effect.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    result.std_err[j] = std::sqrt(std::max(0.0, cov.at(j, j)));
    result.z[j] =
        result.std_err[j] > 0.0 ? beta[j] / result.std_err[j] : 0.0;
    result.p_value[j] = z_pvalue(result.z[j]);
  }
  // Average marginal effects: mean_i phi(x_i' beta) * beta_j.
  double mean_phi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double eta = 0.0;
    for (std::size_t j = 0; j < k; ++j) eta += beta[j] * design(i, j);
    mean_phi += normal_pdf(std::clamp(eta, -kMaxIndex, kMaxIndex));
  }
  mean_phi /= static_cast<double>(n);
  for (std::size_t j = 0; j < k; ++j) {
    result.marginal_effect[j] = mean_phi * beta[j];
  }
  return result;
}

ProbitResult probit_fit_single(std::span<const double> x,
                               std::span<const int> y) {
  std::vector<std::vector<double>> design(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) design[i] = {x[i]};
  return probit_fit(design, y);
}

}  // namespace tero::stats
