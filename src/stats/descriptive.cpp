#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tero::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) noexcept {
  double best = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) best = std::min(best, x);
  return best;
}

double max_of(std::span<const double> xs) noexcept {
  double best = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) best = std::max(best, x);
  return best;
}

double percentile_sorted(std::span<const double> sorted, double pct) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, pct);
}

Boxplot boxplot(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("boxplot: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return Boxplot{
      percentile_sorted(sorted, 5),  percentile_sorted(sorted, 25),
      percentile_sorted(sorted, 50), percentile_sorted(sorted, 75),
      percentile_sorted(sorted, 95),
  };
}

double ecdf(std::span<const double> xs, double x) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : xs) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

MeanErr mean_err(std::span<const double> xs) noexcept {
  MeanErr result;
  result.mean = mean(xs);
  if (xs.size() >= 2) {
    result.err = stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
  }
  return result;
}

}  // namespace tero::stats
