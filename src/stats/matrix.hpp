#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tero::stats {

/// Small dense row-major matrix for the regression and MCD machinery.
/// Not a general linear-algebra library — just what the statistics need.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  [[nodiscard]] std::vector<double> multiply(
      std::span<const double> vec) const;

  /// Solve A x = b for symmetric positive-definite A via Cholesky.
  /// Throws std::domain_error if A is not positive definite.
  [[nodiscard]] std::vector<double> solve_spd(std::span<const double> b) const;

  /// Inverse of a symmetric positive-definite matrix via Cholesky.
  [[nodiscard]] Matrix inverse_spd() const;

  /// Determinant of a symmetric positive-definite matrix.
  [[nodiscard]] double determinant_spd() const;

 private:
  /// Lower-triangular Cholesky factor L with A = L L^T.
  [[nodiscard]] Matrix cholesky() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tero::stats
