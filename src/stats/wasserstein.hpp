#pragma once

#include <span>

namespace tero::stats {

/// 1-D Wasserstein-1 (earth mover's) distance between two empirical
/// distributions given as unsorted samples. Computed as the integral of the
/// absolute difference of the two empirical CDFs.
[[nodiscard]] double wasserstein1(std::span<const double> a,
                                  std::span<const double> b);

/// The paper's "uneven-ness" score (§5.1, Fig. 8): how unevenly `timestamps`
/// (all inside [window_start, window_end]) are spread across the window.
/// 0 = perfectly uniform spread, 1 = all points at the same instant.
/// Implemented as W1(points, uniform) / W1(most-uneven, uniform), where the
/// most-uneven distribution puts all points at one end of the window.
[[nodiscard]] double unevenness_score(std::span<const double> timestamps,
                                      double window_start, double window_end);

}  // namespace tero::stats
