#pragma once

#include <cstdint>

namespace tero::stats {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution (via erfc; ~1e-15 accurate).
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Inverse of normal_cdf (Acklam's rational approximation with one
/// Newton refinement; ~1e-12 accurate). Requires 0 < p < 1.
[[nodiscard]] double normal_quantile(double p);

/// log(n choose k) via lgamma.
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n,
                                              std::uint64_t k) noexcept;

/// Binomial point mass P[X = k] for X ~ Bin(n, p), computed in log space so
/// huge n stays finite (used by the shared-anomaly test, App. F).
[[nodiscard]] double binomial_pmf(std::uint64_t n, std::uint64_t k,
                                  double p) noexcept;

/// Upper tail P[X >= k] for X ~ Bin(n, p).
[[nodiscard]] double binomial_tail(std::uint64_t n, std::uint64_t k,
                                   double p) noexcept;

/// Two-sided p-value for a z statistic.
[[nodiscard]] double z_pvalue(double z) noexcept;

}  // namespace tero::stats
