#pragma once

#include <span>
#include <vector>

namespace tero::stats {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Percentile in [0, 100] with linear interpolation between order statistics
/// (the "linear" / type-7 definition). Requires a non-empty input; the input
/// need not be sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double pct);

/// Percentile over data that is already sorted ascending.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double pct) noexcept;

/// The paper's boxplot summary (§5.2): 5th/25th/50th/75th/95th percentiles —
/// deliberately not min/max, to exclude the ~3.7% image-processing errors.
struct Boxplot {
  double p5 = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0;
};
[[nodiscard]] Boxplot boxplot(std::span<const double> xs);

/// Empirical CDF evaluated at `x` (fraction of samples <= x).
[[nodiscard]] double ecdf(std::span<const double> xs, double x) noexcept;

/// Mean and its standard error over per-repetition values, used for the
/// "value +/- err" cells in the paper's tables.
struct MeanErr {
  double mean = 0;
  double err = 0;  ///< standard error of the mean
};
[[nodiscard]] MeanErr mean_err(std::span<const double> xs) noexcept;

}  // namespace tero::stats
