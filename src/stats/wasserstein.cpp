#include "stats/wasserstein.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tero::stats {

double wasserstein1(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("wasserstein1: empty input");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Merge all breakpoints; between consecutive breakpoints both ECDFs are
  // constant, so the integral is a finite sum.
  std::vector<double> points;
  points.reserve(sa.size() + sb.size());
  points.insert(points.end(), sa.begin(), sa.end());
  points.insert(points.end(), sb.begin(), sb.end());
  std::sort(points.begin(), points.end());

  double distance = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    while (ia < sa.size() && sa[ia] <= points[i]) ++ia;
    while (ib < sb.size() && sb[ib] <= points[i]) ++ib;
    const double cdf_a = static_cast<double>(ia) / sa.size();
    const double cdf_b = static_cast<double>(ib) / sb.size();
    distance += std::abs(cdf_a - cdf_b) * (points[i + 1] - points[i]);
  }
  return distance;
}

double unevenness_score(std::span<const double> timestamps,
                        double window_start, double window_end) {
  if (timestamps.empty() || window_end <= window_start) {
    throw std::invalid_argument("unevenness_score: bad input");
  }
  const double width = window_end - window_start;
  const std::size_t n = timestamps.size();

  // W1 between the empirical points and the continuous uniform over the
  // window equals the integral of |ECDF(t) - (t - start)/width| dt. Compute
  // it exactly piecewise between sorted points.
  std::vector<double> sorted(timestamps.begin(), timestamps.end());
  std::sort(sorted.begin(), sorted.end());
  auto w1_vs_uniform = [&](const std::vector<double>& pts) {
    double total = 0.0;
    double prev = window_start;
    for (std::size_t i = 0; i <= pts.size(); ++i) {
      const double next = i < pts.size() ? pts[i] : window_end;
      const double ecdf_val = static_cast<double>(i) / n;
      // Integrate |ecdf_val - (t - start)/width| from prev to next; the
      // integrand is linear in t, crossing zero at most once.
      const double t_cross = window_start + ecdf_val * width;
      auto segment = [&](double lo, double hi) {
        // integral of |c - (t-s)/w| over [lo,hi] with constant c.
        const double flo = ecdf_val - (lo - window_start) / width;
        const double fhi = ecdf_val - (hi - window_start) / width;
        return 0.5 * (std::abs(flo) + std::abs(fhi)) * (hi - lo);
      };
      if (t_cross > prev && t_cross < next) {
        total += segment(prev, t_cross) + segment(t_cross, next);
      } else if (next > prev) {
        total += segment(prev, next);
      }
      prev = next;
    }
    return total;
  };

  const double actual = w1_vs_uniform(sorted);
  // Most uneven: all n points at one end (the far end maximizes distance to
  // the uniform distribution equally at either end; use window_start).
  const std::vector<double> degenerate(n, window_start);
  const double worst = w1_vs_uniform(degenerate);
  return worst > 0.0 ? std::min(1.0, actual / worst) : 0.0;
}

}  // namespace tero::stats
