#include "stats/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace tero::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: shape mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> vec) const {
  if (cols_ != vec.size()) {
    throw std::invalid_argument("Matrix::multiply(vec): shape mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += at(r, c) * vec[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::cholesky() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::cholesky: not square");
  }
  Matrix l(rows_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::domain_error("Matrix::cholesky: not positive definite");
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

std::vector<double> Matrix::solve_spd(std::span<const double> b) const {
  if (b.size() != rows_) {
    throw std::invalid_argument("Matrix::solve_spd: shape mismatch");
  }
  const Matrix l = cholesky();
  // Forward substitution: L y = b.
  std::vector<double> y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[k];
    y[i] = sum / l.at(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(rows_);
  for (std::size_t ii = rows_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < rows_; ++k) sum -= l.at(k, i) * x[k];
    x[i] = sum / l.at(i, i);
  }
  return x;
}

Matrix Matrix::inverse_spd() const {
  Matrix inv(rows_, rows_);
  std::vector<double> unit(rows_, 0.0);
  for (std::size_t c = 0; c < rows_; ++c) {
    unit[c] = 1.0;
    const auto col = solve_spd(unit);
    for (std::size_t r = 0; r < rows_; ++r) inv.at(r, c) = col[r];
    unit[c] = 0.0;
  }
  return inv;
}

double Matrix::determinant_spd() const {
  const Matrix l = cholesky();
  double det = 1.0;
  for (std::size_t i = 0; i < rows_; ++i) det *= l.at(i, i) * l.at(i, i);
  return det;
}

}  // namespace tero::stats
