#include "stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace tero::stats {

double normal_pdf(double x) noexcept {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton step against the true CDF.
  const double err = normal_cdf(x) - p;
  x -= err / normal_pdf(x);
  return x;
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) noexcept {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_tail(std::uint64_t n, std::uint64_t k, double p) noexcept {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum from the tail; terms decay quickly past the mode.
  double total = 0.0;
  for (std::uint64_t i = k; i <= n; ++i) {
    const double term = binomial_pmf(n, i, p);
    total += term;
    if (i > k && term < 1e-18 * total) break;  // converged
  }
  return std::min(1.0, total);
}

double z_pvalue(double z) noexcept {
  return 2.0 * (1.0 - normal_cdf(std::abs(z)));
}

}  // namespace tero::stats
