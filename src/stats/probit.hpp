#pragma once

#include <span>
#include <vector>

namespace tero::stats {

/// Result of a maximum-likelihood Probit fit (the paper's §6 user-behaviour
/// analysis). Coefficients are ordered [intercept, x1, x2, ...].
struct ProbitResult {
  std::vector<double> beta;
  std::vector<double> std_err;
  std::vector<double> z;        ///< beta / std_err
  std::vector<double> p_value;  ///< two-sided
  /// Average marginal effect of each regressor: mean over observations of
  /// phi(x'beta) * beta_j — "how the probability of the outcome changes when
  /// one extra unit of the predictor is added" (§6).
  std::vector<double> marginal_effect;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Fit P[y = 1 | x] = Phi(b0 + b1 x1 + ...) by Newton-Raphson on the
/// log-likelihood. `x` holds one row per observation (all rows the same
/// length, without the intercept column — it is added internally);
/// `y` holds the binary outcomes.
[[nodiscard]] ProbitResult probit_fit(
    const std::vector<std::vector<double>>& x, std::span<const int> y,
    int max_iterations = 100, double tolerance = 1e-9);

/// Convenience wrapper for the paper's single-regressor case (number of
/// spikes -> probability of a server/game change).
[[nodiscard]] ProbitResult probit_fit_single(std::span<const double> x,
                                             std::span<const int> y);

}  // namespace tero::stats
