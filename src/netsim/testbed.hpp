#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace tero::netsim {

/// One experimental condition of Table 2 / Fig. 3: the Test play-station's
/// path crosses a controlled bottleneck shared with iperf-style background
/// traffic; the Control play-station shares the rest of the path only.
struct TestbedConfig {
  double bottleneck_bandwidth_bps = 100e6;
  std::size_t bottleneck_queue_packets = 500;

  /// One-way delay between a play-station and the game server over the
  /// uncongested path; differs per game in the paper (Control displayed
  /// 37 ms for LoL vs 15 ms for Genshin).
  double base_one_way_delay_s = 0.018;
  double bottleneck_propagation_s = 0.0005;

  /// Experiment phases (paper: 120 s / 60 s / 60 s / 60 s; tests shrink
  /// these).
  double warmup_s = 120.0;
  double udp_phase_s = 60.0;
  double mixed_phase_s = 60.0;
  double diedown_s = 60.0;

  /// Traffic sources (Table 2): 2 UDP flows at 50% of bottleneck bandwidth
  /// each; 8 TCP flows staggered by 5 s.
  int udp_flows = 2;
  double udp_fraction_each = 0.5;
  int tcp_flows = 8;
  double tcp_stagger_s = 5.0;
  double tcp_fraction_each = 0.1;  ///< iperf3 -b cap per TCP flow

  /// Game display model: server update rate and smoothing window.
  double game_tick_s = 1.0 / 15.0;
  double display_window_s = 1.5;

  /// Network-latency measurement: small probes through the bottleneck,
  /// averaged over a short window (we cannot read the queue directly any
  /// more than the authors could).
  double probe_hz = 20.0;
  double probe_window_s = 1.0;

  double sample_hz = 5.0;  ///< displayed-latency collection rate (§4.1)
};

/// One sample of the three latency signals, all in milliseconds.
struct LatencySample {
  double t = 0.0;
  double control_display_ms = 0.0;
  double test_display_ms = 0.0;
  double network_ms = 0.0;  ///< measured bottleneck latency
};

struct TestbedResult {
  std::vector<LatencySample> samples;
  /// (test - control) display minus measured network latency, per sample
  /// taken after the displays warmed up.
  std::vector<double> diff_ms;
  double p95_abs_diff_ms = 0.0;
  double max_network_ms = 0.0;
  double mean_control_ms = 0.0;
  double stddev_control_ms = 0.0;
  /// Longest contiguous run of |diff| > 4 ms, in seconds — the "lag"
  /// behaviour at congestion edges (§4.1).
  double worst_exceedance_run_s = 0.0;
  /// Fraction of |diff| > 4 ms samples within 5 s of a traffic phase edge.
  double exceedance_near_edges = 0.0;
  std::uint64_t bottleneck_drops = 0;
  std::uint64_t game_samples = 0;
};

/// Run one full experiment (warmup -> UDP -> UDP+TCP -> die-down) and
/// collect the Fig. 4 measurements.
[[nodiscard]] TestbedResult run_testbed(const TestbedConfig& config,
                                        util::Rng rng);

}  // namespace tero::netsim
