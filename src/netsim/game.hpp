#pragma once

#include <deque>
#include <functional>

#include "netsim/link.hpp"
#include "util/event_loop.hpp"

namespace tero::netsim {

/// A client-server game session with an on-screen latency display (§2.1,
/// §4.1). The server emits a small update packet every tick; the client
/// echoes it immediately; the server takes RTT samples from the echoes and
/// displays their average over a short window — which is the paper's
/// explanation for why the displayed ("gaming") latency lags network latency
/// by a few seconds under sharp congestion changes.
class GameSession {
 public:
  /// Defaults: 15 updates/s, 3 s smoothing window, 120-byte packets.
  GameSession(util::EventLoop& loop, int flow_id, double tick_s = 1.0 / 15.0,
              double window_s = 3.0, int packet_size = 120);

  /// Client -> server path: an optional shared link (the bottleneck) plus a
  /// residual fixed delay for the rest of the path. When `uplink` is null
  /// the whole uplink is the fixed delay.
  void set_uplink(Link* uplink, double residual_delay_s);
  /// Server -> client path (uncongested in the Fig. 3 testbed).
  void set_downlink_delay(double delay_s);

  void start(double start_time, double stop_time);

  /// Called when an echo reaches the server side of the bottleneck; the
  /// testbed routes bottleneck deliveries here. Applies the residual path
  /// delay, then samples RTT.
  void on_bottleneck_delivery(const Packet& packet);

  /// The latency number the game would draw on screen right now, in ms.
  [[nodiscard]] double displayed_latency_ms() const;

  [[nodiscard]] int flow_id() const noexcept { return flow_id_; }
  [[nodiscard]] std::size_t samples() const noexcept { return total_samples_; }

 private:
  void tick();
  void client_receive_update(double stamp);
  void server_receive_echo(double stamp);

  util::EventLoop* loop_;
  int flow_id_;
  double tick_interval_;
  double window_;
  int packet_size_;

  Link* uplink_ = nullptr;
  double uplink_residual_ = 0.0;
  double downlink_delay_ = 0.0;
  double stop_time_ = 0.0;

  struct Sample {
    double time;
    double rtt;
  };
  std::deque<Sample> window_samples_;
  mutable double last_display_ms_ = 0.0;
  std::size_t total_samples_ = 0;
};

}  // namespace tero::netsim
