#include "netsim/testbed.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "netsim/game.hpp"
#include "netsim/link.hpp"
#include "netsim/tcp.hpp"
#include "netsim/udp.hpp"
#include "stats/descriptive.hpp"
#include "util/event_loop.hpp"

namespace tero::netsim {

TestbedResult run_testbed(const TestbedConfig& config, util::Rng rng) {
  util::EventLoop loop;

  // The controlled bottleneck between Router and Switch2 (Fig. 3).
  Link bottleneck(loop, "bottleneck", config.bottleneck_bandwidth_bps,
                  config.bottleneck_propagation_s,
                  config.bottleneck_queue_packets);

  // Game sessions. Control's path avoids the bottleneck entirely; Test's
  // echoes cross it, then a residual delay sized so that both stations see
  // the same base RTT (the paper aborts experiments where they disagree
  // during start-up).
  GameSession control(loop, 100, config.game_tick_s,
                      config.display_window_s);
  control.set_uplink(nullptr, config.base_one_way_delay_s);
  control.set_downlink_delay(config.base_one_way_delay_s);

  GameSession test(loop, 101, config.game_tick_s, config.display_window_s);
  const double residual =
      std::max(0.0, config.base_one_way_delay_s -
                        config.bottleneck_propagation_s -
                        120.0 * 8.0 / config.bottleneck_bandwidth_bps);
  test.set_uplink(&bottleneck, residual);
  test.set_downlink_delay(config.base_one_way_delay_s);

  // Background traffic shares the bottleneck.
  const double traffic_start = config.warmup_s;
  const double udp_stop =
      config.warmup_s + config.udp_phase_s + config.mixed_phase_s;
  std::vector<std::unique_ptr<UdpCbrFlow>> udp_flows;
  for (int i = 0; i < config.udp_flows; ++i) {
    udp_flows.push_back(std::make_unique<UdpCbrFlow>(
        loop, bottleneck, 200 + i,
        config.udp_fraction_each * config.bottleneck_bandwidth_bps,
        traffic_start + rng.uniform(0.0, 0.01), udp_stop));
  }
  std::vector<std::unique_ptr<TcpRenoFlow>> tcp_flows;
  const double tcp_start = config.warmup_s + config.udp_phase_s;
  for (int i = 0; i < config.tcp_flows; ++i) {
    tcp_flows.push_back(std::make_unique<TcpRenoFlow>(
        loop, bottleneck, 300 + i, tcp_start + i * config.tcp_stagger_s,
        udp_stop, 0.002, 1500,
        config.tcp_fraction_each * config.bottleneck_bandwidth_bps));
  }

  // Network-latency probes: tiny packets through the bottleneck whose
  // arrival times yield the measured "network latency" series (averaged
  // over probe_window_s).
  std::deque<std::pair<double, double>> probe_samples;  // (arrival, latency)
  auto probed_network_ms = [&]() {
    const double cutoff = loop.now() - config.probe_window_s;
    double sum = 0.0;
    std::size_t count = 0;
    for (auto it = probe_samples.rbegin(); it != probe_samples.rend(); ++it) {
      if (it->first < cutoff) break;
      sum += it->second;
      ++count;
    }
    if (count == 0) {
      return probe_samples.empty() ? 0.0 : 1000.0 * probe_samples.back().second;
    }
    return 1000.0 * sum / static_cast<double>(count);
  };

  // Demultiplex bottleneck deliveries: game echoes to the Test server side,
  // TCP data to the owning flow's sink, probes to the measurement sink, UDP
  // dropped on the floor (iperf's sink just counts).
  bottleneck.set_receiver([&](const Packet& packet) {
    switch (packet.kind) {
      case PacketKind::kGameEcho:
        if (packet.flow == test.flow_id()) test.on_bottleneck_delivery(packet);
        break;
      case PacketKind::kTcpData:
        for (auto& flow : tcp_flows) {
          if (flow->flow_id() == packet.flow) {
            flow->deliver_data(packet);
            break;
          }
        }
        break;
      case PacketKind::kProbe:
        probe_samples.emplace_back(loop.now(), loop.now() - packet.stamp);
        while (!probe_samples.empty() &&
               probe_samples.front().first <
                   loop.now() - 2.0 * config.probe_window_s) {
          probe_samples.pop_front();
        }
        break;
      default:
        break;  // UDP sink
    }
  });

  const double total =
      config.warmup_s + config.udp_phase_s + config.mixed_phase_s +
      config.diedown_s;
  control.start(0.5, total);
  test.start(0.5, total);
  for (auto& flow : udp_flows) flow->start();
  for (auto& flow : tcp_flows) flow->start();

  // Probe sender.
  std::function<void()> send_probe = [&] {
    Packet probe;
    probe.kind = PacketKind::kProbe;
    probe.flow = 999;
    probe.size_bytes = 64;
    probe.stamp = loop.now();
    bottleneck.send(probe);
    if (loop.now() + 1.0 / config.probe_hz <= total) {
      loop.schedule_after(1.0 / config.probe_hz, send_probe);
    }
  };
  loop.schedule_at(0.1, send_probe);

  // Latency sampler (5x per second in the paper).
  TestbedResult result;
  const double sample_interval = 1.0 / config.sample_hz;
  std::function<void()> sample = [&] {
    LatencySample point;
    point.t = loop.now();
    point.control_display_ms = control.displayed_latency_ms();
    point.test_display_ms = test.displayed_latency_ms();
    point.network_ms = probed_network_ms();
    result.samples.push_back(point);
    if (loop.now() + sample_interval <= total) {
      loop.schedule_after(sample_interval, sample);
    }
  };
  loop.schedule_at(sample_interval, sample);

  loop.run_until(total);

  // ---- Post-processing (§4.1's comparison) ---------------------------------
  const double settle = 2.0 * config.display_window_s + 1.0;
  std::vector<double> control_series;
  std::vector<double> abs_diffs;
  const std::vector<double> edges = {traffic_start, tcp_start, udp_stop};
  std::size_t exceed_total = 0;
  std::size_t exceed_near_edge = 0;
  double run_start = -1.0;
  for (const auto& point : result.samples) {
    if (point.t < settle) continue;
    result.max_network_ms = std::max(result.max_network_ms, point.network_ms);
    control_series.push_back(point.control_display_ms);
    // Adjusted gaming latency minus measured network latency. The idle
    // bottleneck still adds serialization+propagation, which the adjusted
    // gaming latency contains as well, so the difference is ~0 when idle.
    const double adjusted = point.test_display_ms - point.control_display_ms;
    const double diff = adjusted - point.network_ms;
    result.diff_ms.push_back(diff);
    abs_diffs.push_back(std::abs(diff));
    if (std::abs(diff) > 4.0) {
      ++exceed_total;
      if (run_start < 0.0) run_start = point.t;
      result.worst_exceedance_run_s =
          std::max(result.worst_exceedance_run_s, point.t - run_start);
      for (double edge : edges) {
        if (point.t >= edge && point.t <= edge + 5.0) {
          ++exceed_near_edge;
          break;
        }
      }
    } else {
      run_start = -1.0;
    }
  }
  if (!abs_diffs.empty()) {
    result.p95_abs_diff_ms = stats::percentile(abs_diffs, 95.0);
  }
  if (!control_series.empty()) {
    result.mean_control_ms = stats::mean(control_series);
    result.stddev_control_ms = stats::stddev(control_series);
  }
  result.exceedance_near_edges =
      exceed_total > 0
          ? static_cast<double>(exceed_near_edge) / exceed_total
          : 1.0;
  result.bottleneck_drops = bottleneck.drops();
  result.game_samples = test.samples();
  return result;
}

}  // namespace tero::netsim
