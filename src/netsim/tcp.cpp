#include "netsim/tcp.hpp"

#include <algorithm>

namespace tero::netsim {

TcpRenoFlow::TcpRenoFlow(util::EventLoop& loop, Link& forward_link,
                         int flow_id, double start, double stop,
                         double reverse_delay_s, int mss_bytes,
                         double rate_cap_bps)
    : loop_(&loop),
      forward_(&forward_link),
      flow_id_(flow_id),
      start_(start),
      stop_(stop),
      reverse_delay_(reverse_delay_s),
      mss_(mss_bytes),
      rate_cap_bps_(rate_cap_bps) {}

void TcpRenoFlow::start() {
  loop_->schedule_at(start_, [this] {
    try_send();
    arm_rto();
  });
}

void TcpRenoFlow::try_send() {
  if (loop_->now() >= stop_) return;
  const double inflight = static_cast<double>(next_seq_ - highest_acked_ - 1);
  double budget = cwnd_ - inflight;
  const double pace_interval =
      rate_cap_bps_ > 0.0 ? mss_ * 8.0 / rate_cap_bps_ : 0.0;
  while (budget >= 1.0 && loop_->now() < stop_) {
    if (rate_cap_bps_ > 0.0) {
      if (loop_->now() < next_allowed_send_) {
        // Application-limited: come back when the pacing clock allows.
        if (!pace_retry_armed_) {
          pace_retry_armed_ = true;
          loop_->schedule_at(next_allowed_send_, [this] {
            pace_retry_armed_ = false;
            try_send();
          });
        }
        return;
      }
      next_allowed_send_ =
          std::max(next_allowed_send_, loop_->now()) + pace_interval;
    }
    transmit(next_seq_++);
    budget -= 1.0;
  }
}

void TcpRenoFlow::transmit(std::int64_t seq) {
  Packet packet;
  packet.kind = PacketKind::kTcpData;
  packet.flow = flow_id_;
  packet.seq = seq;
  packet.size_bytes = mss_;
  packet.stamp = loop_->now();
  forward_->send(packet);  // a full queue silently drops — that's the signal
}

void TcpRenoFlow::deliver_data(const Packet& packet) {
  if (packet.seq == recv_next_) {
    ++recv_next_;
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == recv_next_) {
      ++recv_next_;
      it = out_of_order_.erase(it);
    }
  } else if (packet.seq > recv_next_) {
    out_of_order_.insert(packet.seq);
  }
  // Cumulative ACK over the uncongested reverse path.
  const std::int64_t ack_seq = recv_next_ - 1;
  const double data_stamp = packet.stamp;
  loop_->schedule_after(reverse_delay_, [this, ack_seq, data_stamp] {
    on_ack(ack_seq, data_stamp);
  });
}

void TcpRenoFlow::on_ack(std::int64_t ack_seq, double data_stamp) {
  // RTT estimate from the echoed data timestamp.
  const double sample = loop_->now() - data_stamp;
  srtt_ = 0.875 * srtt_ + 0.125 * sample;
  rto_ = std::clamp(2.0 * srtt_, 0.2, 10.0);

  if (ack_seq > highest_acked_) {
    const std::int64_t newly_acked = ack_seq - highest_acked_;
    highest_acked_ = ack_seq;
    dup_acks_ = 0;
    if (in_recovery_) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly_acked);  // slow start
    } else {
      cwnd_ += static_cast<double>(newly_acked) / cwnd_;  // AIMD
    }
    arm_rto();
    try_send();
    return;
  }

  // Duplicate ACK.
  ++dup_acks_;
  if (dup_acks_ == 3 && !in_recovery_) {
    // Fast retransmit + fast recovery.
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = ssthresh_ + 3.0;
    in_recovery_ = true;
    ++retransmits_;
    transmit(highest_acked_ + 1);
  } else if (in_recovery_) {
    cwnd_ += 1.0;  // window inflation per extra dupack
    try_send();
  }
}

void TcpRenoFlow::arm_rto() {
  const std::uint64_t epoch = ++rto_epoch_;
  loop_->schedule_after(rto_, [this, epoch] { on_timeout(epoch); });
}

void TcpRenoFlow::on_timeout(std::uint64_t epoch) {
  if (epoch != rto_epoch_) return;  // superseded by a newer ACK
  if (loop_->now() >= stop_ &&
      highest_acked_ + 1 >= next_seq_) {
    return;  // nothing outstanding and past the deadline
  }
  if (highest_acked_ + 1 >= next_seq_) {
    arm_rto();  // idle; keep the timer alive until stop
    return;
  }
  ++timeouts_;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  next_seq_ = highest_acked_ + 1;  // go-back-N
  rto_ = std::min(rto_ * 2.0, 10.0);
  try_send();
  arm_rto();
}

}  // namespace tero::netsim
