#include "netsim/link.hpp"

#include <algorithm>
#include <stdexcept>

namespace tero::netsim {

Link::Link(util::EventLoop& loop, std::string name, double bandwidth_bps,
           double propagation_delay_s, std::size_t queue_capacity)
    : loop_(&loop),
      name_(std::move(name)),
      bandwidth_(bandwidth_bps),
      propagation_(propagation_delay_s),
      capacity_(queue_capacity) {
  if (bandwidth_bps <= 0.0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
}

void Link::purge_departed() const {
  const double now = loop_->now();
  while (!departures_.empty() && departures_.front() <= now) {
    departures_.pop_front();
  }
}

bool Link::send(const Packet& packet) {
  purge_departed();
  if (departures_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  const double now = loop_->now();
  const double serialization = packet.size_bytes * 8.0 / bandwidth_;
  free_at_ = std::max(free_at_, now) + serialization;
  departures_.push_back(free_at_);

  const double arrival = free_at_ + propagation_;
  Packet copy = packet;
  loop_->schedule_at(arrival, [this, copy] {
    ++delivered_;
    if (receiver_) receiver_(copy);
  });
  return true;
}

double Link::current_latency(int probe_size_bytes) const {
  const double now = loop_->now();
  const double queueing = std::max(0.0, free_at_ - now);
  return queueing + probe_size_bytes * 8.0 / bandwidth_ + propagation_;
}

std::size_t Link::queue_length() const {
  purge_departed();
  return departures_.size();
}

}  // namespace tero::netsim
