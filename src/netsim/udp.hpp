#pragma once

#include <cstdint>

#include "netsim/link.hpp"
#include "util/event_loop.hpp"

namespace tero::netsim {

/// Constant-bit-rate UDP source (the iperf3 UDP generators of §4.1). Sends
/// fixed-size packets at `rate_bps` into `link` between `start` and `stop`.
class UdpCbrFlow {
 public:
  UdpCbrFlow(util::EventLoop& loop, Link& link, int flow_id, double rate_bps,
             double start, double stop, int packet_size = 1500);

  /// Arm the first send event. Call once before running the loop.
  void start();

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

 private:
  void send_next();

  util::EventLoop* loop_;
  Link* link_;
  int flow_id_;
  double interval_;
  double start_;
  double stop_;
  int packet_size_;
  std::uint64_t sent_ = 0;
  std::int64_t seq_ = 0;
};

}  // namespace tero::netsim
