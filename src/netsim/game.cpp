#include "netsim/game.hpp"

namespace tero::netsim {

GameSession::GameSession(util::EventLoop& loop, int flow_id, double tick_s,
                         double window_s, int packet_size)
    : loop_(&loop),
      flow_id_(flow_id),
      tick_interval_(tick_s),
      window_(window_s),
      packet_size_(packet_size) {}

void GameSession::set_uplink(Link* uplink, double residual_delay_s) {
  uplink_ = uplink;
  uplink_residual_ = residual_delay_s;
}

void GameSession::set_downlink_delay(double delay_s) {
  downlink_delay_ = delay_s;
}

void GameSession::start(double start_time, double stop_time) {
  stop_time_ = stop_time;
  loop_->schedule_at(start_time, [this] { tick(); });
}

void GameSession::tick() {
  if (loop_->now() >= stop_time_) return;
  // Server update travels the uncongested downlink to the client.
  const double stamp = loop_->now();
  loop_->schedule_after(downlink_delay_,
                        [this, stamp] { client_receive_update(stamp); });
  loop_->schedule_after(tick_interval_, [this] { tick(); });
}

void GameSession::client_receive_update(double stamp) {
  // The client echoes immediately; the echo crosses the bottleneck if one
  // is configured (the Test station), then the residual path.
  if (uplink_ != nullptr) {
    Packet echo;
    echo.kind = PacketKind::kGameEcho;
    echo.flow = flow_id_;
    echo.size_bytes = packet_size_;
    echo.stamp = stamp;
    uplink_->send(echo);  // drop under full queue = lost sample
    return;
  }
  loop_->schedule_after(uplink_residual_,
                        [this, stamp] { server_receive_echo(stamp); });
}

void GameSession::on_bottleneck_delivery(const Packet& packet) {
  const double stamp = packet.stamp;
  loop_->schedule_after(uplink_residual_,
                        [this, stamp] { server_receive_echo(stamp); });
}

void GameSession::server_receive_echo(double stamp) {
  const double rtt = loop_->now() - stamp;
  window_samples_.push_back(Sample{loop_->now(), rtt});
  ++total_samples_;
  while (!window_samples_.empty() &&
         window_samples_.front().time < loop_->now() - window_) {
    window_samples_.pop_front();
  }
}

double GameSession::displayed_latency_ms() const {
  // Average over the smoothing window; hold the last value when no samples
  // arrived recently (all echoes dropped).
  double sum = 0.0;
  std::size_t count = 0;
  const double cutoff = loop_->now() - window_;
  for (const auto& sample : window_samples_) {
    if (sample.time >= cutoff) {
      sum += sample.rtt;
      ++count;
    }
  }
  if (count == 0) return last_display_ms_;
  last_display_ms_ = 1000.0 * sum / static_cast<double>(count);
  return last_display_ms_;
}

}  // namespace tero::netsim
