#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "netsim/packet.hpp"
#include "util/event_loop.hpp"

namespace tero::netsim {

/// A unidirectional link with a fixed-size DropTail queue — the testbed
/// bottleneck of §4.1 (Fig. 3). Serialization delay is size/bandwidth;
/// packets that arrive while `queue_capacity` packets are already waiting
/// or in service are dropped.
///
/// Implementation note: instead of one bookkeeping event per departure, the
/// link tracks the virtual time `free_at_` when the last accepted packet
/// finishes serialization, and purges the departures deque lazily — one
/// event per packet total, which keeps 1 Gbps x minutes simulations cheap.
class Link {
 public:
  using Receiver = std::function<void(const Packet&)>;

  Link(util::EventLoop& loop, std::string name, double bandwidth_bps,
       double propagation_delay_s, std::size_t queue_capacity);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Enqueue a packet; returns false (and counts a drop) when the queue is
  /// full.
  bool send(const Packet& packet);

  /// Instantaneous one-way latency a new packet would experience now
  /// (queueing + its own serialization + propagation): the testbed's
  /// "network latency of the bottleneck link".
  [[nodiscard]] double current_latency(int probe_size_bytes = 1500) const;

  [[nodiscard]] std::size_t queue_length() const;
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double bandwidth_bps() const noexcept { return bandwidth_; }

 private:
  void purge_departed() const;

  util::EventLoop* loop_;
  std::string name_;
  double bandwidth_;
  double propagation_;
  std::size_t capacity_;
  Receiver receiver_;

  double free_at_ = 0.0;  ///< when the link finishes all accepted packets
  mutable std::deque<double> departures_;  ///< serialization-finish times
  std::uint64_t delivered_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace tero::netsim
