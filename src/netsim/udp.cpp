#include "netsim/udp.hpp"

namespace tero::netsim {

UdpCbrFlow::UdpCbrFlow(util::EventLoop& loop, Link& link, int flow_id,
                       double rate_bps, double start, double stop,
                       int packet_size)
    : loop_(&loop),
      link_(&link),
      flow_id_(flow_id),
      interval_(packet_size * 8.0 / rate_bps),
      start_(start),
      stop_(stop),
      packet_size_(packet_size) {}

void UdpCbrFlow::start() {
  loop_->schedule_at(start_, [this] { send_next(); });
}

void UdpCbrFlow::send_next() {
  if (loop_->now() >= stop_) return;
  Packet packet;
  packet.kind = PacketKind::kUdpData;
  packet.flow = flow_id_;
  packet.seq = seq_++;
  packet.size_bytes = packet_size_;
  packet.stamp = loop_->now();
  link_->send(packet);
  ++sent_;
  loop_->schedule_after(interval_, [this] { send_next(); });
}

}  // namespace tero::netsim
