#pragma once

#include <cstdint>
#include <set>

#include "netsim/link.hpp"
#include "util/event_loop.hpp"

namespace tero::netsim {

/// A TCP Reno bulk-transfer flow (the iperf3 TCP generators of §4.1):
/// slow start, congestion avoidance, fast retransmit/recovery on three
/// duplicate ACKs, go-back-N on retransmission timeout. Data packets cross
/// the (possibly congested) forward link; ACKs return over an uncongested
/// reverse path modelled as a fixed delay.
class TcpRenoFlow {
 public:
  /// `rate_cap_bps` > 0 makes the flow application-limited at that rate
  /// (iperf3 -b): it paces sends instead of filling the window, which is how
  /// the paper's "10% BD each" TCP sources behave.
  TcpRenoFlow(util::EventLoop& loop, Link& forward_link, int flow_id,
              double start, double stop, double reverse_delay_s = 0.002,
              int mss_bytes = 1500, double rate_cap_bps = 0.0);

  /// Arm the flow's first transmission. Call once before running the loop.
  void start();

  /// Deliver a data packet at the sink (the testbed routes packets here by
  /// flow id). Generates the cumulative ACK.
  void deliver_data(const Packet& packet);

  [[nodiscard]] int flow_id() const noexcept { return flow_id_; }
  [[nodiscard]] double cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::int64_t delivered() const noexcept { return recv_next_; }
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  void try_send();
  void transmit(std::int64_t seq);
  void on_ack(std::int64_t ack_seq, double data_stamp);
  void arm_rto();
  void on_timeout(std::uint64_t epoch);

  util::EventLoop* loop_;
  Link* forward_;
  int flow_id_;
  double start_;
  double stop_;
  double reverse_delay_;
  int mss_;
  double rate_cap_bps_;
  double next_allowed_send_ = 0.0;  ///< pacing clock when rate-capped
  bool pace_retry_armed_ = false;

  // Sender (Reno) state.
  double cwnd_ = 1.0;
  double ssthresh_ = 64.0;
  std::int64_t next_seq_ = 0;
  std::int64_t highest_acked_ = -1;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  double srtt_ = 0.1;
  double rto_ = 0.5;
  std::uint64_t rto_epoch_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;

  // Receiver state.
  std::int64_t recv_next_ = 0;
  std::set<std::int64_t> out_of_order_;
};

}  // namespace tero::netsim
