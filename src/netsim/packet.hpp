#pragma once

#include <cstdint>

namespace tero::netsim {

enum class PacketKind : std::uint8_t {
  kUdpData,
  kTcpData,
  kTcpAck,
  kGameUpdate,  ///< server -> client, carries the server's timestamp
  kGameEcho,    ///< client -> server, echoes the timestamp back
  kProbe,       ///< measurement probe for the bottleneck's network latency
};

/// A simulated packet. Plain value type; links copy it freely.
struct Packet {
  PacketKind kind = PacketKind::kUdpData;
  int flow = 0;          ///< flow / session identifier
  std::int64_t seq = 0;  ///< sequence number (TCP: first byte's packet index)
  int size_bytes = 1500;
  double stamp = 0.0;    ///< sender timestamp (game RTT measurement)
};

}  // namespace tero::netsim
