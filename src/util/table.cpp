#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace tero::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_double(100.0 * fraction, decimals) + "%";
}

std::string fmt_pm(double value, double err, int decimals) {
  return fmt_double(value, decimals) + " +/- " + fmt_double(err, decimals);
}

}  // namespace tero::util
