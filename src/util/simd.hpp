#pragma once

// Portable 128-bit SIMD layer for the extraction hot path (DESIGN.md §12).
//
// Design rules:
//  - One vector width (128 bit), three backends: SSE2 (x86-64 baseline),
//    NEON (aarch64), and a scalar fallback. The backend is picked at compile
//    time; `enabled()` additionally gates every kernel at runtime so the
//    determinism suites can force the scalar path (TERO_SIMD=off) in the
//    same binary and assert bit-identity.
//  - Every kernel's scalar fallback is BIT-IDENTICAL to its vector path.
//    For the u8 kernels this is free (integer arithmetic). For the float
//    reductions the accumulation order is part of the kernel's contract:
//    four lane-strided partial sums over the first n/4*4 elements, combined
//    as (l0 + l2) + (l1 + l3), then the tail added sequentially. The scalar
//    path implements exactly that order, so `dot_f32(a, b, n)` returns the
//    same bits whether or not SIMD is enabled. (The build stays on baseline
//    SSE2 with no FMA contraction, so the compiler cannot fuse the scalar
//    multiply-adds into operations the vector path does not use.)
//  - Kernels take raw pointers + length; callers are responsible for
//    lifetime. dst may alias src for the pointwise kernels.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define TERO_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define TERO_SIMD_NEON 1
#endif

namespace tero::util::simd {

/// Compile-time backend name, independent of the runtime switch.
[[nodiscard]] constexpr const char* backend() noexcept {
#if defined(TERO_SIMD_SSE2)
  return "sse2";
#elif defined(TERO_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

[[nodiscard]] constexpr bool compiled() noexcept {
#if defined(TERO_SIMD_SSE2) || defined(TERO_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

/// How a pipeline run selects the path. kAuto defers to the TERO_SIMD
/// environment variable ("off"/"0"/"false" force scalar), which is how the
/// CI determinism gate flips a release binary onto the scalar path.
enum class Mode { kAuto, kOn, kOff };

namespace detail {
inline std::atomic<bool>& runtime_flag() noexcept {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("TERO_SIMD");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "false") == 0)) {
      return false;
    }
    return compiled();
  }();
  return flag;
}
}  // namespace detail

/// Runtime dispatch decision: true when the vector path is compiled in and
/// not overridden. Kernels read this once per call.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::runtime_flag().load(std::memory_order_relaxed);
}

/// Force the scalar path (false) or re-enable vectors (true; no-op when the
/// backend is scalar). Used by the bit-identity tests and benchmarks.
inline void set_enabled(bool on) noexcept {
  detail::runtime_flag().store(on && compiled(), std::memory_order_relaxed);
}

inline void apply_mode(Mode mode) noexcept {
  switch (mode) {
    case Mode::kOn:
      set_enabled(true);
      break;
    case Mode::kOff:
      set_enabled(false);
      break;
    case Mode::kAuto: {
      const char* env = std::getenv("TERO_SIMD");
      const bool off = env != nullptr && (std::strcmp(env, "off") == 0 ||
                                          std::strcmp(env, "0") == 0 ||
                                          std::strcmp(env, "false") == 0);
      set_enabled(!off);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// u8 pointwise kernels
// ---------------------------------------------------------------------------

/// dst[i] = src[i] > threshold ? 255 : 0. dst may alias src.
inline void binarize_u8(const std::uint8_t* src, std::uint8_t* dst,
                        std::size_t n, std::uint8_t threshold) noexcept {
  std::size_t i = 0;
  if (threshold == 255) {  // nothing exceeds 255
    std::memset(dst, 0, n);
    return;
  }
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128i t1 = _mm_set1_epi8(static_cast<char>(threshold + 1));
    for (; i + 16 <= n; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      // max(x, t+1) == x  <=>  x >= t+1  <=>  x > t (unsigned).
      const __m128i m = _mm_cmpeq_epi8(_mm_max_epu8(x, t1), x);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), m);
    }
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    const uint8x16_t t = vdupq_n_u8(threshold);
    for (; i + 16 <= n; i += 16) {
      vst1q_u8(dst + i, vcgtq_u8(vld1q_u8(src + i), t));
    }
  }
#endif
  for (; i < n; ++i) dst[i] = src[i] > threshold ? 255 : 0;
}

/// dst[i] = 255 - src[i] (bitwise NOT). dst may alias src.
inline void invert_u8(const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128i ones = _mm_set1_epi8(static_cast<char>(0xff));
    for (; i + 16 <= n; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(x, ones));
    }
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    for (; i + 16 <= n; i += 16) {
      vst1q_u8(dst + i, vmvnq_u8(vld1q_u8(src + i)));
    }
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(255 - src[i]);
}

/// Number of bytes equal to `value`.
[[nodiscard]] inline std::size_t count_eq_u8(const std::uint8_t* src,
                                             std::size_t n,
                                             std::uint8_t value) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128i v = _mm_set1_epi8(static_cast<char>(value));
    const __m128i one = _mm_set1_epi8(1);
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = _mm_setzero_si128();  // two u64 partial counts
    for (; i + 16 <= n; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i m = _mm_and_si128(_mm_cmpeq_epi8(x, v), one);
      acc = _mm_add_epi64(acc, _mm_sad_epu8(m, zero));
    }
    alignas(16) std::uint64_t halves[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(halves), acc);
    count = static_cast<std::size_t>(halves[0] + halves[1]);
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    const uint8x16_t v = vdupq_n_u8(value);
    for (; i + 16 <= n; i += 16) {
      const uint8x16_t m = vandq_u8(vceqq_u8(vld1q_u8(src + i), v),
                                    vdupq_n_u8(1));
      count += vaddvq_u8(m);
    }
  }
#endif
  for (; i < n; ++i) {
    if (src[i] == value) ++count;
  }
  return count;
}

/// Index of the first byte equal to `value`, or n when absent. Backbone of
/// the connected-components label scan: thumbnails are mostly background,
/// so the outer loop skips 16 pixels per compare.
[[nodiscard]] inline std::size_t find_eq_u8(const std::uint8_t* src,
                                            std::size_t n,
                                            std::uint8_t value) noexcept {
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128i v = _mm_set1_epi8(static_cast<char>(value));
    for (; i + 16 <= n; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(x, v));
      if (mask != 0) {
        return i + static_cast<std::size_t>(__builtin_ctz(
                       static_cast<unsigned>(mask)));
      }
    }
  }
#endif
  for (; i < n; ++i) {
    if (src[i] == value) return i;
  }
  return n;
}

/// dst[i] = (a[i]==255 || b[i]==255 || c[i]==255) ? 255 : 0 — the vertical
/// step of the separable 3x3 dilation. dst may alias any input.
inline void eq255_or3_u8(const std::uint8_t* a, const std::uint8_t* b,
                         const std::uint8_t* c, std::uint8_t* dst,
                         std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128i fg = _mm_set1_epi8(static_cast<char>(0xff));
    for (; i + 16 <= n; i += 16) {
      const __m128i ma = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), fg);
      const __m128i mb = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), fg);
      const __m128i mc = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + i)), fg);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_or_si128(ma, _mm_or_si128(mb, mc)));
    }
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    const uint8x16_t fg = vdupq_n_u8(255);
    for (; i + 16 <= n; i += 16) {
      const uint8x16_t ma = vceqq_u8(vld1q_u8(a + i), fg);
      const uint8x16_t mb = vceqq_u8(vld1q_u8(b + i), fg);
      const uint8x16_t mc = vceqq_u8(vld1q_u8(c + i), fg);
      vst1q_u8(dst + i, vorrq_u8(ma, vorrq_u8(mb, mc)));
    }
  }
#endif
  for (; i < n; ++i) {
    dst[i] = (a[i] == 255 || b[i] == 255 || c[i] == 255) ? 255 : 0;
  }
}

/// dst[i] = (a[i]==255 && b[i]==255 && c[i]==255) ? 255 : 0 — the vertical
/// step of the separable 3x3 erosion. dst may alias any input.
inline void eq255_and3_u8(const std::uint8_t* a, const std::uint8_t* b,
                          const std::uint8_t* c, std::uint8_t* dst,
                          std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128i fg = _mm_set1_epi8(static_cast<char>(0xff));
    for (; i + 16 <= n; i += 16) {
      const __m128i ma = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), fg);
      const __m128i mb = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), fg);
      const __m128i mc = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + i)), fg);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_and_si128(ma, _mm_and_si128(mb, mc)));
    }
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    const uint8x16_t fg = vdupq_n_u8(255);
    for (; i + 16 <= n; i += 16) {
      const uint8x16_t ma = vceqq_u8(vld1q_u8(a + i), fg);
      const uint8x16_t mb = vceqq_u8(vld1q_u8(b + i), fg);
      const uint8x16_t mc = vceqq_u8(vld1q_u8(c + i), fg);
      vst1q_u8(dst + i, vandq_u8(ma, vandq_u8(mb, mc)));
    }
  }
#endif
  for (; i < n; ++i) {
    dst[i] = (a[i] == 255 && b[i] == 255 && c[i] == 255) ? 255 : 0;
  }
}

/// dst[i] = t[i-1] | t[i] | t[i+1] over a 0/255 map with zero padding
/// outside [0, n) — the horizontal step of the separable 3x3 dilation.
/// dst must NOT alias t.
inline void neighbor_or3_u8(const std::uint8_t* t, std::uint8_t* dst,
                            std::size_t n) noexcept {
  if (n == 0) return;
  if (n == 1) {
    dst[0] = t[0];
    return;
  }
  dst[0] = t[0] | t[1];
  std::size_t i = 1;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    for (; i + 16 < n; i += 16) {  // needs t[i+16] readable: i+16 <= n-1
      const __m128i left =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i - 1));
      const __m128i mid =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i));
      const __m128i right =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i + 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_or_si128(left, _mm_or_si128(mid, right)));
    }
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    for (; i + 16 < n; i += 16) {
      const uint8x16_t left = vld1q_u8(t + i - 1);
      const uint8x16_t mid = vld1q_u8(t + i);
      const uint8x16_t right = vld1q_u8(t + i + 1);
      vst1q_u8(dst + i, vorrq_u8(left, vorrq_u8(mid, right)));
    }
  }
#endif
  for (; i + 1 < n; ++i) dst[i] = t[i - 1] | t[i] | t[i + 1];
  dst[n - 1] = t[n - 2] | t[n - 1];
}

/// dst[i] = t[i-1] & t[i] & t[i+1] with zero padding outside [0, n) — the
/// horizontal step of the separable 3x3 erosion (borders always erode to 0).
/// dst must NOT alias t.
inline void neighbor_and3_u8(const std::uint8_t* t, std::uint8_t* dst,
                             std::size_t n) noexcept {
  if (n == 0) return;
  dst[0] = 0;  // out-of-bounds left neighbour is background
  if (n == 1) return;
  std::size_t i = 1;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    for (; i + 16 < n; i += 16) {
      const __m128i left =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i - 1));
      const __m128i mid =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i));
      const __m128i right =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i + 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_and_si128(left, _mm_and_si128(mid, right)));
    }
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    for (; i + 16 < n; i += 16) {
      const uint8x16_t left = vld1q_u8(t + i - 1);
      const uint8x16_t mid = vld1q_u8(t + i);
      const uint8x16_t right = vld1q_u8(t + i + 1);
      vst1q_u8(dst + i, vandq_u8(left, vandq_u8(mid, right)));
    }
  }
#endif
  for (; i + 1 < n; ++i) dst[i] = t[i - 1] & t[i] & t[i + 1];
  dst[n - 1] = 0;  // out-of-bounds right neighbour is background
}

/// Byte histogram with four interleaved sub-histograms to break the
/// store-to-load dependency chain of the classic one-table loop (the Otsu
/// accumulation pass). Integer counts, so both paths are trivially
/// bit-identical; the runtime switch only picks the unrolled layout.
inline void histogram_u8(const std::uint8_t* src, std::size_t n,
                         std::uint64_t hist[256]) noexcept {
  std::memset(hist, 0, 256 * sizeof(std::uint64_t));
  if (enabled()) {
    std::uint64_t h0[256] = {};
    std::uint64_t h1[256] = {};
    std::uint64_t h2[256] = {};
    std::uint64_t h3[256] = {};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      ++h0[src[i]];
      ++h1[src[i + 1]];
      ++h2[src[i + 2]];
      ++h3[src[i + 3]];
    }
    for (; i < n; ++i) ++h0[src[i]];
    for (int v = 0; v < 256; ++v) hist[v] = h0[v] + h1[v] + h2[v] + h3[v];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) ++hist[src[i]];
}

// ---------------------------------------------------------------------------
// f32 reductions (the OCR match loops)
//
// Contract: four lane-strided partial sums over the first n/4*4 elements,
// combined as (l0 + l2) + (l1 + l3), then the tail appended sequentially.
// Both paths implement this order exactly, so results are bit-identical.
// ---------------------------------------------------------------------------

namespace detail {
#if defined(TERO_SIMD_SSE2)
[[nodiscard]] inline float reduce4(__m128 v) noexcept {
  // [l0,l1,l2,l3] -> (l0+l2) + (l1+l3)
  const __m128 hi = _mm_movehl_ps(v, v);            // [l2,l3,_,_]
  const __m128 sum2 = _mm_add_ps(v, hi);            // [l0+l2, l1+l3,_,_]
  const __m128 swap = _mm_shuffle_ps(sum2, sum2, 1);  // [l1+l3,...]
  return _mm_cvtss_f32(_mm_add_ss(sum2, swap));
}
#endif
}  // namespace detail

/// sum_i a[i]*b[i] in the lane-strided order documented above.
[[nodiscard]] inline float dot_f32(const float* a, const float* b,
                                   std::size_t n) noexcept {
  const std::size_t n4 = n & ~std::size_t{3};
  float head = 0.0f;
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    __m128 acc = _mm_setzero_ps();
    for (; i < n4; i += 4) {
      acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(a + i),
                                       _mm_loadu_ps(b + i)));
    }
    head = detail::reduce4(acc);
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (; i < n4; i += 4) {
      acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    }
    head = (vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 2)) +
           (vgetq_lane_f32(acc, 1) + vgetq_lane_f32(acc, 3));
  }
#endif
  if (i == 0) {  // scalar path replays the exact lane order
    float l0 = 0.0f, l1 = 0.0f, l2 = 0.0f, l3 = 0.0f;
    for (; i < n4; i += 4) {
      l0 += a[i] * b[i];
      l1 += a[i + 1] * b[i + 1];
      l2 += a[i + 2] * b[i + 2];
      l3 += a[i + 3] * b[i + 3];
    }
    head = (l0 + l2) + (l1 + l3);
  }
  for (; i < n; ++i) head += a[i] * b[i];
  return head;
}

/// sum_i (a[i]-b[i])^2, same accumulation contract as dot_f32.
[[nodiscard]] inline float l2sq_f32(const float* a, const float* b,
                                    std::size_t n) noexcept {
  const std::size_t n4 = n & ~std::size_t{3};
  float head = 0.0f;
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    __m128 acc = _mm_setzero_ps();
    for (; i < n4; i += 4) {
      const __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
      acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    head = detail::reduce4(acc);
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (; i < n4; i += 4) {
      const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
      acc = vaddq_f32(acc, vmulq_f32(d, d));
    }
    head = (vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 2)) +
           (vgetq_lane_f32(acc, 1) + vgetq_lane_f32(acc, 3));
  }
#endif
  if (i == 0) {
    float l0 = 0.0f, l1 = 0.0f, l2 = 0.0f, l3 = 0.0f;
    for (; i < n4; i += 4) {
      const float d0 = a[i] - b[i];
      const float d1 = a[i + 1] - b[i + 1];
      const float d2 = a[i + 2] - b[i + 2];
      const float d3 = a[i + 3] - b[i + 3];
      l0 += d0 * d0;
      l1 += d1 * d1;
      l2 += d2 * d2;
      l3 += d3 * d3;
    }
    head = (l0 + l2) + (l1 + l3);
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    head += d * d;
  }
  return head;
}

/// sum_i |a[i]-b[i]|, same accumulation contract as dot_f32.
[[nodiscard]] inline float l1_f32(const float* a, const float* b,
                                  std::size_t n) noexcept {
  const std::size_t n4 = n & ~std::size_t{3};
  float head = 0.0f;
  std::size_t i = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128 sign_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    __m128 acc = _mm_setzero_ps();
    for (; i < n4; i += 4) {
      const __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
      acc = _mm_add_ps(acc, _mm_and_ps(d, sign_mask));
    }
    head = detail::reduce4(acc);
  }
#elif defined(TERO_SIMD_NEON)
  if (enabled()) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (; i < n4; i += 4) {
      acc = vaddq_f32(acc,
                      vabsq_f32(vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i))));
    }
    head = (vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 2)) +
           (vgetq_lane_f32(acc, 1) + vgetq_lane_f32(acc, 3));
  }
#endif
  if (i == 0) {
    float l0 = 0.0f, l1 = 0.0f, l2 = 0.0f, l3 = 0.0f;
    for (; i < n4; i += 4) {
      l0 += std::fabs(a[i] - b[i]);
      l1 += std::fabs(a[i + 1] - b[i + 1]);
      l2 += std::fabs(a[i + 2] - b[i + 2]);
      l3 += std::fabs(a[i + 3] - b[i + 3]);
    }
    head = (l0 + l2) + (l1 + l3);
  }
  for (; i < n; ++i) head += std::fabs(a[i] - b[i]);
  return head;
}

// ---------------------------------------------------------------------------
// f64 convolution helper (separable Gaussian blur rows)
//
// Outputs are independent pixels, so vectorizing ACROSS outputs keeps each
// output's tap-accumulation order identical to the scalar loop — this kernel
// is bit-identical not only scalar-vs-SIMD but also to the pre-SIMD code.
// ---------------------------------------------------------------------------

/// For x in [0, n): dst[x] = clamp(sum_i kernel[i] * src[x + i], 0, 255)
/// truncated to u8, taps accumulated in order i = 0..taps-1. The caller
/// guarantees src[0 .. n-1+taps-1] is readable (interior of a row).
inline void conv_valid_u8_f64(const std::uint8_t* src, std::size_t n,
                              const double* kernel, std::size_t taps,
                              std::uint8_t* dst) noexcept {
  std::size_t x = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128d lo = _mm_setzero_pd();
    const __m128d hi = _mm_set1_pd(255.0);
    for (; x + 2 <= n; x += 2) {
      __m128d acc = _mm_setzero_pd();
      for (std::size_t i = 0; i < taps; ++i) {
        const __m128d k = _mm_set1_pd(kernel[i]);
        const __m128d v = _mm_set_pd(
            static_cast<double>(src[x + i + 1]),
            static_cast<double>(src[x + i]));
        acc = _mm_add_pd(acc, _mm_mul_pd(k, v));
      }
      acc = _mm_min_pd(_mm_max_pd(acc, lo), hi);
      alignas(16) double vals[2];
      _mm_store_pd(vals, acc);
      dst[x] = static_cast<std::uint8_t>(vals[0]);
      dst[x + 1] = static_cast<std::uint8_t>(vals[1]);
    }
  }
#endif
  for (; x < n; ++x) {
    double sum = 0.0;
    for (std::size_t i = 0; i < taps; ++i) {
      sum += kernel[i] * static_cast<double>(src[x + i]);
    }
    sum = sum < 0.0 ? 0.0 : (sum > 255.0 ? 255.0 : sum);
    dst[x] = static_cast<std::uint8_t>(sum);
  }
}

/// Vertical tap accumulation: for x in [0, n):
/// dst[x] = clamp(sum_i kernel[i] * rows[i][x], 0, 255) truncated to u8,
/// taps in order i = 0..taps-1. `rows` are per-tap row pointers (already
/// clamped to the raster by the caller).
inline void conv_rows_u8_f64(const std::uint8_t* const* rows, std::size_t n,
                             const double* kernel, std::size_t taps,
                             std::uint8_t* dst) noexcept {
  std::size_t x = 0;
#if defined(TERO_SIMD_SSE2)
  if (enabled()) {
    const __m128d lo = _mm_setzero_pd();
    const __m128d hi = _mm_set1_pd(255.0);
    for (; x + 2 <= n; x += 2) {
      __m128d acc = _mm_setzero_pd();
      for (std::size_t i = 0; i < taps; ++i) {
        const __m128d k = _mm_set1_pd(kernel[i]);
        const __m128d v = _mm_set_pd(
            static_cast<double>(rows[i][x + 1]),
            static_cast<double>(rows[i][x]));
        acc = _mm_add_pd(acc, _mm_mul_pd(k, v));
      }
      acc = _mm_min_pd(_mm_max_pd(acc, lo), hi);
      alignas(16) double vals[2];
      _mm_store_pd(vals, acc);
      dst[x] = static_cast<std::uint8_t>(vals[0]);
      dst[x + 1] = static_cast<std::uint8_t>(vals[1]);
    }
  }
#endif
  for (; x < n; ++x) {
    double sum = 0.0;
    for (std::size_t i = 0; i < taps; ++i) {
      sum += kernel[i] * static_cast<double>(rows[i][x]);
    }
    sum = sum < 0.0 ? 0.0 : (sum > 255.0 ? 255.0 : sum);
    dst[x] = static_cast<std::uint8_t>(sum);
  }
}

}  // namespace tero::util::simd
