#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace tero::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

Rng Rng::indexed(std::uint64_t seed, std::uint64_t index) noexcept {
  return Rng{mix_seed(seed, index)};
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::pick_weighted: non-positive total");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k slots end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::uint64_t fnv1a64(std::span<const char> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a;
  (void)splitmix64(state);  // decorrelate from the raw seed value
  state ^= 0xbf58476d1ce4e5b9ULL * (b + 0x94d049bb133111ebULL);
  return splitmix64(state);
}

}  // namespace tero::util
