#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace tero::util {
namespace {

bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

char lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool is_alnum(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::vector<std::string_view> split(std::string_view text,
                                    std::string_view delims) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) pieces.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

namespace {

bool contains_word_impl(std::string_view text, std::string_view word,
                        bool require_capitalized) {
  if (word.empty()) return false;
  for (std::size_t i = 0; i + word.size() <= text.size(); ++i) {
    if (!iequals(text.substr(i, word.size()), word)) continue;
    const bool left_ok = i == 0 || !is_alnum(text[i - 1]);
    const std::size_t end = i + word.size();
    const bool right_ok = end == text.size() || !is_alnum(text[end]);
    if (!left_ok || !right_ok) continue;
    if (require_capitalized &&
        std::isupper(static_cast<unsigned char>(text[i])) == 0) {
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace

bool contains_word(std::string_view text, std::string_view word) {
  return contains_word_impl(text, word, false);
}

bool contains_word_capitalized(std::string_view text, std::string_view word) {
  return contains_word_impl(text, word, true);
}

bool contains_word_exact(std::string_view text, std::string_view word) {
  if (word.empty()) return false;
  for (std::size_t i = 0; i + word.size() <= text.size(); ++i) {
    if (text.substr(i, word.size()) != word) continue;
    const bool left_ok = i == 0 || !is_alnum(text[i - 1]);
    const std::size_t end = i + word.size();
    const bool right_ok = end == text.size() || !is_alnum(text[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

long parse_uint_or(std::string_view text, long fallback) noexcept {
  if (text.empty() || text.size() > 9) return fallback;
  long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return fallback;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string digits_only(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c >= '0' && c <= '9') out += c;
  }
  return out;
}

}  // namespace tero::util
