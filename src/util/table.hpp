#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tero::util {

/// Minimal fixed-width text table used by the bench harnesses to print
/// paper-style rows ("Table 3", "Fig. 9", ...). Cells are strings; columns
/// are sized to their widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Render with a header underline and 2-space column gaps.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
[[nodiscard]] std::string fmt_double(double value, int decimals = 2);
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 2);
[[nodiscard]] std::string fmt_pm(double value, double err, int decimals = 2);

}  // namespace tero::util
