#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tero::util {

/// Minimal discrete-event simulation loop shared by the download-module
/// simulation (App. A) and the packet-level network simulator (§4.1).
/// Events fire in timestamp order; ties break in scheduling order so runs
/// are fully deterministic.
class EventLoop {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] double now() const noexcept { return now_; }

  void schedule_at(double time, Handler handler);
  void schedule_after(double delay, Handler handler);

  /// Run one event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue drains or simulated time would pass
  /// `end_time`; `now()` ends at min(end_time, last event time).
  void run_until(double end_time);

  /// Drain the queue completely.
  void run();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< tie-breaker for determinism
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace tero::util
