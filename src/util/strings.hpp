#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tero::util {

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on any character in `delims`, dropping empty pieces.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  std::string_view delims);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// Case-insensitive substring test.
[[nodiscard]] bool icontains(std::string_view haystack,
                             std::string_view needle);

/// Case-insensitive equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// True if `text` contains `word` bounded by non-alphanumeric characters
/// (case-insensitive). "in Detroit!" contains word "detroit" but not "troi".
[[nodiscard]] bool contains_word(std::string_view text, std::string_view word);

/// Like contains_word, but the occurrence in `text` must start with an
/// uppercase letter — "Turkey is lovely" matches "turkey", "i love turkey
/// sandwiches" does not. Used by the conservative location filter to dodge
/// common-noun/place-name collisions.
[[nodiscard]] bool contains_word_capitalized(std::string_view text,
                                             std::string_view word);

/// Exact-case, word-bounded containment ("US" matches "Detroit, US" but not
/// "join us" or "VIRUS").
[[nodiscard]] bool contains_word_exact(std::string_view text,
                                       std::string_view word);

/// Parse a non-negative integer; returns -1 if `text` is empty, longer than
/// 9 digits, or contains a non-digit.
[[nodiscard]] long parse_uint_or(std::string_view text, long fallback) noexcept;

/// Keep only digit characters.
[[nodiscard]] std::string digits_only(std::string_view text);

}  // namespace tero::util
