#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tero::util {

/// Work-stealing thread pool behind the pipeline's parallel stages.
///
/// Architecture: every background worker owns a deque guarded by its own
/// mutex. A worker pops from the back of its own deque (LIFO, cache-warm)
/// and steals from the *front* of a random victim's deque (FIFO, oldest
/// first). Idle workers park on a condition variable; a monotonically
/// increasing work epoch makes the park/submit handshake immune to missed
/// wakeups.
///
/// `threads` counts the *total* parallelism including the calling thread:
/// a pool of size N spawns N-1 background workers and the thread that calls
/// parallel_for() participates by stealing chunks while it waits. A pool of
/// size 1 spawns no workers at all and parallel_for() degenerates to a plain
/// inline loop — the deterministic fast path.
///
/// Determinism contract: the pool never promises any execution *order*;
/// callers obtain bit-identical results for any thread count by (1) deriving
/// all randomness from the task index (Rng::indexed / mix_seed) and
/// (2) writing results into pre-sized output slots indexed by task id.
/// parallel_map() implements (2) directly.
class ThreadPool {
 public:
  /// threads == 0 resolves to hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (background workers + the calling thread).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Observational scheduling statistics, accumulated since construction
  /// with relaxed atomics (never consulted by the pool itself — scheduling
  /// stays oblivious to them, preserving the determinism contract). Exported
  /// into an obs::MetricsRegistry by obs::record_pool_stats().
  struct Stats {
    std::uint64_t tasks_run = 0;      ///< tasks executed (any thread)
    std::uint64_t steals = 0;         ///< successful victim-queue pops
    std::uint64_t failed_steals = 0;  ///< full victim scans that found nothing
    std::uint64_t parks = 0;          ///< times a worker blocked on the CV
    std::uint64_t max_queue_depth = 0;  ///< high-water mark of any one deque
    std::uint64_t parallel_for_calls = 0;
    std::uint64_t parallel_for_failures = 0;  ///< calls that rethrew
    /// Chunk index whose fn() threw in the most recent failing
    /// parallel_for, -1 if none ever failed. Chunks are numbered from 0 in
    /// range order, so callers can map it back to [begin + chunk * grain,
    /// ...) and surface it as a metric label.
    std::int64_t last_failed_chunk = -1;
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Resolve a user-facing thread knob: 0 -> hardware_concurrency, else n.
  [[nodiscard]] static std::size_t resolve(std::size_t threads) noexcept;

  /// Run fn(i) for every i in [begin, end), splitting the range into chunks
  /// of `grain` indices. Blocks until every index has been processed.
  /// The first exception thrown by fn is rethrown here (remaining chunks
  /// that have not started yet are skipped). Nested calls from inside fn are
  /// supported: a waiting thread executes other tasks instead of blocking,
  /// so inner parallel_for calls cannot deadlock the pool.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// Fire-and-forget task; with no background workers it runs inline.
  /// Tasks still queued when the pool is destroyed are drained by the
  /// destructor before the workers exit.
  void submit(std::function<void()> task);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void push_task(std::function<void()> task);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t thief_hint, std::function<void()>& task);
  void worker_loop(std::size_t self);

  std::size_t size_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::uint64_t work_epoch_ = 0;  ///< guarded by park_mutex_
  bool stop_ = false;             ///< guarded by park_mutex_
  std::atomic<std::uint64_t> next_queue_{0};  ///< round-robin push cursor

  // Scheduling statistics (see Stats). All relaxed: they order nothing.
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> failed_steals_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> parallel_for_failures_{0};
  std::atomic<std::int64_t> last_failed_chunk_{-1};
};

/// parallel_for over an optional pool: a null pool (or a pool of size 1)
/// runs the loop inline on the calling thread.
void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

/// Deterministic parallel map: results[i] = fn(i), written into a pre-sized
/// vector indexed by task id, so the output is identical for any thread
/// count. The result type must be default-constructible.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool* pool, std::size_t n,
                                std::size_t grain, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{}))>;
  std::vector<Result> results(n);
  parallel_for(pool, n, grain,
               [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace tero::util
