#include "util/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace tero::util {

void EventLoop::schedule_at(double time, Handler handler) {
  if (time < now_) {
    throw std::invalid_argument("EventLoop: scheduling into the past");
  }
  queue_.push(Event{time, next_seq_++, std::move(handler)});
}

void EventLoop::schedule_after(double delay, Handler handler) {
  schedule_at(now_ + delay, std::move(handler));
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // Copy out before pop so the handler may schedule new events.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  event.handler();
  return true;
}

void EventLoop::run_until(double end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    step();
  }
  now_ = std::max(now_, end_time);
}

void EventLoop::run() {
  while (step()) {
  }
}

}  // namespace tero::util
