#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace tero::util {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library draws from an Rng
/// that is explicitly passed in, so all experiments are reproducible from a
/// single seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derive an independent child generator; used to give each simulated
  /// entity its own stream without coupling their draw sequences.
  [[nodiscard]] Rng fork() noexcept;

  /// Stateless per-task derivation: an independent generator for task
  /// `index` under `seed`. Unlike fork(), the result depends only on
  /// (seed, index) — not on how many draws happened before — which is what
  /// makes parallel loops bit-identical for any thread count: give task i
  /// the generator Rng::indexed(seed, i) and no draw sequence ever crosses
  /// a task boundary.
  [[nodiscard]] static Rng indexed(std::uint64_t seed,
                                   std::uint64_t index) noexcept;

  std::uint64_t next_u64() noexcept;

  // UniformRandomBitGenerator interface, usable with <random> distributions.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Standard normal via Box-Muller.
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) noexcept;
  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large means).
  std::uint64_t poisson(double mean) noexcept;
  /// Pareto (heavy-tailed) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Uniformly choose an element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>{items});
  }

  /// Choose an index with probability proportional to weights[i].
  std::size_t pick_weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// 64-bit FNV-1a hash; used for consistent hashing of streamer IDs (§7 of the
/// paper: streamer IDs are pseudonymized before storage).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const char> bytes) noexcept;

/// Mix two 64-bit values into one well-distributed seed (SplitMix64-based).
/// Basis of the seed-splitting scheme behind Rng::indexed.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t a,
                                     std::uint64_t b) noexcept;

}  // namespace tero::util
