#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace tero::util {
namespace {

/// Cheap xorshift for victim selection. Scheduling randomness never affects
/// results (see the determinism contract in the header), so this only needs
/// to spread thieves across victims, not be a good generator.
std::uint64_t xorshift(std::uint64_t& state) noexcept {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

std::size_t ThreadPool::resolve(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) : size_(resolve(threads)) {
  const std::size_t workers = size_ > 0 ? size_ - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    stop_ = true;
  }
  park_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::push_task(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
    depth = workers_[target]->queue.size();
  }
  std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    ++work_epoch_;
  }
  park_cv_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  push_task(std::move(task));
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  Stats stats;
  stats.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.failed_steals = failed_steals_.load(std::memory_order_relaxed);
  stats.parks = parks_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.parallel_for_calls =
      parallel_for_calls_.load(std::memory_order_relaxed);
  stats.parallel_for_failures =
      parallel_for_failures_.load(std::memory_order_relaxed);
  stats.last_failed_chunk = last_failed_chunk_.load(std::memory_order_relaxed);
  return stats;
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  Worker& worker = *workers_[self];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.queue.empty()) return false;
  task = std::move(worker.queue.back());
  worker.queue.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief_hint,
                           std::function<void()>& task) {
  if (workers_.empty()) return false;
  std::uint64_t state = thief_hint * 0x9e3779b97f4a7c15ULL + 1;
  const std::size_t start =
      static_cast<std::size_t>(xorshift(state)) % workers_.size();
  for (std::size_t offset = 0; offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(start + offset) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.front());
    victim.queue.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  failed_steals_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::uint64_t steal_state = (self + 1) * 0x2545f4914f6cdd1dULL;
  for (;;) {
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      epoch = work_epoch_;
    }
    std::function<void()> task;
    if (try_pop_own(self, task) ||
        try_steal(static_cast<std::size_t>(xorshift(steal_state)), task)) {
      task();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (stop_) return;  // all queues were empty at the scan above: drained
    if (work_epoch_ == epoch) {
      parks_.fetch_add(1, std::memory_order_relaxed);  // will actually block
    }
    park_cv_.wait(lock,
                  [&] { return stop_ || work_epoch_ != epoch; });
    if (stop_ && work_epoch_ == epoch) return;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = end - begin;
  const std::size_t chunk = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  if (workers_.empty() || num_chunks == 1) {
    // Inline fast path, chunk-wise so failure accounting matches the
    // parallel path: a throw records which chunk failed, then propagates.
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t chunk_begin = begin + c * chunk;
      const std::size_t chunk_end = std::min(end, chunk_begin + chunk);
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      } catch (...) {
        parallel_for_failures_.fetch_add(1, std::memory_order_relaxed);
        last_failed_chunk_.store(static_cast<std::int64_t>(c),
                                 std::memory_order_relaxed);
        throw;
      }
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Per-call batch state. Lives on the caller's stack: safe because this
  // function does not return until pending == 0, i.e. until every chunk
  // task has finished touching it.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending;
    std::exception_ptr error;
    std::size_t error_chunk = 0;  ///< chunk whose fn() threw first
  };
  Batch batch;
  batch.pending = num_chunks;

  auto run_chunk = [&batch, &fn](std::size_t chunk_index,
                                 std::size_t chunk_begin,
                                 std::size_t chunk_end) {
    bool skip;
    {
      std::lock_guard<std::mutex> lock(batch.mutex);
      skip = batch.error != nullptr;  // fail fast after the first throw
    }
    if (!skip) {
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.mutex);
        if (!batch.error) {
          batch.error = std::current_exception();
          batch.error_chunk = chunk_index;
        }
      }
    }
    std::lock_guard<std::mutex> lock(batch.mutex);
    if (--batch.pending == 0) batch.done.notify_all();
  };

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t chunk_begin = begin + c * chunk;
    const std::size_t chunk_end = std::min(end, chunk_begin + chunk);
    push_task([run_chunk, c, chunk_begin, chunk_end] {
      run_chunk(c, chunk_begin, chunk_end);
    });
  }

  // Help instead of blocking: steal and execute tasks (our own chunks, or —
  // under nested submission — anybody's) until our batch completes. Only
  // block once no runnable task exists anywhere, which means every remaining
  // chunk of this batch is already executing on some other thread.
  std::uint64_t steal_state = 0x853c49e6748fea9bULL;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batch.mutex);
      if (batch.pending == 0) break;
    }
    std::function<void()> task;
    if (try_steal(static_cast<std::size_t>(xorshift(steal_state)), task)) {
      task();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch.mutex);
    batch.done.wait(lock, [&] { return batch.pending == 0; });
    break;
  }

  if (batch.error) {
    parallel_for_failures_.fetch_add(1, std::memory_order_relaxed);
    last_failed_chunk_.store(static_cast<std::int64_t>(batch.error_chunk),
                             std::memory_order_relaxed);
    std::rethrow_exception(batch.error);
  }
}

void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(0, n, grain, fn);
}

}  // namespace tero::util
