#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "fault/policy.hpp"
#include "serve/snapshot.hpp"

namespace tero::util {
class ThreadPool;
}  // namespace tero::util

namespace tero::control {

/// Deterministic closed-loop overload sweep (DESIGN.md §16): an open-loop
/// Zipf query stream at a fixed offered rate drives a QueryService whose
/// knobs — admission token rate, brownout rung, provisioned shard count,
/// queue bound — are actuated live by a Controller reading virtual-time
/// telemetry, while a scripted chaos schedule (shard kill, replication
/// delay, tsdb read errors) churns underneath.
///
/// Three-phase execution (the cluster loadgen pattern): Phase A walks
/// arrivals serially on the virtual clock and takes every stateful decision
/// — controller ticks, admission, brownout, breaker transitions, fault
/// draws, the queueing model — so outcomes depend only on (seed, config).
/// Phase B fans the fixed routing decisions out to a pool for pure
/// serve::answer evaluation. Phase C folds the checksum. The decision log
/// and checksum are therefore bit-identical for any thread count.

/// One scripted chaos window, in fractions of the run's virtual duration.
struct ChaosWindow {
  enum class Kind : std::uint8_t {
    kShardKill,  ///< the shard fails every request (node kill)
    kReplDelay,  ///< replication lags: publishes pause, reads go stale
    kTsdbError,  ///< the historical store refuses reads (tsdb.read)
  };
  Kind kind = Kind::kShardKill;
  double begin_frac = 0.0;
  double end_frac = 0.0;
  std::size_t shard = 0;  ///< kShardKill only
};

/// The standard chaos plan the acceptance gates run under: one shard killed
/// mid-run, a replication-delay window, a tsdb error window.
[[nodiscard]] std::vector<ChaosWindow> standard_chaos_windows();

struct SweepConfig {
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  /// Virtual run length; the query count is duration_s * offered rate.
  double duration_s = 12.0;
  /// Offered load: explicit qps, or (when <= 0) load_multiplier times the
  /// nominal capacity initial_shards * shard_unit_qps.
  double offered_qps = 0.0;
  double load_multiplier = 1.0;
  double zipf_s = 1.1;
  /// Fraction of queries tagged as historical (tsdb-backed): they cost the
  /// range-kind price, fail during tsdb windows, and the ladder disables
  /// them from kCachedOnly up.
  double p_history = 0.05;

  ControllerConfig controller;

  /// Background fault noise, always on (the windows ride on top).
  std::string fault_plan = "serve.shard*=error@0.02;tsdb.read=error@0.1";
  std::vector<ChaosWindow> windows = standard_chaos_windows();
  /// During a kReplDelay window the per-query draw under this probability
  /// forces a stale (previous-epoch) read — the replica hasn't applied.
  double repl_stale_prob = 0.6;
  fault::CircuitBreaker::Config breaker{5, 2.0, 2};

  /// Republish cadence (epoch advance) on the virtual clock.
  double publish_every_s = 2.0;
  std::uint64_t scrape_every_ms = 100;
  std::string slo_spec =
      "slo latency: p99(tero.control.latency_ms) < 25ms over 10s window, "
      "budget 5%";
  std::uint64_t slo_fast_window_ms = 2000;
};

struct SweepReport {
  std::size_t issued = 0;
  std::size_t ok = 0;
  std::size_t not_found = 0;
  std::size_t stale = 0;        ///< served from the previous epoch
  std::size_t shed = 0;         ///< token + overflow sheds
  std::size_t overflow = 0;     ///< queue-bound overflow subset of shed
  std::size_t brownout = 0;     ///< refused by the ladder
  std::size_t unavailable = 0;  ///< tsdb window / no epoch to degrade to
  double shed_fraction = 0.0;
  double denied_fraction = 0.0;  ///< (shed+brownout+unavailable) / issued
  double stale_fraction = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double slo_good_fraction = 1.0;
  bool slo_fired = false;
  /// Virtual time of the first shed and the first ladder-up decision
  /// (0 = never); the acceptance gate "brownout engages before shedding".
  std::uint64_t first_shed_ms = 0;
  std::uint64_t first_ladder_ms = 0;
  bool ladder_engaged_before_shed = false;
  int max_level = 0;
  std::size_t peak_shards = 0;
  std::size_t min_channel_capacity = 0;
  std::size_t ticks = 0;
  std::uint64_t checksum = 0;         ///< XOR of hash_response(i, ...)
  std::uint64_t decision_digest = 0;  ///< fnv1a64 of decision_log
  std::string decision_log;           ///< byte-stable, one line per tick
  double offered_qps = 0.0;
  double wall_ms = 0.0;  ///< timing only; never part of the checksum
};

/// Run one sweep cell. `entries` is the serving dataset (published twice up
/// front so a previous epoch exists for stale reads); `pool` parallelizes
/// Phase B only (nullptr = serial).
[[nodiscard]] SweepReport run_control_sweep(
    std::vector<serve::SnapshotEntry> entries, const SweepConfig& config,
    util::ThreadPool* pool);

}  // namespace tero::control
