#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "serve/brownout.hpp"

namespace tero::obs {
class MetricsTimeline;
class SloTracker;
}  // namespace tero::obs

namespace tero::control {

/// Closed-loop overload controller (DESIGN.md §16). The controller is a
/// deterministic state machine: every tick it reads a Signals struct —
/// scraped from the virtual-time MetricsTimeline / SloTracker, never from
/// wall clocks — and emits a Decision setting the four actuation knobs the
/// system exposes: the admission token rate, the brownout ladder rung, the
/// active shard count, and the stream channel capacity bounding the queue.
/// Because both inputs and transition rules are pure functions of virtual
/// time, the full decision log is bit-identical for any thread count and
/// reproducible per seed — resilience behavior itself is a determinism
/// gate.

enum class Policy : std::uint8_t {
  /// Fixed admission rate, no ladder, no scaling — the open-loop baseline
  /// today's BENCH_serve numbers come from.
  kStatic = 0,
  /// Multi-window burn-rate feedback: escalate while both the fast and the
  /// slow SLO burn windows run hot (or sheds/queue delay breach their
  /// floors), de-escalate after a sustained calm hold. Ladder rungs engage
  /// *before* the admission rate ever drops — brownout before shedding.
  kReactive = 1,
  /// Reactive plus slope extrapolation of the offered rate: pre-escalates
  /// when the *predicted* utilization a few ticks ahead breaches the
  /// target, buying headroom before the queue builds.
  kPredictive = 2,
};

[[nodiscard]] std::string_view to_string(Policy policy) noexcept;
/// Parse "static" | "reactive" | "predictive"; throws std::invalid_argument.
[[nodiscard]] Policy parse_policy(std::string_view text);

struct ControllerConfig {
  Policy policy = Policy::kReactive;
  std::uint64_t tick_every_ms = 100;

  /// Capacity model: one healthy shard serves this many cost units per
  /// second (a cost unit = one full-fidelity point percentile; see
  /// serve::query_kind_cost).
  double shard_unit_qps = 1000.0;
  std::size_t min_shards = 2;
  std::size_t max_shards = 8;
  std::size_t initial_shards = 4;

  /// Admission tracks `utilization_target * capacity / rung cost` so the
  /// queue drains instead of merely not growing; the static policy pins
  /// rate to target_rate(kFull, initial_shards) forever.
  double utilization_target = 0.9;
  /// Token-bucket burst, in seconds of admission at the current rate.
  double burst_s = 1.0;

  /// Stream channel capacity (cost units of queue the system will hold
  /// before overflow sheds); the last-resort squeeze halves it down to the
  /// floor, recovery restores it.
  std::size_t base_channel_capacity = 8192;
  std::size_t min_channel_capacity = 512;

  // Escalation thresholds (reactive + predictive).
  double burn_up = 1.0;      ///< both windows at/above => hot
  double burn_down = 0.5;    ///< both windows below => calm
  double shed_up = 0.005;    ///< shed fraction (fast window) => hot
  double queue_high_s = 0.5; ///< queue delay => hot
  double queue_low_s = 0.05; ///< queue delay below => calm
  std::uint64_t hold_ticks = 5;  ///< calm ticks before one de-escalation

  // Predictive extrapolation.
  std::size_t slope_window = 8;  ///< offered-rate samples in the fit
  double horizon_ticks = 5.0;    ///< look-ahead, in ticks
  double util_up = 0.9;          ///< predicted utilization => pre-escalate
};

/// One tick's inputs, all derived from virtual-time telemetry.
struct Signals {
  std::uint64_t t_ms = 0;
  double offered_qps = 0.0;    ///< arrival rate over the fast window
  double shed_fraction = 0.0;  ///< denied{shed} / arrivals, fast window
  double queue_depth = 0.0;    ///< backlog, cost units
  double queue_delay_s = 0.0;  ///< backlog / healthy capacity
  double p99_ms = 0.0;         ///< latency p99 over the fast window
  double burn_fast = 0.0;      ///< SLO fast-window burn rate
  double burn_slow = 0.0;      ///< SLO slow-window burn rate
  bool slo_firing = false;
  std::size_t breakers_open = 0;  ///< shards whose breaker is not closed
};

/// Series names Controller::scrape reads; defaults match the control
/// sweep's registry layout.
struct SignalSeries {
  std::string arrivals = "tero.control.arrivals";
  std::string shed;  ///< denied{reason=shed} counter; default set in .cpp
  std::string queue_depth = "tero.control.queue_depth";
  std::string latency = "tero.control.latency_ms";
  std::string slo = "latency";       ///< SLO name in the tracker
  std::uint64_t fast_window_ms = 2000;

  SignalSeries();
};

/// One controller decision: the post-tick knob settings plus the action
/// taken and the signals that caused it (rendered into the decision log).
struct Decision {
  std::uint64_t tick = 0;
  std::uint64_t t_ms = 0;
  serve::BrownoutLevel brownout = serve::BrownoutLevel::kFull;
  double admission_rate_qps = 0.0;
  double admission_burst = 0.0;
  std::size_t shards = 0;
  std::size_t channel_capacity = 0;
  bool changed = false;        ///< any knob moved this tick
  std::string action;          ///< "hold", "ladder-up", "scale-out", ...
  std::string reason;          ///< cause tag, e.g. "burn" or "queue"
  Signals signals;
};

class Controller {
 public:
  explicit Controller(ControllerConfig config);

  /// Advance one tick. Appends the decision to the log and returns it.
  const Decision& tick(const Signals& signals);

  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] serve::BrownoutLevel brownout() const noexcept {
    return serve::brownout_level(level_);
  }
  [[nodiscard]] double admission_rate() const noexcept { return rate_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t channel_capacity() const noexcept {
    return channel_capacity_;
  }
  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }

  /// The admission rate the capacity model prescribes for (rung, shards):
  /// utilization_target * healthy capacity / estimated per-query cost at
  /// the rung. Exposed for tests and the bench's frontier math.
  [[nodiscard]] double target_rate(serve::BrownoutLevel level,
                                   std::size_t healthy_shards) const;

  /// Render the decision log, one line per tick. The format is fixed and
  /// every field is a deterministic function of (seed, config), so the
  /// bytes are identical across thread counts — `cmp` in CI relies on it.
  void write_log(std::ostream& os) const;
  [[nodiscard]] std::string log_text() const;
  /// fnv1a64 of log_text() — the compact witness recorded in BENCH JSON.
  [[nodiscard]] std::uint64_t log_digest() const;

  /// Scrape a Signals struct from virtual-time telemetry. breakers_open
  /// cannot be derived from the timeline (gauge names are per-endpoint);
  /// the caller fills it in afterwards.
  [[nodiscard]] static Signals scrape(const obs::MetricsTimeline& timeline,
                                      const obs::SloTracker* slo,
                                      const SignalSeries& series);

 private:
  [[nodiscard]] double predicted_utilization() const;

  ControllerConfig config_;
  int level_ = 0;               ///< brownout rung, 0..kBrownoutLevels-1
  std::size_t shards_;
  std::size_t channel_capacity_;
  double rate_;
  std::uint64_t calm_ticks_ = 0;
  std::uint64_t ticks_ = 0;
  std::vector<double> offered_history_;  ///< ring of recent offered rates
  std::vector<Decision> decisions_;
};

}  // namespace tero::control
