#include "control/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "serve/brownout.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tero::control {

namespace {

// Seed salts for the sweep's independent draw streams (the Rng::indexed
// scheme: one salt per stream, one index per query).
constexpr std::uint64_t kHistorySalt = 0x74646268ULL;  ///< history tagging
constexpr std::uint64_t kReplSalt = 0x7265706cULL;     ///< repl-delay stales
constexpr std::uint64_t kLatencySalt = 0x63747254ULL;  ///< service time

/// Phase A's routing verdict for one arrival — everything Phase B needs to
/// build the response without touching shared state.
enum class Outcome : std::uint8_t {
  kServe = 0,    ///< fresh answer from the epoch current at arrival
  kServeStale,   ///< degraded/stale-tolerant answer from the prior epoch
  kShed,         ///< admission token bucket empty
  kOverflow,     ///< queue bound exceeded (counts as shed)
  kBrownout,     ///< ladder refused the kind
  kUnavailable,  ///< tsdb refused, or nothing to degrade to
};

struct Route {
  Outcome outcome = Outcome::kShed;
  std::uint32_t epoch_index = 0;  ///< into the sweep's snapshot history
  std::uint32_t stale_age = 1;
  double param = 0.0;  ///< post-brownout query parameter
};

[[nodiscard]] bool window_active(const ChaosWindow& window,
                                 double frac) noexcept {
  return frac >= window.begin_frac && frac < window.end_frac;
}

}  // namespace

std::vector<ChaosWindow> standard_chaos_windows() {
  return {
      {ChaosWindow::Kind::kShardKill, 0.30, 0.45, 1},
      {ChaosWindow::Kind::kReplDelay, 0.55, 0.65, 0},
      {ChaosWindow::Kind::kTsdbError, 0.70, 0.80, 0},
  };
}

SweepReport run_control_sweep(std::vector<serve::SnapshotEntry> entries,
                              const SweepConfig& config,
                              util::ThreadPool* pool) {
  const auto wall_start = std::chrono::steady_clock::now();

  Controller controller(config.controller);
  const ControllerConfig& ctl = controller.config();  // post-clamp values
  const std::uint64_t tick_every = std::max<std::uint64_t>(1,
                                                           ctl.tick_every_ms);

  const double nominal =
      static_cast<double>(ctl.initial_shards) * ctl.shard_unit_qps;
  const double offered = config.offered_qps > 0.0
                             ? config.offered_qps
                             : std::max(1.0, config.load_multiplier * nominal);
  const double duration_s = std::max(0.001, config.duration_s);
  const auto total_queries =
      static_cast<std::size_t>(std::max(1.0, offered * duration_s));
  const auto duration_ms = static_cast<std::uint64_t>(duration_s * 1000.0);

  // --- Telemetry plane: registry + virtual-time timeline + SLO tracker. ---
  obs::MetricsRegistry registry;
  obs::TimelineConfig timeline_config;
  timeline_config.scrape_every_ms = config.scrape_every_ms;
  timeline_config.capacity = 4096;
  timeline_config.prefixes = {"tero.control.", "tero.serve."};
  obs::MetricsTimeline timeline(registry, timeline_config);
  obs::SloTracker tracker(
      obs::SloTracker::Config{config.slo_fast_window_ms, 1.0});
  if (!config.slo_spec.empty()) tracker.add(config.slo_spec);
  tracker.attach(timeline);

  obs::Counter& arrivals = registry.counter("tero.control.arrivals");
  obs::Counter& served_counter = registry.counter("tero.control.served");
  obs::Counter& stale_counter = registry.counter("tero.control.stale");
  obs::Counter& overflow_counter = registry.counter("tero.control.overflow");
  obs::Counter& brownout_counter = registry.counter("tero.control.brownout");
  obs::Counter& unavailable_counter =
      registry.counter("tero.control.unavailable");
  obs::Gauge& queue_gauge = registry.gauge("tero.control.queue_depth");
  obs::Histogram& latency_hist =
      registry.histogram("tero.control.latency_ms");
  const serve::DeniedCounters denied(&registry);

  // --- Serving plane: the service under control, at max provisioning. ---
  serve::ServeConfig serve_config;
  serve_config.shards = ctl.max_shards;
  serve_config.cache_capacity = 4096;
  serve_config.metrics = &registry;
  serve::QueryService service(serve_config);
  service.set_admission_rate(0.0, controller.admission_rate(),
                             controller.admission_rate() * ctl.burst_s);

  // Publish twice up front so a previous epoch exists for degraded reads.
  std::vector<serve::SnapshotPtr> epochs;
  service.publish(entries);
  epochs.push_back(service.snapshot());
  service.publish(entries);
  epochs.push_back(service.snapshot());

  serve::LoadGenConfig gen;
  gen.queries = total_queries;
  gen.seed = config.seed;
  gen.zipf_s = config.zipf_s;
  const std::vector<serve::Query> queries =
      serve::generate_queries(*service.snapshot(), gen);

  // --- Chaos plane: background fault plan + scripted windows + breakers. ---
  fault::FaultInjector injector(
      fault::FaultPlan::parse(config.fault_plan, config.seed), &registry);
  const std::size_t total_shards = serve_config.shards;
  std::vector<fault::FaultPoint*> shard_points;
  shard_points.reserve(total_shards);
  std::vector<std::unique_ptr<fault::CircuitBreaker>> breakers;
  breakers.reserve(total_shards);
  for (std::size_t i = 0; i < total_shards; ++i) {
    const std::string shard_name = "shard-" + std::to_string(i);
    shard_points.push_back(&injector.point("serve." + shard_name));
    breakers.push_back(std::make_unique<fault::CircuitBreaker>(
        config.breaker,
        fault::CircuitBreaker::state_gauge(&registry, shard_name)));
  }
  fault::FaultPoint* tsdb_point = &injector.point("tsdb.read");

  const auto kind_active = [&config](ChaosWindow::Kind kind, double frac) {
    for (const ChaosWindow& window : config.windows) {
      if (window.kind == kind && window_active(window, frac)) return true;
    }
    return false;
  };
  const auto shard_down = [&config](std::size_t shard, double frac) {
    for (const ChaosWindow& window : config.windows) {
      if (window.kind == ChaosWindow::Kind::kShardKill &&
          window.shard == shard && window_active(window, frac)) {
        return true;
      }
    }
    return false;
  };

  // --- Controller + queueing state (all Phase A serial). ---
  const SignalSeries series;
  std::uint64_t next_tick_ms = 0;
  double next_publish_s = config.publish_every_s;
  double backlog = 0.0;  ///< queued work, cost units
  double last_arrival_s = 0.0;
  std::size_t active_shards = controller.shards();
  auto queue_limit = static_cast<double>(controller.channel_capacity());

  SweepReport report;
  report.offered_qps = offered;
  report.peak_shards = controller.shards();
  report.min_channel_capacity = controller.channel_capacity();

  // Single-shard capacity times the provisioned fleet, discounted by the
  // fraction of the ring currently dead (a killed shard takes both its
  // traffic share and its capacity with it).
  const auto live_capacity = [&](double frac) {
    std::size_t down = 0;
    for (std::size_t i = 0; i < total_shards; ++i) {
      if (shard_down(i, frac)) ++down;
    }
    const double healthy_frac =
        static_cast<double>(total_shards - down) /
        static_cast<double>(std::max<std::size_t>(1, total_shards));
    return std::max(1.0, static_cast<double>(active_shards) *
                             ctl.shard_unit_qps * healthy_frac);
  };

  // One controller tick at virtual time `t_ms`: scrape, decide, actuate.
  const auto run_tick = [&](std::uint64_t t_ms) {
    timeline.advance_to(t_ms);
    Signals signals = Controller::scrape(timeline, &tracker, series);
    signals.t_ms = t_ms;
    const double frac = (static_cast<double>(t_ms) / 1000.0) / duration_s;
    signals.queue_depth = backlog;
    signals.queue_delay_s = backlog / live_capacity(frac);
    std::size_t open = 0;
    for (const auto& breaker : breakers) {
      if (breaker->state() != fault::CircuitBreaker::State::kClosed) ++open;
    }
    signals.breakers_open = open;

    const Decision& decision = controller.tick(signals);
    const double tick_s = static_cast<double>(t_ms) / 1000.0;
    service.set_admission_rate(tick_s, decision.admission_rate_qps,
                               decision.admission_burst);
    service.set_brownout(decision.brownout);
    active_shards = decision.shards;
    queue_limit = static_cast<double>(decision.channel_capacity);

    if (decision.action == "ladder-up" && report.first_ladder_ms == 0) {
      report.first_ladder_ms = std::max<std::uint64_t>(1, t_ms);
    }
    report.max_level =
        std::max(report.max_level, static_cast<int>(decision.brownout));
    report.peak_shards = std::max(report.peak_shards, decision.shards);
    report.min_channel_capacity =
        std::min(report.min_channel_capacity, decision.channel_capacity);
  };

  // ---- Phase A: serial routing on the virtual clock. ----
  std::vector<Route> routes(total_queries);
  for (std::size_t i = 0; i < total_queries; ++i) {
    const double arrival_s = static_cast<double>(i) / offered;
    const auto arrival_ms = static_cast<std::uint64_t>(arrival_s * 1000.0);
    const double frac = arrival_s / duration_s;

    while (next_tick_ms <= arrival_ms) {
      run_tick(next_tick_ms);
      next_tick_ms += tick_every;
    }

    // Republish cadence — paused while replication is delayed, so reads in
    // that window really are behind.
    const bool repl_delayed = kind_active(ChaosWindow::Kind::kReplDelay, frac);
    if (!repl_delayed && next_publish_s <= arrival_s) {
      service.publish(entries);
      epochs.push_back(service.snapshot());
      next_publish_s = arrival_s + config.publish_every_s;
    }

    // Drain the queue model up to this arrival.
    backlog = std::max(0.0,
                       backlog - (arrival_s - last_arrival_s) *
                                     live_capacity(frac));
    last_arrival_s = arrival_s;

    timeline.advance_to(arrival_ms);
    arrivals.add();

    Route& route = routes[i];
    route.epoch_index = static_cast<std::uint32_t>(epochs.size() - 1);

    const serve::BrownoutLevel level = service.brownout();
    const serve::BrownoutAction action =
        serve::apply_brownout(queries[i], level);
    route.param = action.query.param;
    const bool history =
        util::Rng::indexed(util::mix_seed(config.seed, kHistorySalt), i)
            .bernoulli(config.p_history);

    const auto stale_possible = epochs.size() >= 2;
    const auto degrade = [&](Route& r) {
      if (stale_possible) {
        r.epoch_index = static_cast<std::uint32_t>(epochs.size() - 2);
        r.stale_age = 1;
        return Outcome::kServeStale;
      }
      return Outcome::kUnavailable;
    };

    Outcome outcome;
    if (action.refuse ||
        (history && level != serve::BrownoutLevel::kFull)) {
      // The ladder disables expensive kinds; historical (tsdb-backed)
      // queries count as range kinds from kCachedOnly up.
      outcome = Outcome::kBrownout;
    } else if (!service.try_admit(arrival_s)) {
      outcome = Outcome::kShed;  // service counted denied{reason=shed}
    } else {
      const std::size_t shard = service.shard_for(action.query);
      const bool dead = shard_down(shard, frac);
      bool failed;
      if (!breakers[shard]->allow(arrival_s)) {
        failed = true;  // breaker open/probing: fail fast, no bookkeeping
      } else {
        const fault::FaultDecision fd = shard_points[shard]->decide(i);
        failed = dead || fd.kind == fault::FaultKind::kError ||
                 fd.kind == fault::FaultKind::kCrash;
        if (failed) {
          breakers[shard]->on_failure(arrival_s);
        } else {
          breakers[shard]->on_success();
        }
      }

      if (failed) {
        outcome = degrade(route);
      } else if (history &&
                 (kind_active(ChaosWindow::Kind::kTsdbError, frac) ||
                  static_cast<bool>(tsdb_point->decide(i)))) {
        outcome = Outcome::kUnavailable;
      } else if (action.prefer_stale && stale_possible) {
        outcome = degrade(route);
      } else if (repl_delayed &&
                 util::Rng::indexed(util::mix_seed(config.seed, kReplSalt), i)
                         .bernoulli(config.repl_stale_prob) &&
                 stale_possible) {
        outcome = degrade(route);
      } else {
        outcome = Outcome::kServe;
      }

      // Queue bound: served work enters the backlog; past the bound the
      // request is overflow-shed instead.
      if (outcome == Outcome::kServe || outcome == Outcome::kServeStale) {
        const double cost =
            history ? serve::query_kind_cost(serve::QueryKind::kRangeMean)
                    : action.cost;
        if (backlog + cost > queue_limit) {
          outcome = Outcome::kOverflow;
        } else {
          backlog += cost;
        }
      }
    }
    route.outcome = outcome;

    // Outcome accounting (counters feed the controller's own signals).
    switch (outcome) {
      case Outcome::kServe:
        served_counter.add();
        break;
      case Outcome::kServeStale:
        stale_counter.add();
        break;
      case Outcome::kShed:
        break;  // already counted by try_admit
      case Outcome::kOverflow:
        denied.add(serve::DenyReason::kShed);
        overflow_counter.add();
        break;
      case Outcome::kBrownout:
        denied.add(serve::DenyReason::kBrownout);
        brownout_counter.add();
        break;
      case Outcome::kUnavailable:
        denied.add(serve::DenyReason::kUnavailable);
        unavailable_counter.add();
        break;
    }
    if ((outcome == Outcome::kShed || outcome == Outcome::kOverflow) &&
        report.first_shed_ms == 0) {
      report.first_shed_ms = std::max<std::uint64_t>(1, arrival_ms);
    }

    // Synthetic service latency: a pure function of (seed, i, outcome) plus
    // the deterministic queueing delay — never wall time.
    util::Rng latency_rng =
        util::Rng::indexed(util::mix_seed(config.seed, kLatencySalt), i);
    const double base_ms = 0.2 + latency_rng.exponential(2.0);
    const double queue_ms = 1000.0 * backlog / live_capacity(frac);
    double latency_ms;
    switch (outcome) {
      case Outcome::kServe:
        latency_ms = base_ms + queue_ms;
        break;
      case Outcome::kServeStale:
        latency_ms = 1.0 + 1.5 * base_ms + queue_ms;
        break;
      case Outcome::kUnavailable:
        latency_ms = 25.0 + base_ms;
        break;
      default:  // shed / overflow / brownout: immediate refusal
        latency_ms = 0.05;
        break;
    }
    latency_hist.observe(latency_ms);
    queue_gauge.set(backlog);
  }

  // Run the controller through the tail of the virtual run, then flush.
  while (next_tick_ms <= duration_ms) {
    run_tick(next_tick_ms);
    next_tick_ms += tick_every;
  }
  timeline.flush(duration_ms);

  // ---- Phase B: parallel pure evaluation of the fixed routes. ----
  struct Evaluated {
    serve::QueryStatus status = serve::QueryStatus::kShed;
    std::uint64_t hash = 0;
  };
  const std::vector<Evaluated> evaluated = util::parallel_map(
      pool, total_queries, 64, [&](std::size_t i) -> Evaluated {
        const Route& route = routes[i];
        serve::QueryResponse response;
        switch (route.outcome) {
          case Outcome::kServe:
          case Outcome::kServeStale: {
            serve::Query query = queries[i];
            query.param = route.param;
            response = serve::answer(query, *epochs[route.epoch_index]);
            if (route.outcome == Outcome::kServeStale) {
              response.stale = true;
              response.stale_age = route.stale_age;
            }
            break;
          }
          case Outcome::kShed:
          case Outcome::kOverflow:
            response.status = serve::QueryStatus::kShed;
            break;
          case Outcome::kBrownout:
            response.status = serve::QueryStatus::kBrownout;
            break;
          case Outcome::kUnavailable:
            response.status = serve::QueryStatus::kUnavailable;
            break;
        }
        return {response.status, serve::hash_response(i, response)};
      });

  // ---- Phase C: serial fold. ----
  report.issued = total_queries;
  for (std::size_t i = 0; i < total_queries; ++i) {
    report.checksum ^= evaluated[i].hash;
    switch (routes[i].outcome) {
      case Outcome::kServe:
      case Outcome::kServeStale:
        if (evaluated[i].status == serve::QueryStatus::kOk) {
          ++report.ok;
        } else {
          ++report.not_found;
        }
        if (routes[i].outcome == Outcome::kServeStale) ++report.stale;
        break;
      case Outcome::kShed:
        ++report.shed;
        break;
      case Outcome::kOverflow:
        ++report.shed;
        ++report.overflow;
        break;
      case Outcome::kBrownout:
        ++report.brownout;
        break;
      case Outcome::kUnavailable:
        ++report.unavailable;
        break;
    }
  }
  const auto issued = static_cast<double>(report.issued);
  report.shed_fraction = static_cast<double>(report.shed) / issued;
  report.denied_fraction =
      static_cast<double>(report.shed + report.brownout +
                          report.unavailable) /
      issued;
  report.stale_fraction = static_cast<double>(report.stale) / issued;
  report.p50_ms = latency_hist.quantile(0.50);
  report.p99_ms = latency_hist.quantile(0.99);
  for (const obs::SloStatus& status : tracker.status()) {
    if (status.slo == series.slo) {
      const std::uint64_t verdicts = status.good + status.bad;
      report.slo_good_fraction =
          verdicts > 0
              ? static_cast<double>(status.good) /
                    static_cast<double>(verdicts)
              : 1.0;
      report.slo_fired = status.firing;
    }
  }
  if (!tracker.alerts().empty()) report.slo_fired = true;
  report.ladder_engaged_before_shed =
      report.first_ladder_ms != 0 &&
      (report.first_shed_ms == 0 ||
       report.first_ladder_ms <= report.first_shed_ms);
  report.ticks = controller.decisions().size();
  report.decision_log = controller.log_text();
  report.decision_digest = controller.log_digest();
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return report;
}

}  // namespace tero::control
