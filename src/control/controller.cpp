#include "control/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "util/rng.hpp"

namespace tero::control {

namespace {

/// Estimated mean per-query cost of the workload mix at each ladder rung
/// (cost units; see serve::query_kind_cost and serve::apply_brownout). The
/// capacity model divides healthy capacity by this to price admission.
constexpr double kLevelCost[serve::kBrownoutLevels] = {1.0, 0.9, 0.55, 0.35,
                                                       0.25};

/// Byte-stable double rendering for the decision log: %.10g is fixed-width
/// enough to read and — because every logged value is already bit-identical
/// across thread counts — formats to identical bytes everywhere.
void append_double(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s=%.10g", key, value);
  out += buffer;
}

}  // namespace

std::string_view to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::kStatic: return "static";
    case Policy::kReactive: return "reactive";
    case Policy::kPredictive: return "predictive";
  }
  return "static";
}

Policy parse_policy(std::string_view text) {
  if (text == "static") return Policy::kStatic;
  if (text == "reactive") return Policy::kReactive;
  if (text == "predictive") return Policy::kPredictive;
  throw std::invalid_argument("unknown control policy: " +
                              std::string(text));
}

SignalSeries::SignalSeries()
    : shed(obs::MetricsRegistry::labeled("tero.serve.denied",
                                         {{"reason", "shed"}})) {}

Controller::Controller(ControllerConfig config) : config_(config) {
  config_.min_shards = std::max<std::size_t>(1, config_.min_shards);
  config_.max_shards = std::max(config_.max_shards, config_.min_shards);
  shards_ = std::clamp(config_.initial_shards, config_.min_shards,
                       config_.max_shards);
  config_.min_channel_capacity =
      std::max<std::size_t>(1, config_.min_channel_capacity);
  config_.base_channel_capacity = std::max(config_.base_channel_capacity,
                                           config_.min_channel_capacity);
  channel_capacity_ = config_.base_channel_capacity;
  rate_ = target_rate(serve::BrownoutLevel::kFull, shards_);
}

double Controller::target_rate(serve::BrownoutLevel level,
                               std::size_t healthy_shards) const {
  const double capacity =
      static_cast<double>(std::max<std::size_t>(1, healthy_shards)) *
      config_.shard_unit_qps;
  return config_.utilization_target * capacity /
         kLevelCost[static_cast<std::size_t>(level)];
}

double Controller::predicted_utilization() const {
  // Least-squares slope of the recent offered-rate samples, extrapolated
  // horizon_ticks ahead. With fewer than two samples there is no slope and
  // the prediction is just the last observation.
  const std::size_t n = offered_history_.size();
  if (n == 0) return 0.0;
  double slope = 0.0;
  if (n >= 2) {
    double sum_i = 0.0, sum_y = 0.0, sum_iy = 0.0, sum_ii = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i);
      sum_i += x;
      sum_y += offered_history_[i];
      sum_iy += x * offered_history_[i];
      sum_ii += x * x;
    }
    const double count = static_cast<double>(n);
    const double denom = count * sum_ii - sum_i * sum_i;
    if (denom > 0.0) slope = (count * sum_iy - sum_i * sum_y) / denom;
  }
  const double predicted = std::max(
      0.0, offered_history_.back() + slope * config_.horizon_ticks);
  return predicted;  // caller scales by cost / capacity
}

const Decision& Controller::tick(const Signals& signals) {
  const int level_before = level_;
  const std::size_t shards_before = shards_;
  const std::size_t channel_before = channel_capacity_;
  const double rate_before = rate_;

  std::string action = "hold";
  std::string reason;

  if (config_.policy != Policy::kStatic) {
    offered_history_.push_back(signals.offered_qps);
    if (offered_history_.size() > std::max<std::size_t>(2,
                                                        config_.slope_window)) {
      offered_history_.erase(offered_history_.begin());
    }

    const std::size_t healthy =
        shards_ > signals.breakers_open ? shards_ - signals.breakers_open : 1;

    bool hot = false;
    if (signals.burn_fast >= config_.burn_up &&
        signals.burn_slow >= config_.burn_up) {
      hot = true;
      reason = "burn";
    } else if (signals.shed_fraction >= config_.shed_up) {
      hot = true;
      reason = "shed";
    } else if (signals.queue_delay_s >= config_.queue_high_s) {
      hot = true;
      reason = "queue";
    } else if (config_.policy == Policy::kPredictive) {
      const double capacity =
          static_cast<double>(healthy) * config_.shard_unit_qps;
      const double util = predicted_utilization() *
                          kLevelCost[static_cast<std::size_t>(level_)] /
                          capacity;
      if (util >= config_.util_up) {
        hot = true;
        reason = "predict";
      }
    }

    const bool calm = signals.burn_fast < config_.burn_down &&
                      signals.burn_slow < config_.burn_down &&
                      signals.shed_fraction < config_.shed_up * 0.5 &&
                      signals.queue_delay_s <= config_.queue_low_s;

    if (hot) {
      calm_ticks_ = 0;
      // Escalation order is the resilience contract: brownout rungs engage
      // first (cheap fidelity trades), capacity is added next (gated on
      // every breaker being closed — never scale a known-bad fleet), and
      // squeezing the queue bound — which sheds — is the last resort.
      if (level_ < serve::kBrownoutLevels - 1) {
        ++level_;
        action = "ladder-up";
      } else if (signals.queue_delay_s >= config_.queue_high_s &&
                 signals.breakers_open == 0 &&
                 shards_ < config_.max_shards) {
        ++shards_;
        action = "scale-out";
      } else if (channel_capacity_ > config_.min_channel_capacity) {
        channel_capacity_ = std::max(config_.min_channel_capacity,
                                     channel_capacity_ / 2);
        action = "squeeze-queue";
      } else {
        action = "saturated";
      }
    } else if (calm) {
      if (++calm_ticks_ >= config_.hold_ticks) {
        calm_ticks_ = 0;
        // Recovery unwinds in reverse: queue bound first, then the ladder,
        // then surplus capacity (only when the offered load clearly fits
        // the smaller fleet — no flapping at the boundary).
        if (channel_capacity_ < config_.base_channel_capacity) {
          channel_capacity_ = std::min(config_.base_channel_capacity,
                                       channel_capacity_ * 2);
          action = "relax-queue";
        } else if (level_ > 0) {
          --level_;
          action = "ladder-down";
        } else if (shards_ > config_.min_shards &&
                   signals.offered_qps *
                           kLevelCost[static_cast<std::size_t>(level_)] <
                       0.8 * target_rate(serve::brownout_level(level_),
                                         shards_ - 1)) {
          --shards_;
          action = "scale-in";
        }
        if (action != "hold") reason = "calm";
      }
    } else {
      calm_ticks_ = 0;
    }

    const std::size_t healthy_after =
        shards_ > signals.breakers_open ? shards_ - signals.breakers_open : 1;
    rate_ = target_rate(serve::brownout_level(level_), healthy_after);
  }

  Decision decision;
  decision.tick = ticks_++;
  decision.t_ms = signals.t_ms;
  decision.brownout = serve::brownout_level(level_);
  decision.admission_rate_qps = rate_;
  decision.admission_burst = rate_ * config_.burst_s;
  decision.shards = shards_;
  decision.channel_capacity = channel_capacity_;
  decision.changed = level_ != level_before || shards_ != shards_before ||
                     channel_capacity_ != channel_before ||
                     rate_ != rate_before;
  decision.action = std::move(action);
  decision.reason = std::move(reason);
  decision.signals = signals;
  decisions_.push_back(std::move(decision));
  return decisions_.back();
}

void Controller::write_log(std::ostream& os) const {
  for (const Decision& d : decisions_) {
    std::string line;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "tick=%llu t_ms=%llu policy=%s action=%s",
                  static_cast<unsigned long long>(d.tick),
                  static_cast<unsigned long long>(d.t_ms),
                  std::string(to_string(config_.policy)).c_str(),
                  d.action.c_str());
    line += head;
    if (!d.reason.empty()) {
      line += " reason=";
      line += d.reason;
    }
    char knobs[160];
    std::snprintf(knobs, sizeof(knobs), " level=%d:%s shards=%zu chancap=%zu",
                  static_cast<int>(d.brownout),
                  std::string(serve::to_string(d.brownout)).c_str(),
                  d.shards, d.channel_capacity);
    line += knobs;
    append_double(line, "rate", d.admission_rate_qps);
    append_double(line, "burst", d.admission_burst);
    append_double(line, "offered", d.signals.offered_qps);
    append_double(line, "shed", d.signals.shed_fraction);
    append_double(line, "queue", d.signals.queue_depth);
    append_double(line, "queue_s", d.signals.queue_delay_s);
    append_double(line, "p99", d.signals.p99_ms);
    append_double(line, "burn_fast", d.signals.burn_fast);
    append_double(line, "burn_slow", d.signals.burn_slow);
    char tail[64];
    std::snprintf(tail, sizeof(tail), " firing=%d breakers=%zu",
                  d.signals.slo_firing ? 1 : 0, d.signals.breakers_open);
    line += tail;
    os << line << '\n';
  }
}

std::string Controller::log_text() const {
  std::ostringstream os;
  write_log(os);
  return os.str();
}

std::uint64_t Controller::log_digest() const {
  const std::string text = log_text();
  return util::fnv1a64({text.data(), text.size()});
}

Signals Controller::scrape(const obs::MetricsTimeline& timeline,
                           const obs::SloTracker* slo,
                           const SignalSeries& series) {
  Signals signals;
  signals.t_ms = timeline.last_scrape_ms();
  signals.offered_qps = timeline.rate(series.arrivals,
                                      series.fast_window_ms);
  const double shed_rate = timeline.rate(series.shed, series.fast_window_ms);
  signals.shed_fraction =
      signals.offered_qps > 0.0 ? shed_rate / signals.offered_qps : 0.0;
  signals.queue_depth = timeline.gauge_value(series.queue_depth);
  signals.p99_ms =
      timeline.quantile(series.latency, 0.99, series.fast_window_ms);
  if (slo != nullptr) {
    for (const obs::SloStatus& status : slo->status()) {
      if (status.slo == series.slo) {
        signals.burn_fast = status.burn_fast;
        signals.burn_slow = status.burn_slow;
        signals.slo_firing = status.firing;
        break;
      }
    }
  }
  return signals;
}

}  // namespace tero::control
