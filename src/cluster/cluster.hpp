#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fault/policy.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "store/consistent_hash.hpp"

namespace tero::fault {
class FaultInjector;
class FaultPoint;
}  // namespace tero::fault

namespace tero::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace tero::obs

namespace tero::cluster {

/// In-process simulated serving cluster (DESIGN.md §14): N nodes, each the
/// leader for a consistent-hash range of {location, game} keys, with
/// leader->follower epoch-snapshot replication under a bounded-staleness
/// budget. Reads route leader-first (or follower-preferred), fail over
/// through per-node circuit breakers, and follower answers carry the same
/// STALE{age} marker as the single-process degraded path (DESIGN.md §11).
///
/// Determinism contract: the cluster has no clock and no threads of its
/// own. Every mutation — publish, membership change, routing (which moves
/// breakers and applies replication deliveries) — happens on the caller's
/// virtual clock, serially in arrival order; replication delays and
/// follower picks are pure functions of (seed, node, epoch | query index)
/// via util::Rng::indexed. The parallel half of a load sweep only evaluates
/// the already-routed decisions against immutable snapshots, so response
/// checksums are bit-identical at any thread count.

/// Which replica a read should land on.
enum class ReadPolicy {
  kLeaderOnly,         ///< leader first; followers only on failover
  kFollowerPreferred,  ///< deterministic follower pick; leader last resort
};

struct ClusterConfig {
  std::size_t nodes = 3;
  /// Owners per key: the leader plus replicas-1 followers, taken clockwise
  /// from the key's ring position. Clamped to the live node count.
  std::size_t replicas = 2;
  /// Virtual nodes per node. Higher than the store default: the ring hash's
  /// final-byte diffusion is weak (same-prefix vnode names cluster), so 256
  /// vnodes are needed to keep per-node shares near 1/n and join/leave
  /// remaps under the documented 2/n bound.
  int ring_virtual_nodes = 256;
  /// Bounded staleness: the maximum number of epochs a served answer may
  /// lag the current one. A node that cannot serve within the budget
  /// refuses the read and routing fails over — STALE{age} never exceeds
  /// this, by construction.
  std::uint64_t staleness_budget = 2;
  std::uint64_t seed = 1;
  /// Replication delivery delay, drawn per (node, epoch) from the seed.
  double repl_delay_ms_min = 50.0;
  double repl_delay_ms_max = 450.0;
  /// Observability sinks (not owned; may be null). Exports per-node
  /// breaker state (tero.fault.breaker{endpoint=node-<i>}) and replication
  /// lag (tero.cluster.repl_lag{node=node-<i>}) as labeled gauges.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional fault injection (not owned; may be null). Arms one
  /// "cluster.node-<i>" point per node (read-path errors) and a shared
  /// "cluster.repl" point (delivery drops and delays), both consulted in
  /// keyed decide() mode so parallel-safe determinism holds.
  fault::FaultInjector* injector = nullptr;
  /// Per-node circuit-breaker tuning.
  fault::CircuitBreaker::Config breaker;
};

/// The serial routing verdict for one query: which node serves, from which
/// epoch, and how stale that answer is. `snapshot == nullptr` means nobody
/// could serve (`no_answer` says why); otherwise the answer is
/// serve::answer(query, *snapshot) plus the stale markers.
struct RouteDecision {
  serve::SnapshotPtr snapshot;
  serve::QueryStatus no_answer = serve::QueryStatus::kUnavailable;
  std::string node;
  bool stale = false;
  std::uint64_t stale_age = 0;  ///< epochs behind current; <= budget
  std::size_t attempts = 0;     ///< owners tried (1 = first choice served)
};

/// Full-keyspace ownership audit: every key of the current snapshot must be
/// claimed by exactly one node, and that node must be the one the ring
/// names. Run after every membership change (the join/leave hand-off must
/// lose no keys and double-own none).
struct OwnershipAudit {
  bool ok = false;
  std::size_t keys = 0;          ///< snapshot keyspace size
  std::size_t lost = 0;          ///< keys no node claims
  std::size_t double_owned = 0;  ///< keys claimed by more than one node
  std::size_t misplaced = 0;     ///< claims the ring disagrees with
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  /// Install `entries` as the next epoch at virtual time `now_ms` and
  /// schedule its delivery to every node (per-node deterministic delay; the
  /// cluster.repl fault point may drop or slow a delivery — a dropped epoch
  /// is healed by the next one, snapshots being full state). Returns the
  /// new epoch number.
  std::uint64_t publish(std::vector<serve::SnapshotEntry> entries,
                        std::uint64_t now_ms);
  /// Re-publish the current entries as a new epoch — advances the epoch
  /// clock so follower staleness is observable mid-sweep.
  std::uint64_t republish(std::uint64_t now_ms);

  /// Route one query at virtual time `now_ms`. Serial-only (mutates
  /// breakers and node replication state); `query_index` keys the fault
  /// points and the follower pick.
  [[nodiscard]] RouteDecision route(const serve::Query& query,
                                    std::uint64_t now_ms,
                                    std::uint64_t query_index,
                                    ReadPolicy policy = ReadPolicy::kLeaderOnly);

  // -- membership and fault control (virtual time) ------------------------
  /// Node loss: stops serving and receiving; in-flight deliveries are lost.
  /// The node stays in the ring — its ranges fail over to the follower set.
  void kill(std::size_t node_index);
  /// Revive a killed node; it re-syncs to the current epoch with a
  /// deterministic delay and is meanwhile subject to the staleness budget.
  void restart(std::size_t node_index, std::uint64_t now_ms);
  /// Asymmetric partition: the node keeps serving reads but receives no
  /// replication deliveries, so its staleness grows until the budget makes
  /// it refuse. severed = false heals the link (catch-up rides the next
  /// publish).
  void partition(std::size_t node_index, bool severed);
  /// Add a node ("node-<uid>"): the ring remaps ~1/n of the keyspace to it
  /// and the hand-off transfers the current snapshot synchronously, so no
  /// key is ever unowned. Returns the new node's name.
  std::string join(std::uint64_t now_ms);
  /// Remove a node; its ranges move to the ring successors, which already
  /// hold the replicated snapshot. Returns false for unknown names.
  bool leave(std::string_view name);

  [[nodiscard]] OwnershipAudit audit() const;
  /// The hash-range diff of the most recent join/leave (empty before any).
  [[nodiscard]] const store::RemapDiff& last_remap() const noexcept {
    return last_remap_;
  }

  // -- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::vector<std::string> node_names() const;
  [[nodiscard]] std::size_t index_of(std::string_view name) const;
  [[nodiscard]] bool alive(std::size_t node_index) const;
  [[nodiscard]] std::uint64_t applied_epoch(std::size_t node_index) const;
  [[nodiscard]] fault::CircuitBreaker::State breaker_state(
      std::size_t node_index) const;
  [[nodiscard]] std::size_t claimed_keys(std::size_t node_index) const;
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] serve::SnapshotPtr snapshot() const noexcept {
    return current_;
  }
  /// The replica set (leader first) the ring names for `query`.
  [[nodiscard]] std::vector<std::string> owners_of(
      const serve::Query& query) const;
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Delivery {
    std::uint64_t epoch = 0;
    std::uint64_t apply_at_ms = 0;
    serve::SnapshotPtr snapshot;
  };
  struct Node {
    std::string name;
    std::uint64_t uid = 0;
    bool alive = true;
    bool repl_linked = true;
    serve::SnapshotPtr applied;  ///< last applied epoch (null = none yet)
    std::uint64_t applied_epoch = 0;
    std::deque<Delivery> pending;  ///< in-flight, sorted by apply_at_ms
    std::set<std::string> claimed;  ///< entry keys this node leads
    fault::FaultPoint* fault_point = nullptr;  ///< "cluster.<name>"
    std::unique_ptr<fault::CircuitBreaker> breaker;
    obs::Gauge* lag_gauge = nullptr;
  };

  [[nodiscard]] Node make_node(std::uint64_t uid) const;
  /// Deterministic base replication delay for (node, epoch).
  [[nodiscard]] double repl_delay_ms(const Node& node,
                                     std::uint64_t epoch) const;
  /// Schedule delivery of `snapshot` to `node` (in-order: never before the
  /// tail of its pending queue).
  void enqueue_delivery(Node& node, serve::SnapshotPtr snapshot,
                        std::uint64_t epoch, std::uint64_t publish_ms);
  /// Apply deliveries due by `now_ms` (`all` = everything pending, the
  /// leader's synchronous-apply catch-up).
  void apply_pending(Node& node, std::uint64_t now_ms, bool all);
  void update_lag_gauge(const Node& node) const;
  /// Recompute every node's claimed key set from the ring (publish path —
  /// the keyspace itself may have changed).
  void rebuild_claims();
  /// Incremental hand-off: move exactly the keys `diff` says moved
  /// (join/leave path; audited against a full recompute by audit()).
  void shift_claims(const store::RemapDiff& diff);
  [[nodiscard]] static std::string route_key(const serve::Query& query);

  ClusterConfig config_;
  store::ConsistentHashRing ring_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t next_uid_ = 0;
  std::uint64_t epoch_ = 0;
  serve::SnapshotPtr current_;
  store::RemapDiff last_remap_;
  fault::FaultPoint* repl_point_ = nullptr;  ///< "cluster.repl"

  // Hot-path metric handles (null when metrics are off).
  obs::Counter* reads_ = nullptr;
  obs::Counter* stale_reads_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* refused_ = nullptr;    ///< over-budget staleness refusals
  obs::Counter* failovers_ = nullptr;  ///< non-first-choice attempts
  /// Unified denial family: refused -> denied{reason=stale}, unavailable
  /// -> denied{reason=unavailable} (the legacy counters stay as aliases).
  serve::DeniedCounters denied_;
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Gauge* nodes_gauge_ = nullptr;
};

}  // namespace tero::cluster
