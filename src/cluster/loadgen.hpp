#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/thread_pool.hpp"

namespace tero::obs {
class MetricsRegistry;
class MetricsTimeline;
}  // namespace tero::obs

namespace tero::cluster {

/// Deterministic cluster load generation (DESIGN.md §14): the same Zipf
/// open-loop query stream as serve::loadgen, swept against the fleet with a
/// scripted membership/fault timeline riding the virtual clock.
///
/// Three-phase determinism (the cluster variant of the §13 serial-replay
/// pattern):
///   A. serial, arrival order — apply due ClusterEvents, advance the
///      metrics timeline, route every query (breakers, replication
///      deliveries and staleness checks all mutate here), and record the
///      route-level counters plus the synthetic latency histogram (a pure
///      function of (seed, i, route outcome)).
///   B. parallel, pure — evaluate serve::answer against each decision's
///      immutable snapshot and hash the responses.
///   C. serial fold — XOR checksum, status counts, staleness distribution.
/// Phases A and C never touch the pool and phase B mutates nothing, so the
/// checksum, availability and staleness numbers are bit-identical at any
/// thread count — including sweeps that kill, join or partition mid-run.

/// One scripted action at a virtual time. `node` is the node *index at the
/// moment the event fires* (earlier events may have changed the roster).
struct ClusterEvent {
  enum class Kind {
    kKill,       ///< node loss (stays in the ring; replicas take over)
    kRestart,    ///< revive + deterministic resync
    kJoin,       ///< add a node, live key remapping
    kLeave,      ///< remove node `node` from the ring
    kPartition,  ///< sever the node's replication link (reads keep going)
    kHeal,       ///< re-link a partitioned node
    kRepublish,  ///< advance the epoch (same entries) — staleness driver
  };
  Kind kind = Kind::kKill;
  std::uint64_t at_ms = 0;
  std::size_t node = 0;  ///< ignored for kJoin / kRepublish
};

struct ClusterLoadConfig {
  std::size_t queries = 10000;
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  double zipf_s = 1.1;
  double p_topk = 0.02;
  /// Open-loop arrival rate: query i arrives at i / offered_qps. Must be
  /// > 0 — the cluster is driven entirely by virtual time.
  double offered_qps = 5000.0;
  ReadPolicy policy = ReadPolicy::kLeaderOnly;
  /// Scripted membership/fault timeline (sorted by at_ms internally).
  std::vector<ClusterEvent> events;
  /// Optional virtual-time telemetry (both may be null). Deterministic
  /// prefixes: "tero.cluster." and "tero.fault.breaker" — every series
  /// under them is written from the serial phases only.
  obs::MetricsRegistry* metrics = nullptr;
  obs::MetricsTimeline* timeline = nullptr;
};

struct ClusterLoadReport {
  std::size_t issued = 0;
  std::size_t ok = 0;
  std::size_t not_found = 0;
  std::size_t no_snapshot = 0;
  std::size_t unavailable = 0;  ///< no owner could serve within budget
  std::size_t stale = 0;        ///< served from a lagging epoch
  std::size_t failover_attempts = 0;  ///< extra owners tried beyond the first
  std::size_t events_applied = 0;
  /// XOR-fold of hash_response(i, response_i); thread-count independent.
  std::uint64_t checksum = 0;
  /// Served-staleness distribution: stale_age_hist[age] = answers served
  /// `age` epochs behind. Never longer than budget + 1 (the bounded-
  /// staleness property the tests pin).
  std::vector<std::size_t> stale_age_hist;
  std::uint64_t stale_age_max = 0;
  double availability = 1.0;    ///< 1 - unavailable / issued
  double stale_fraction = 0.0;  ///< stale / issued
  // Synthetic-latency quantiles (ms) from tero.cluster.loadgen.latency_ms
  // when metrics are attached; 0 otherwise. Deterministic (virtual time).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Sweep `config.queries` deterministic queries against `cluster` on
/// `pool` (nullptr or size 1 = serial execution phase). The cluster must
/// have a published snapshot (queries are generated from it).
[[nodiscard]] ClusterLoadReport run_cluster_loadtest(
    Cluster& cluster, const ClusterLoadConfig& config,
    util::ThreadPool* pool);

}  // namespace tero::cluster
