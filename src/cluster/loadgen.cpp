#include "cluster/loadgen.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "serve/loadgen.hpp"
#include "util/rng.hpp"

namespace tero::cluster {

namespace {

constexpr std::uint64_t kLatencySalt = 0x636c;  // "cl"

void apply_event(Cluster& cluster, const ClusterEvent& event,
                 std::uint64_t now_ms) {
  switch (event.kind) {
    case ClusterEvent::Kind::kKill:
      cluster.kill(event.node);
      break;
    case ClusterEvent::Kind::kRestart:
      cluster.restart(event.node, now_ms);
      break;
    case ClusterEvent::Kind::kJoin:
      (void)cluster.join(now_ms);
      break;
    case ClusterEvent::Kind::kLeave: {
      const auto names = cluster.node_names();
      if (event.node < names.size()) (void)cluster.leave(names[event.node]);
      break;
    }
    case ClusterEvent::Kind::kPartition:
      cluster.partition(event.node, /*severed=*/true);
      break;
    case ClusterEvent::Kind::kHeal:
      cluster.partition(event.node, /*severed=*/false);
      break;
    case ClusterEvent::Kind::kRepublish:
      (void)cluster.republish(now_ms);
      break;
  }
}

}  // namespace

ClusterLoadReport run_cluster_loadtest(Cluster& cluster,
                                       const ClusterLoadConfig& config,
                                       util::ThreadPool* pool) {
  ClusterLoadReport report;
  report.issued = config.queries;
  const serve::SnapshotPtr base = cluster.snapshot();
  if (base == nullptr) {
    report.no_snapshot = config.queries;
    report.availability = 0.0;
    return report;
  }

  serve::LoadGenConfig gen;
  gen.queries = config.queries;
  gen.seed = config.seed;
  gen.zipf_s = config.zipf_s;
  gen.p_topk = config.p_topk;
  const std::vector<serve::Query> queries =
      serve::generate_queries(*base, gen);

  std::vector<ClusterEvent> events = config.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const ClusterEvent& a, const ClusterEvent& b) {
                     return a.at_ms < b.at_ms;
                   });

  obs::Counter* sent_counter = nullptr;
  obs::Counter* served_counter = nullptr;
  obs::Counter* stale_counter = nullptr;
  obs::Counter* unavailable_counter = nullptr;
  obs::Histogram* latency_hist = nullptr;
  if (config.metrics != nullptr) {
    auto& registry = *config.metrics;
    sent_counter = &registry.counter("tero.cluster.loadgen.queries");
    served_counter = &registry.counter("tero.cluster.loadgen.served");
    stale_counter = &registry.counter("tero.cluster.loadgen.stale");
    unavailable_counter =
        &registry.counter("tero.cluster.loadgen.unavailable");
    latency_hist = &registry.histogram("tero.cluster.loadgen.latency_ms");
  }

  // Phase A: serial routing on the virtual clock. Everything stateful —
  // scripted events, breaker transitions, replication applies, timeline
  // scrapes, the synthetic latency histogram — happens here, in arrival
  // order, so it cannot depend on thread scheduling.
  const double qps = config.offered_qps > 0.0 ? config.offered_qps : 5000.0;
  const std::uint64_t latency_seed =
      util::mix_seed(config.seed, kLatencySalt);
  std::vector<RouteDecision> decisions(queries.size());
  std::size_t next_event = 0;
  report.stale_age_hist.assign(
      static_cast<std::size_t>(cluster.config().staleness_budget) + 1, 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto arrival_ms = static_cast<std::uint64_t>(
        static_cast<double>(i) * 1000.0 / qps);
    while (next_event < events.size() &&
           events[next_event].at_ms <= arrival_ms) {
      apply_event(cluster, events[next_event], arrival_ms);
      ++next_event;
      ++report.events_applied;
    }
    if (config.timeline != nullptr) config.timeline->advance_to(arrival_ms);
    decisions[i] = cluster.route(queries[i], arrival_ms, i, config.policy);

    const RouteDecision& decision = decisions[i];
    report.failover_attempts +=
        decision.attempts > 0 ? decision.attempts - 1 : 0;
    if (decision.snapshot != nullptr) {
      if (decision.stale) {
        ++report.stale;
        report.stale_age_max =
            std::max(report.stale_age_max, decision.stale_age);
      }
      if (decision.stale_age < report.stale_age_hist.size()) {
        ++report.stale_age_hist[decision.stale_age];
      }
    }
    if (sent_counter != nullptr) {
      sent_counter->add();
      if (decision.snapshot != nullptr) {
        served_counter->add();
        if (decision.stale) stale_counter->add();
      } else if (decision.no_answer == serve::QueryStatus::kUnavailable) {
        unavailable_counter->add();
      }
      // Synthetic service time: pure function of (seed, i, route outcome) —
      // stale reads pay the follower catch-up tax, unavailable queries pay
      // the full failover walk. Never wall time.
      util::Rng rng = util::Rng::indexed(latency_seed, i);
      double virtual_ms = 0.2 + rng.exponential(2.0);
      if (decision.snapshot == nullptr) {
        virtual_ms = 25.0 + virtual_ms;
      } else if (decision.stale) {
        virtual_ms = 2.0 + 4.0 * virtual_ms;
      }
      if (decision.attempts > 1) {
        virtual_ms +=
            0.5 * static_cast<double>(decision.attempts - 1);
      }
      latency_hist->record(virtual_ms, static_cast<std::uint64_t>(i) + 1);
    }
  }
  // Fire any events scripted past the last arrival, then flush the
  // timeline so the final partial interval is captured.
  const auto end_ms = static_cast<std::uint64_t>(
      static_cast<double>(queries.size()) * 1000.0 / qps);
  while (next_event < events.size() && events[next_event].at_ms <= end_ms) {
    apply_event(cluster, events[next_event], end_ms);
    ++next_event;
    ++report.events_applied;
  }
  if (config.timeline != nullptr && !queries.empty()) {
    config.timeline->flush(end_ms);
  }

  // Phase B: parallel, pure evaluation of the fixed decisions against
  // immutable snapshots.
  struct Outcome {
    serve::QueryStatus status = serve::QueryStatus::kNoSnapshot;
    std::uint64_t hash = 0;
  };
  const std::vector<Outcome> outcomes = util::parallel_map(
      pool, queries.size(), 64, [&](std::size_t i) -> Outcome {
        const RouteDecision& decision = decisions[i];
        serve::QueryResponse response;
        if (decision.snapshot == nullptr) {
          response.status = decision.no_answer;
        } else {
          response = serve::answer(queries[i], *decision.snapshot);
          if (decision.stale) {
            // STALE{age}: identical marking to the PR 5 degraded path —
            // part of the answer's meaning, hashed into the checksum.
            response.stale = true;
            response.stale_age = decision.stale_age;
          }
        }
        return Outcome{response.status, serve::hash_response(i, response)};
      });

  // Phase C: serial fold.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    report.checksum ^= outcomes[i].hash;
    switch (outcomes[i].status) {
      case serve::QueryStatus::kOk: ++report.ok; break;
      case serve::QueryStatus::kNotFound: ++report.not_found; break;
      case serve::QueryStatus::kNoSnapshot: ++report.no_snapshot; break;
      case serve::QueryStatus::kUnavailable: ++report.unavailable; break;
      // Cluster routing never sheds or browns out.
      case serve::QueryStatus::kShed: break;
      case serve::QueryStatus::kBrownout: break;
    }
  }
  if (report.issued > 0) {
    report.availability =
        1.0 - static_cast<double>(report.unavailable) /
                  static_cast<double>(report.issued);
    report.stale_fraction = static_cast<double>(report.stale) /
                            static_cast<double>(report.issued);
  }
  if (latency_hist != nullptr && latency_hist->count() > 0) {
    report.p50_ms = latency_hist->quantile(0.50);
    report.p95_ms = latency_hist->quantile(0.95);
    report.p99_ms = latency_hist->quantile(0.99);
  }
  return report;
}

}  // namespace tero::cluster
