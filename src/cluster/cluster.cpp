#include "cluster/cluster.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace tero::cluster {

namespace {
/// Seed salts for the cluster's independent deterministic streams.
constexpr std::uint64_t kReplDelaySalt = 0x7e71;
constexpr std::uint64_t kFollowerPickSalt = 0xf011;
}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  config_.replicas = std::max<std::size_t>(1, config_.replicas);
  ring_ = store::ConsistentHashRing(config_.ring_virtual_nodes);
  if (config_.injector != nullptr) {
    repl_point_ = &config_.injector->point("cluster.repl");
  }
  if (config_.metrics != nullptr) {
    auto& registry = *config_.metrics;
    reads_ = &registry.counter("tero.cluster.reads");
    stale_reads_ = &registry.counter("tero.cluster.stale_reads");
    unavailable_ = &registry.counter("tero.cluster.unavailable");
    refused_ = &registry.counter("tero.cluster.refused");
    failovers_ = &registry.counter("tero.cluster.failovers");
    denied_ = serve::DeniedCounters(&registry);
    epoch_gauge_ = &registry.gauge("tero.cluster.epoch");
    nodes_gauge_ = &registry.gauge("tero.cluster.nodes");
  }
  const std::size_t count = std::max<std::size_t>(1, config_.nodes);
  nodes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes_.push_back(std::make_unique<Node>(make_node(next_uid_++)));
    ring_.add_node(nodes_.back()->name);
  }
  if (nodes_gauge_ != nullptr) {
    nodes_gauge_->set(static_cast<double>(nodes_.size()));
  }
}

Cluster::~Cluster() = default;

Cluster::Node Cluster::make_node(std::uint64_t uid) const {
  Node node;
  node.uid = uid;
  node.name = "node-" + std::to_string(uid);
  if (config_.injector != nullptr) {
    node.fault_point = &config_.injector->point("cluster." + node.name);
  }
  node.breaker = std::make_unique<fault::CircuitBreaker>(
      config_.breaker,
      fault::CircuitBreaker::state_gauge(config_.metrics, node.name));
  if (config_.metrics != nullptr) {
    node.lag_gauge = &config_.metrics->gauge(obs::MetricsRegistry::labeled(
        "tero.cluster.repl_lag", {{"node", node.name}}));
    node.lag_gauge->set(0.0);
  }
  return node;
}

std::string Cluster::route_key(const serve::Query& query) {
  // Mirrors QueryService::shard_key: every query about one {location, game}
  // entry routes to that entry's owners; top-k is keyed by game alone.
  if (query.kind == serve::QueryKind::kTopK) return "topk|" + query.game;
  return serve::entry_key(query.location, query.game);
}

double Cluster::repl_delay_ms(const Node& node, std::uint64_t epoch) const {
  util::Rng rng = util::Rng::indexed(
      util::mix_seed(config_.seed, kReplDelaySalt),
      util::mix_seed(epoch, node.uid));
  return rng.uniform(config_.repl_delay_ms_min,
                     std::max(config_.repl_delay_ms_min,
                              config_.repl_delay_ms_max));
}

void Cluster::enqueue_delivery(Node& node, serve::SnapshotPtr snapshot,
                               std::uint64_t epoch,
                               std::uint64_t publish_ms) {
  Delivery delivery;
  delivery.epoch = epoch;
  delivery.snapshot = std::move(snapshot);
  delivery.apply_at_ms =
      publish_ms + static_cast<std::uint64_t>(repl_delay_ms(node, epoch));
  // In-order application: a delivery never lands before its predecessor.
  if (!node.pending.empty()) {
    delivery.apply_at_ms =
        std::max(delivery.apply_at_ms, node.pending.back().apply_at_ms);
  }
  node.pending.push_back(std::move(delivery));
}

void Cluster::apply_pending(Node& node, std::uint64_t now_ms, bool all) {
  while (!node.pending.empty() &&
         (all || node.pending.front().apply_at_ms <= now_ms)) {
    Delivery& delivery = node.pending.front();
    if (delivery.epoch > node.applied_epoch) {
      node.applied = std::move(delivery.snapshot);
      node.applied_epoch = delivery.epoch;
    }
    node.pending.pop_front();
  }
  update_lag_gauge(node);
}

void Cluster::update_lag_gauge(const Node& node) const {
  if (node.lag_gauge == nullptr) return;
  node.lag_gauge->set(static_cast<double>(epoch_ - node.applied_epoch));
}

std::uint64_t Cluster::publish(std::vector<serve::SnapshotEntry> entries,
                               std::uint64_t now_ms) {
  ++epoch_;
  current_ =
      std::make_shared<const serve::Snapshot>(epoch_, std::move(entries));
  for (auto& node_ptr : nodes_) {
    Node& node = *node_ptr;
    // A dead or replication-partitioned node receives nothing; it heals by
    // resync (restart) or by a later publish after the partition lifts.
    if (!node.alive || !node.repl_linked) {
      update_lag_gauge(node);
      continue;
    }
    if (repl_point_ != nullptr) {
      const fault::FaultDecision decision =
          repl_point_->decide(util::mix_seed(epoch_, node.uid));
      if (decision.kind == fault::FaultKind::kError ||
          decision.kind == fault::FaultKind::kCrash) {
        // Delivery dropped. Snapshots are full state, so the next epoch
        // (or a leader read's catch-up) heals the gap.
        update_lag_gauge(node);
        continue;
      }
      if (decision.kind == fault::FaultKind::kLatency) {
        enqueue_delivery(node, current_, epoch_,
                         now_ms + static_cast<std::uint64_t>(
                                      decision.delay_s * 1000.0));
        update_lag_gauge(node);
        continue;
      }
    }
    enqueue_delivery(node, current_, epoch_, now_ms);
    update_lag_gauge(node);
  }
  rebuild_claims();
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->set(static_cast<double>(epoch_));
  }
  return epoch_;
}

std::uint64_t Cluster::republish(std::uint64_t now_ms) {
  if (current_ == nullptr) return 0;
  const auto entries = current_->entries();
  return publish(std::vector<serve::SnapshotEntry>(entries.begin(),
                                                   entries.end()),
                 now_ms);
}

RouteDecision Cluster::route(const serve::Query& query, std::uint64_t now_ms,
                             std::uint64_t query_index, ReadPolicy policy) {
  RouteDecision decision;
  if (reads_ != nullptr) reads_->add();
  if (current_ == nullptr) {
    decision.no_answer = serve::QueryStatus::kNoSnapshot;
    return decision;
  }

  std::vector<std::string> owners =
      ring_.nodes_for(route_key(query), config_.replicas);
  std::vector<std::size_t> order;
  order.reserve(owners.size());
  for (const std::string& owner : owners) order.push_back(index_of(owner));
  if (policy == ReadPolicy::kFollowerPreferred && order.size() > 1) {
    // Deterministic follower pick: rotate the follower list by a
    // (seed, query)-keyed offset, leader demoted to last resort.
    util::Rng rng = util::Rng::indexed(
        util::mix_seed(config_.seed, kFollowerPickSalt), query_index);
    const std::size_t followers = order.size() - 1;
    const std::size_t offset = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(followers) - 1));
    std::rotate(order.begin() + 1, order.begin() + 1 +
                    static_cast<std::ptrdiff_t>(offset), order.end());
    std::rotate(order.begin(), order.begin() + 1, order.end());
  }

  const double now_s = static_cast<double>(now_ms) / 1000.0;
  const std::size_t leader_index = index_of(owners.front());
  for (const std::size_t node_index : order) {
    if (node_index >= nodes_.size()) continue;
    Node& node = *nodes_[node_index];
    ++decision.attempts;
    if (!node.breaker->allow(now_s)) {
      // Breaker open: skip without consulting the fault point — the whole
      // point of breaking is to stop poking a known-bad node.
      continue;
    }
    bool failed = !node.alive;
    if (!failed && node.fault_point != nullptr) {
      const fault::FaultDecision fault = node.fault_point->decide(query_index);
      failed = fault.kind == fault::FaultKind::kError ||
               fault.kind == fault::FaultKind::kCrash;
    }
    if (failed) {
      node.breaker->on_failure(now_s);
      continue;
    }
    node.breaker->on_success();

    serve::SnapshotPtr serving;
    std::uint64_t serving_epoch = 0;
    if (node_index == leader_index && node.repl_linked) {
      // The range leader acknowledged the publish, so for its own ranges it
      // serves the current epoch directly — leader reads are always fresh.
      // Its node-local applied state (the ranges it *follows*) still
      // advances only by delivery, so the same node can be fresh as a
      // leader and lagging as a follower.
      serving = current_;
      serving_epoch = epoch_;
    } else {
      apply_pending(node, now_ms, /*all=*/false);
      const std::uint64_t lag = epoch_ - node.applied_epoch;
      if (node.applied == nullptr || lag > config_.staleness_budget) {
        // Bounded staleness: over-budget answers are refused, never
        // served. Not a node failure — the breaker stays untouched.
        if (refused_ != nullptr) refused_->add();
        denied_.add(serve::DenyReason::kStale);
        continue;
      }
      serving = node.applied;
      serving_epoch = node.applied_epoch;
    }

    decision.snapshot = std::move(serving);
    decision.node = node.name;
    decision.stale_age = epoch_ - serving_epoch;
    decision.stale = decision.stale_age > 0;
    if (decision.stale && stale_reads_ != nullptr) stale_reads_->add();
    if (decision.attempts > 1 && failovers_ != nullptr) {
      failovers_->add(decision.attempts - 1);
    }
    return decision;
  }
  decision.no_answer = serve::QueryStatus::kUnavailable;
  if (unavailable_ != nullptr) unavailable_->add();
  denied_.add(serve::DenyReason::kUnavailable);
  return decision;
}

void Cluster::kill(std::size_t node_index) {
  if (node_index >= nodes_.size()) return;
  Node& node = *nodes_[node_index];
  node.alive = false;
  node.pending.clear();  // in-flight deliveries die with the node
}

void Cluster::restart(std::size_t node_index, std::uint64_t now_ms) {
  if (node_index >= nodes_.size()) return;
  Node& node = *nodes_[node_index];
  if (node.alive) return;
  node.alive = true;
  // Resync: the current epoch arrives after one replication delay; until
  // then the node serves within the staleness budget or refuses.
  if (current_ != nullptr && node.applied_epoch < epoch_) {
    enqueue_delivery(node, current_, epoch_, now_ms);
  }
}

void Cluster::partition(std::size_t node_index, bool severed) {
  if (node_index >= nodes_.size()) return;
  nodes_[node_index]->repl_linked = !severed;
}

std::string Cluster::join(std::uint64_t now_ms) {
  auto node_ptr = std::make_unique<Node>(make_node(next_uid_++));
  Node& node = *node_ptr;
  // Synchronous hand-off: the joining node receives the current snapshot
  // as part of the join, so its ranges are servable the moment the ring
  // includes it — no window where a remapped key has no owner.
  node.applied = current_;
  node.applied_epoch = epoch_;
  const store::ConsistentHashRing before = ring_;
  ring_.add_node(node.name);
  last_remap_ = store::ConsistentHashRing::remap_diff(before, ring_);
  nodes_.push_back(std::move(node_ptr));
  shift_claims(last_remap_);
  update_lag_gauge(*nodes_.back());
  if (nodes_gauge_ != nullptr) {
    nodes_gauge_->set(static_cast<double>(nodes_.size()));
  }
  (void)now_ms;
  return nodes_.back()->name;
}

bool Cluster::leave(std::string_view name) {
  const std::size_t node_index = index_of(name);
  if (node_index >= nodes_.size()) return false;
  const store::ConsistentHashRing before = ring_;
  ring_.remove_node(nodes_[node_index]->name);
  last_remap_ = store::ConsistentHashRing::remap_diff(before, ring_);
  // Hand off before erasing: the departing node still holds its claimed
  // keys, and every one of them is in a moved range, so shift_claims drains
  // its set into the ring successors.
  shift_claims(last_remap_);
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(node_index));
  if (nodes_gauge_ != nullptr) {
    nodes_gauge_->set(static_cast<double>(nodes_.size()));
  }
  return true;
}

void Cluster::rebuild_claims() {
  for (auto& node : nodes_) node->claimed.clear();
  if (current_ == nullptr) return;
  for (const serve::SnapshotEntry& entry : current_->entries()) {
    const std::size_t owner = index_of(ring_.node_for(entry.key));
    if (owner < nodes_.size()) nodes_[owner]->claimed.insert(entry.key);
  }
}

void Cluster::shift_claims(const store::RemapDiff& diff) {
  if (diff.empty()) return;
  // Move exactly the keys whose hash falls in a moved range; everything
  // else stays where it is. audit() cross-checks this incremental hand-off
  // against a full ring recompute.
  std::vector<std::string> moved;
  for (auto& node : nodes_) {
    for (auto it = node->claimed.begin(); it != node->claimed.end();) {
      if (diff.moved(*it)) {
        moved.push_back(*it);
        it = node->claimed.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::string& key : moved) {
    const std::size_t owner = index_of(ring_.node_for(key));
    if (owner < nodes_.size()) nodes_[owner]->claimed.insert(std::move(key));
  }
}

OwnershipAudit Cluster::audit() const {
  OwnershipAudit result;
  if (current_ == nullptr) {
    result.ok = true;
    return result;
  }
  std::map<std::string_view, std::size_t> claim_count;
  for (const auto& node : nodes_) {
    for (const std::string& key : node->claimed) {
      ++claim_count[key];
      if (ring_.node_for(key) != node->name) ++result.misplaced;
    }
  }
  const auto entries = current_->entries();
  result.keys = entries.size();
  for (const serve::SnapshotEntry& entry : entries) {
    const auto it = claim_count.find(entry.key);
    if (it == claim_count.end()) {
      ++result.lost;
    } else {
      if (it->second > 1) ++result.double_owned;
      it->second = 0;  // mark seen; leftovers are stray claims
    }
  }
  for (const auto& [key, count] : claim_count) {
    if (count > 0) ++result.misplaced;  // claimed key outside the keyspace
  }
  result.ok = result.lost == 0 && result.double_owned == 0 &&
              result.misplaced == 0;
  return result;
}

std::vector<std::string> Cluster::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) names.push_back(node->name);
  return names;
}

std::size_t Cluster::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->name == name) return i;
  }
  return nodes_.size();
}

bool Cluster::alive(std::size_t node_index) const {
  return node_index < nodes_.size() && nodes_[node_index]->alive;
}

std::uint64_t Cluster::applied_epoch(std::size_t node_index) const {
  return node_index < nodes_.size() ? nodes_[node_index]->applied_epoch : 0;
}

fault::CircuitBreaker::State Cluster::breaker_state(
    std::size_t node_index) const {
  if (node_index >= nodes_.size()) return fault::CircuitBreaker::State::kClosed;
  return nodes_[node_index]->breaker->state();
}

std::size_t Cluster::claimed_keys(std::size_t node_index) const {
  return node_index < nodes_.size() ? nodes_[node_index]->claimed.size() : 0;
}

std::vector<std::string> Cluster::owners_of(const serve::Query& query) const {
  return ring_.nodes_for(route_key(query), config_.replicas);
}

}  // namespace tero::cluster
