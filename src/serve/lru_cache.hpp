#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace tero::serve {

/// Bounded LRU map from a canonical query string to a precomputed response,
/// used per shard in front of the snapshot index. NOT thread-safe on its
/// own — each QueryService shard guards its cache with the shard mutex, so
/// there is exactly one lock per cache access and no lock is shared across
/// shards.
///
/// Entries are implicitly scoped to one snapshot epoch: the service clears
/// every shard cache at publish time, so a cached value can never outlive
/// the snapshot it was computed from (tested in serve_test
/// CacheInvalidatedOnPublish).
template <typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look up `key`; a hit refreshes its recency.
  [[nodiscard]] std::optional<Value> get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert or refresh `key`; evicts the least-recently-used entry when
  /// full. A capacity of 0 disables caching entirely.
  void put(const std::string& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      ++evictions_;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  /// Zero the hit/miss/eviction stats. The service calls this at publish
  /// time after folding the per-epoch values into the shard's lifetime
  /// totals, so each epoch's hit-rate accounting starts fresh while the
  /// service-level cumulative counts never regress.
  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::string, Value>> order_;  ///< MRU at front
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::
                         iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tero::serve
