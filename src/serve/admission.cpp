#include "serve/admission.hpp"

#include <algorithm>

namespace tero::serve {

AdmissionController::AdmissionController(double rate_qps, double burst)
    : rate_qps_(rate_qps),
      burst_(std::max(burst, rate_qps > 0.0 ? 1.0 : 0.0)),
      tokens_(burst_) {}

bool AdmissionController::try_admit(double now_s, double cost) {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (now_s > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + (now_s - last_refill_) * rate_qps_);
    last_refill_ = now_s;
  }
  if (tokens_ >= cost) {
    tokens_ -= cost;
    ++admitted_;
    return true;
  }
  ++shed_;
  return false;
}

std::uint64_t AdmissionController::admitted() const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t AdmissionController::shed() const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace tero::serve
