#include "serve/admission.hpp"

#include <algorithm>

namespace tero::serve {

AdmissionController::AdmissionController(double rate_qps, double burst)
    : rate_qps_(rate_qps),
      burst_(std::max(burst, rate_qps > 0.0 ? 1.0 : 0.0)),
      tokens_(burst_) {}

void AdmissionController::refill_locked(double now_s) {
  if (now_s > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + (now_s - last_refill_) * rate_qps_);
    last_refill_ = now_s;
  }
}

bool AdmissionController::try_admit(double now_s, double cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rate_qps_ <= 0.0) return true;
  refill_locked(now_s);
  if (tokens_ >= cost) {
    tokens_ -= cost;
    ++admitted_;
    return true;
  }
  ++shed_;
  return false;
}

void AdmissionController::set_rate(double now_s, double rate_qps,
                                   double burst) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool was_enabled = rate_qps_ > 0.0;
  if (was_enabled) {
    // Settle the accrued interval at the *old* rate before the step: tokens
    // earned up to now_s were earned under the old contract. Doing this
    // first is what makes a step at a refill boundary exact — a step-up
    // cannot retroactively mint (now_s - last_refill_) * (new - old) tokens
    // and a step-down cannot erase tokens already earned.
    refill_locked(now_s);
  } else {
    // Disabled buckets do no refill accounting; restart the clock so an
    // enable doesn't refill across the whole disabled span.
    last_refill_ = now_s;
  }
  rate_qps_ = rate_qps;
  burst_ = std::max(burst > 0.0 ? burst : burst_,
                    rate_qps > 0.0 ? 1.0 : 0.0);
  if (!was_enabled && rate_qps_ > 0.0) {
    tokens_ = burst_;  // enabling starts full, as at construction
  }
  // Never negative, never above the (possibly smaller) new burst.
  tokens_ = std::clamp(tokens_, 0.0, burst_);
}

std::uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace tero::serve
