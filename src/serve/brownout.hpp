#pragma once

#include <cstdint>
#include <string_view>

#include "serve/service.hpp"

namespace tero::serve {

/// Brownout degradation ladder (DESIGN.md §16): ordered service levels the
/// overload controller climbs *before* resorting to shedding. Each level
/// trades answer fidelity for cost — disabling expensive query kinds,
/// coarsening percentiles, widening the staleness budget — so the system
/// keeps answering cheap questions while it is saturated.
///
/// Determinism contract: what a level does to a query is a pure function of
/// (query kind, level) — never of cache contents, shard health, or thread
/// timing — so a sweep that replays the same (seed, level schedule) produces
/// bit-identical outcomes at any thread count.
enum class BrownoutLevel : std::uint8_t {
  /// Normal operation: every kind served at full fidelity.
  kFull = 0,
  /// Cheap-kinds-only: refuse the kinds that cannot amortize across callers
  /// (ECDF point evaluations, range scans over history). Point percentiles,
  /// means, counts and top-k — the dashboard staples — still serve.
  kCachedOnly = 1,
  /// Also snap percentile params to the coarse palette {50, 90, 99} (one
  /// cache entry per entry key instead of seven) and refuse top-k scans.
  kCoarsePercentile = 2,
  /// Also prefer the previous epoch: answers carry STALE{age} markers and
  /// skip the fresh-epoch compute entirely. The staleness budget is wide
  /// open — an old answer beats no answer.
  kStaleTolerant = 3,
  /// Last rung before the admission controller sheds outright: only the
  /// three cheapest kinds (percentile/mean/count) survive, still coarse and
  /// stale. Everything else is refused with kBrownout.
  kShed = 4,
};

inline constexpr int kBrownoutLevels = 5;

[[nodiscard]] std::string_view to_string(BrownoutLevel level) noexcept;

/// Clamp an integer to a valid ladder rung.
[[nodiscard]] BrownoutLevel brownout_level(int level) noexcept;

/// What the ladder does to one query at one level.
struct BrownoutAction {
  /// Refused outright: answer with QueryStatus::kBrownout, cost ~nothing.
  bool refuse = false;
  /// Serve from the previous epoch with a STALE{age} marker (kStaleTolerant
  /// and above).
  bool prefer_stale = false;
  /// The (possibly rewritten) query to evaluate — kCoarsePercentile and
  /// above snap percentile params to the coarse palette.
  Query query;
  /// Relative service cost in capacity units (1.0 = a full-fidelity point
  /// percentile); the controller's queue model and the adaptive admission
  /// rate both price queries with this.
  double cost = 1.0;
};

/// Pure ladder semantics: (query, level) -> action. See the determinism
/// contract above; this is the single source of truth shared by
/// QueryService's live path and the control sweep's router.
[[nodiscard]] BrownoutAction apply_brownout(const Query& query,
                                            BrownoutLevel level);

/// Relative cost of serving `kind` at full fidelity (the level-0 price
/// apply_brownout starts from).
[[nodiscard]] double query_kind_cost(QueryKind kind) noexcept;

}  // namespace tero::serve
