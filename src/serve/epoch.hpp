#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/snapshot.hpp"

namespace tero::serve {

/// RCU-style snapshot publication: readers grab the current snapshot (a
/// refcount bump under a mutex held for two pointer writes) and keep using
/// it for as long as they hold the pointer — every query after that runs
/// lock-free against the immutable snapshot; writers build the next epoch
/// off to the side and install it with one pointer swap. No reader ever
/// observes a half-built snapshot and no epoch is freed while a reader
/// still holds it (shared_ptr refcount is the grace period).
///
/// The pointer slot is guarded by a plain mutex rather than
/// std::atomic<shared_ptr> deliberately: libstdc++ 12's _Sp_atomic unlocks
/// its reader-side spinlock with memory_order_relaxed, so the internal raw
/// pointer accesses have no formal happens-before edge and TSan (correctly,
/// per the ISO model) reports them as a race. The mutex is uncontended
/// outside of publish and its critical section is tiny.
///
/// Epoch numbers increase monotonically from 1; epoch 0 means "nothing
/// published yet" (current() returns null until the first publish).
class EpochPublisher {
 public:
  EpochPublisher() = default;
  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  /// The latest published snapshot; null before the first publish. Safe to
  /// call from any thread at any time.
  [[nodiscard]] SnapshotPtr current() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// Latest published epoch number; 0 before the first publish.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Build a snapshot from `entries` under the next epoch number and install
  /// it. Returns the new epoch. Publishers may race; each gets a distinct
  /// epoch but only the last installer wins the pointer (see publish()).
  std::uint64_t publish(std::vector<SnapshotEntry> entries);

  /// Install an externally built snapshot (e.g. one restored from disk).
  /// The snapshot's own epoch is preserved and becomes the published epoch.
  void publish(SnapshotPtr snapshot);

 private:
  std::atomic<std::uint64_t> next_epoch_{1};
  std::atomic<std::uint64_t> published_epoch_{0};
  mutable std::mutex mutex_;  // guards current_
  SnapshotPtr current_;
};

}  // namespace tero::serve
