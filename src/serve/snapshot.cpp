#include "serve/snapshot.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "tero/pipeline.hpp"

namespace tero::serve {

double SnapshotEntry::percentile(double pct) const {
  if (sorted_values.empty()) return 0.0;
  return stats::percentile_sorted(sorted_values, pct);
}

double SnapshotEntry::ecdf(double x) const noexcept {
  if (sorted_values.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_values.begin(), sorted_values.end(),
                                   x);
  return static_cast<double>(it - sorted_values.begin()) /
         static_cast<double>(sorted_values.size());
}

std::string entry_key(const geo::Location& location, std::string_view game) {
  std::string key;
  key.reserve(game.size() + location.country.size() +
              location.region.size() + location.city.size() + 3);
  key += game;
  key += '|';
  key += location.country;
  key += '|';
  key += location.region;
  key += '|';
  key += location.city;
  return key;
}

Snapshot::Snapshot(std::uint64_t epoch, std::vector<SnapshotEntry> entries)
    : epoch_(epoch), entries_(std::move(entries)) {
  for (auto& entry : entries_) {
    if (entry.key.empty()) entry.key = entry_key(entry.location, entry.game);
    entry.samples = entry.sorted_values.size();
    std::sort(entry.sorted_values.begin(), entry.sorted_values.end());
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.key < b.key;
            });
}

const SnapshotEntry* Snapshot::find(const geo::Location& location,
                                    std::string_view game) const {
  return find_key(entry_key(location, game));
}

const SnapshotEntry* Snapshot::find_key(std::string_view key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const SnapshotEntry& entry, std::string_view k) {
        return entry.key < k;
      });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &*it;
}

std::vector<const SnapshotEntry*> Snapshot::worst_locations(
    std::string_view game, std::size_t k) const {
  // Entries sort by "game|..." so one game's block is contiguous.
  std::string prefix(game);
  prefix += '|';
  auto it = std::lower_bound(entries_.begin(), entries_.end(), prefix,
                             [](const SnapshotEntry& entry,
                                const std::string& p) {
                               return entry.key < p;
                             });
  std::vector<const SnapshotEntry*> candidates;
  for (; it != entries_.end() && it->key.rfind(prefix, 0) == 0; ++it) {
    if (it->samples > 0) candidates.push_back(&*it);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const SnapshotEntry* a, const SnapshotEntry* b) {
              if (a->box.p95 != b->box.p95) return a->box.p95 > b->box.p95;
              return a->key < b->key;
            });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

SnapshotEntry entry_from(const core::LocationGameAggregate& aggregate) {
  SnapshotEntry entry;
  entry.location = aggregate.location;
  entry.game = aggregate.game;
  entry.key = entry_key(entry.location, entry.game);
  entry.streamers = aggregate.streamers;
  entry.sorted_values = aggregate.distribution;
  std::sort(entry.sorted_values.begin(), entry.sorted_values.end());
  entry.samples = entry.sorted_values.size();
  if (!entry.sorted_values.empty()) {
    entry.mean_ms = stats::mean(entry.sorted_values);
  }
  if (aggregate.box.has_value()) entry.box = *aggregate.box;
  entry.anomaly_flagged = aggregate.shared.sufficient_data &&
                          !aggregate.shared.anomalies.empty();
  entry.shared_anomalies = aggregate.shared.anomalies.size();
  entry.server_city = aggregate.server_city;
  entry.avg_corrected_distance_km = aggregate.avg_corrected_distance_km;
  return entry;
}

std::vector<SnapshotEntry> entries_from(const core::Dataset& dataset) {
  std::vector<SnapshotEntry> entries;
  entries.reserve(dataset.aggregates.size());
  for (const auto& aggregate : dataset.aggregates) {
    entries.push_back(entry_from(aggregate));
  }
  return entries;
}

}  // namespace tero::serve
