#include "serve/brownout.hpp"

#include <algorithm>

namespace tero::serve {

std::string_view to_string(BrownoutLevel level) noexcept {
  switch (level) {
    case BrownoutLevel::kFull: return "full";
    case BrownoutLevel::kCachedOnly: return "cached-only";
    case BrownoutLevel::kCoarsePercentile: return "coarse-percentile";
    case BrownoutLevel::kStaleTolerant: return "stale-tolerant";
    case BrownoutLevel::kShed: return "shed";
  }
  return "full";
}

BrownoutLevel brownout_level(int level) noexcept {
  return static_cast<BrownoutLevel>(
      std::clamp(level, 0, kBrownoutLevels - 1));
}

double query_kind_cost(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kPercentile: return 1.0;
    case QueryKind::kMean: return 0.7;
    case QueryKind::kCount: return 0.5;
    case QueryKind::kEcdf: return 1.5;
    case QueryKind::kTopK: return 4.0;
    // History scans walk sealed segments — the expensive tail of the mix.
    case QueryKind::kRangeCount:
    case QueryKind::kRangeMean:
    case QueryKind::kRangePercentile:
    case QueryKind::kRangeDrift: return 6.0;
  }
  return 1.0;
}

namespace {

/// Coarse percentile palette (kCoarsePercentile and above): every percentile
/// request snaps to the nearest of these, collapsing the seven-value
/// dashboard palette into three cache keys.
constexpr double kCoarsePercentiles[] = {50.0, 90.0, 99.0};

double snap_percentile(double param) {
  double best = kCoarsePercentiles[0];
  for (const double p : kCoarsePercentiles) {
    if (std::abs(p - param) < std::abs(best - param)) best = p;
  }
  return best;
}

/// A refusal is a fast rejection — roughly the price of a shed.
constexpr double kRefuseCost = 0.05;

}  // namespace

BrownoutAction apply_brownout(const Query& query, BrownoutLevel level) {
  BrownoutAction action;
  action.query = query;
  action.cost = query_kind_cost(query.kind);
  if (level == BrownoutLevel::kFull) return action;

  // kCachedOnly and above: the kinds that cannot amortize across callers go
  // first. ECDF params are per-caller continuous values (cache-hostile) and
  // range kinds scan history.
  const bool expensive = query.kind == QueryKind::kEcdf ||
                         is_range_kind(query.kind);
  if (expensive) {
    action.refuse = true;
    action.cost = kRefuseCost;
    return action;
  }

  if (level >= BrownoutLevel::kCoarsePercentile) {
    if (query.kind == QueryKind::kTopK) {
      action.refuse = true;
      action.cost = kRefuseCost;
      return action;
    }
    if (query.kind == QueryKind::kPercentile) {
      action.query.param = snap_percentile(query.param);
      action.cost = 0.5;  // three shared cache keys soak nearly every miss
    } else {
      action.cost = std::min(action.cost, 0.5);
    }
  }

  if (level >= BrownoutLevel::kStaleTolerant) {
    // Previous-epoch answers skip the fresh compute; the marginal cost is
    // the stale lookup plus the STALE bookkeeping.
    action.prefer_stale = true;
    action.cost = std::min(action.cost, 0.35);
  }

  if (level >= BrownoutLevel::kShed) {
    if (query.kind != QueryKind::kPercentile &&
        query.kind != QueryKind::kMean && query.kind != QueryKind::kCount) {
      action.refuse = true;
      action.cost = kRefuseCost;
      return action;
    }
    action.cost = std::min(action.cost, 0.25);
  }
  return action;
}

}  // namespace tero::serve
