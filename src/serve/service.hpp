#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fault/policy.hpp"
#include "serve/admission.hpp"
#include "serve/epoch.hpp"
#include "serve/lru_cache.hpp"
#include "serve/snapshot.hpp"
#include "store/consistent_hash.hpp"
#include "tsdb/store.hpp"

namespace tero::fault {
class FaultInjector;
class FaultPoint;
}  // namespace tero::fault

namespace tero::obs {
class MetricsRegistry;
class TraceRecorder;
class Counter;
class Histogram;
}  // namespace tero::obs

namespace tero::serve {

/// What a consumer can ask the serving layer (DESIGN.md §9). All kinds are
/// pure functions of (query, snapshot), which is the determinism anchor for
/// the load generator: the same query against the same epoch always returns
/// the same bits, no matter which shard, thread, or cache served it.
enum class QueryKind {
  kPercentile,  ///< param = percentile in [0, 100]
  kMean,
  kCount,       ///< retained sample count
  kEcdf,        ///< param = latency_ms; value = P(latency <= param)
  kTopK,        ///< k worst locations of `game` by p95 (location ignored)
  // Historical range kinds, answered from the tiered time-series store
  // (ServeConfig::tsdb) instead of the published snapshot. The answer is
  // one RangePoint per window in [t0_ms, t1_ms); `value` echoes the last
  // window. kRangeDrift ignores the window fields: value = param-percentile
  // over [t1-7d, t1) minus the same over [t1-14d, t1-7d).
  kRangeCount,
  kRangeMean,
  kRangePercentile,  ///< param = percentile in [0, 100]
  kRangeDrift,       ///< param = percentile in [0, 100]
};

/// True for the kinds served from the time-series store.
[[nodiscard]] constexpr bool is_range_kind(QueryKind kind) noexcept {
  return kind == QueryKind::kRangeCount || kind == QueryKind::kRangeMean ||
         kind == QueryKind::kRangePercentile ||
         kind == QueryKind::kRangeDrift;
}

struct Query {
  QueryKind kind = QueryKind::kPercentile;
  geo::Location location;
  std::string game;
  double param = 50.0;
  std::size_t k = 5;
  /// Range-kind window: [t0_ms, t1_ms) split into window_ms buckets.
  std::int64_t t0_ms = 0;
  std::int64_t t1_ms = 0;
  std::int64_t window_ms = 86'400'000;
  /// Caller-assigned trace/span id (0 = none). The "serve.query" span is
  /// tagged with it and, when the latency histogram has exemplars armed,
  /// the recorded sample carries it — the link that lets `obs report`
  /// print "p99 bucket exemplar -> span 0x...". The load generator sets
  /// trace_id = query index + 1. Never part of the answer or its hash.
  std::uint64_t trace_id = 0;
};

enum class QueryStatus {
  kOk,
  kNotFound,     ///< snapshot has no such {location, game}
  kShed,         ///< rejected by admission control
  kNoSnapshot,   ///< nothing published yet
  kUnavailable,  ///< shard down and no previous epoch to degrade to
  kBrownout,     ///< refused by the brownout ladder (expensive kind disabled)
};

/// Brownout degradation ladder rung (full declaration in brownout.hpp).
enum class BrownoutLevel : std::uint8_t;

/// Unified denial accounting (DESIGN.md §16): every request the system turns
/// away increments `tero.serve.denied{reason=...}` with one of these labels,
/// so SLO specs and the overload controller read a single series family.
/// The legacy names (tero.serve.shed, tero.serve.unavailable,
/// tero.cluster.refused, ...) still tick as aliases for one release.
enum class DenyReason : std::uint8_t {
  kShed,         ///< admission control rejected (token bucket empty)
  kStale,        ///< bounded-staleness refusal (over the staleness budget)
  kUnavailable,  ///< no healthy replica/shard could answer
  kBrownout,     ///< brownout ladder disabled the query kind
};

[[nodiscard]] std::string_view to_string(DenyReason reason) noexcept;

/// Handle bundle for the denied{reason=...} family — resolved once at
/// construction (the obs::Counter idiom), null-safe when metrics are off.
/// Shared by QueryService and cluster::Cluster so both layers write the
/// same series.
class DeniedCounters {
 public:
  DeniedCounters() = default;
  explicit DeniedCounters(obs::MetricsRegistry* metrics);

  void add(DenyReason reason) const;

 private:
  obs::Counter* by_reason_[4] = {nullptr, nullptr, nullptr, nullptr};
};

struct TopEntry {
  std::string location;
  double value = 0.0;  ///< the ranking statistic (p95)
};

struct QueryResponse {
  QueryStatus status = QueryStatus::kNoSnapshot;
  double value = 0.0;
  std::uint64_t epoch = 0;
  bool cached = false;
  /// Degraded-mode marker (DESIGN.md §11): the owning shard was unavailable
  /// and this answer came from the last good snapshot instead of the
  /// current epoch — explicitly STALE{age}, never silently wrong.
  bool stale = false;
  std::uint64_t stale_age = 0;  ///< epochs behind the current one
  std::vector<TopEntry> top;    ///< kTopK only
  std::vector<tsdb::RangePoint> series;  ///< range kinds only
};

/// Order- and thread-independent fingerprint of one (query index, response)
/// pair; the load generator XOR-folds these into its result checksum. Timing
/// artifacts (`cached`) are deliberately excluded.
[[nodiscard]] std::uint64_t hash_response(std::uint64_t index,
                                          const QueryResponse& response);

/// Pure query evaluation against one immutable snapshot — the kernel behind
/// QueryService's read path, exposed so other serving layers (the cluster's
/// replicated reads) can answer from whichever epoch their routing picked.
/// No caches, no metrics, no staleness markers: status/value/epoch/top only.
[[nodiscard]] QueryResponse answer(const Query& query,
                                   const Snapshot& snapshot);

struct ServeConfig {
  /// Number of shards; each owns an LRU cache behind its own mutex. Keys
  /// are placed by store::ConsistentHashRing, so resizing a live fleet
  /// would only remap ~1/n of the keyspace.
  std::size_t shards = 4;
  int ring_virtual_nodes = 64;
  /// Per-shard response-cache capacity; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Admission control (token bucket over all shards); <= 0 disables it
  /// and the service never sheds.
  double admission_rate_qps = 0.0;
  double admission_burst = 0.0;
  /// Observability sinks (not owned; may be null). Observational only —
  /// query results never depend on them.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Nonzero arms exemplar capture on tero.serve.query_ms: each latency
  /// bucket keeps one (value, span id) sample chosen by deterministic
  /// min-wise reservoir (see obs::Histogram::record). Requires metrics.
  std::uint64_t exemplar_seed = 0;
  /// Historical store answering the range query kinds (not owned; may be
  /// null, in which case range queries return kUnavailable). Range answers
  /// are cached in the per-shard LRU under a key that folds the store's
  /// version counter, so a cached answer never outlives the data.
  tsdb::TimeSeriesStore* tsdb = nullptr;
  /// Optional fault injection (not owned; may be null). Arms one
  /// "serve.shard-<i>" point per shard: an injected error marks the shard
  /// unavailable for that query, trips its circuit breaker, and routes the
  /// answer through the degraded path (previous snapshot + STALE marker).
  fault::FaultInjector* injector = nullptr;
  /// Per-shard circuit-breaker tuning (used only when injector != null).
  fault::CircuitBreaker::Config breaker;
};

/// Sharded in-process query service over published snapshots.
///
/// Read path: admission -> atomic snapshot load -> shard (consistent hash
/// of the entry key) -> shard LRU cache -> snapshot index. Publish path:
/// build entries off to the side, one atomic swap, then invalidate the
/// shard caches. Readers never block on a publish: a query that raced the
/// swap simply finishes against the epoch it loaded.
class QueryService {
 public:
  explicit QueryService(ServeConfig config);

  /// Install a new snapshot and invalidate every shard cache. Returns the
  /// published epoch.
  std::uint64_t publish(std::vector<SnapshotEntry> entries);
  void publish(SnapshotPtr snapshot);

  [[nodiscard]] SnapshotPtr snapshot() const { return publisher_.current(); }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return publisher_.epoch();
  }

  /// Answer one query. `now_s` feeds admission control: pass a virtual
  /// arrival time for deterministic replay, or leave negative to use wall
  /// time since service construction.
  [[nodiscard]] QueryResponse query(const Query& query, double now_s = -1.0);

  /// Admission-control front door, exposed so the open-loop load generator
  /// can take shed decisions serially in arrival order (the determinism
  /// requirement) before fanning admitted queries out to a pool. Counts
  /// sheds in the metrics registry.
  bool try_admit(double now_s = -1.0);

  /// Answer a query that has already passed admission (or for which
  /// admission is intentionally bypassed, e.g. closed-loop capacity
  /// measurement). `now_s` feeds the per-shard circuit breakers (virtual
  /// time for deterministic replay; negative = wall time).
  [[nodiscard]] QueryResponse query_admitted(const Query& query,
                                             double now_s = -1.0);

  /// Batch point lookup; one admission charge per query, shared snapshot
  /// load (all answers come from the same epoch).
  [[nodiscard]] std::vector<QueryResponse> query_batch(
      std::span<const Query> queries, double now_s = -1.0);

  /// Retune the admission token bucket mid-run (the overload controller's
  /// actuation path; see AdmissionController::set_rate for the
  /// no-minting/no-negative contract). Exports the new rate as the
  /// tero.serve.admission_rate gauge when metrics are on.
  void set_admission_rate(double now_s, double rate_qps, double burst = 0.0);

  /// Set/read the brownout ladder rung the read path honors (atomic; the
  /// controller writes, every query reads). Level semantics are the pure
  /// apply_brownout() in brownout.hpp: refused kinds answer kBrownout,
  /// coarsened percentiles snap to the coarse palette, stale-tolerant rungs
  /// prefer the previous epoch. Exported as tero.serve.brownout_level.
  void set_brownout(BrownoutLevel level);
  [[nodiscard]] BrownoutLevel brownout() const noexcept;

  /// Shard index that owns `query`'s key (stable across calls).
  [[nodiscard]] std::size_t shard_for(const Query& query) const;

  /// The shard's circuit-breaker state (kClosed when fault injection is
  /// off) — the controller's scale-out gate reads this.
  [[nodiscard]] fault::CircuitBreaker::State breaker_state(
      std::size_t shard_index) const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  // Aggregate cache/admission accounting across shards (tests, reports).
  [[nodiscard]] std::uint64_t cache_hits() const;
  [[nodiscard]] std::uint64_t cache_misses() const;
  [[nodiscard]] std::uint64_t shed_count() const;
  [[nodiscard]] std::uint64_t publish_count() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// Service-latency histogram (null when metrics are off) — the load
  /// generator reads p50/p95/p99 from here.
  [[nodiscard]] const obs::Histogram* latency_histogram() const noexcept {
    return query_ms_;
  }

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    LruCache<QueryResponse> cache;
    /// Queries currently inside this shard (admitted, not yet answered) —
    /// exported as the per-shard queue-depth gauge.
    std::atomic<std::uint64_t> inflight{0};
    /// Cache stats folded in from epochs the publish path already cleared
    /// (guarded by `mutex`): cache.hits()/misses() only cover the current
    /// epoch, lifetime totals are folded + current.
    std::uint64_t folded_hits = 0;
    std::uint64_t folded_misses = 0;
    std::uint64_t folded_evictions = 0;
    /// Per-shard labeled counters (null when metrics are off):
    /// tero.serve.cache_hits{shard=shard-i} and the matching misses.
    obs::Counter* hits_counter = nullptr;
    obs::Counter* misses_counter = nullptr;
    /// Fault-injection hook ("serve.shard-<i>"; null = healthy shard) and
    /// the circuit breaker guarding it (null when injection is off).
    fault::FaultPoint* fault_point = nullptr;
    std::unique_ptr<fault::CircuitBreaker> breaker;

    explicit Shard(std::size_t cache_capacity) : cache(cache_capacity) {}
  };

  /// Publish-path cache invalidation: folds each shard's per-epoch cache
  /// stats into its lifetime totals, then clears entries and stats.
  void invalidate_caches();

  /// `snapshot` may be null only for range kinds, which answer from the
  /// time-series store instead.
  [[nodiscard]] QueryResponse compute(const Query& query,
                                      const Snapshot* snapshot) const;
  /// Range kinds: delegate to config_.tsdb (kUnavailable when absent or
  /// when the tsdb.read fault point fires).
  [[nodiscard]] QueryResponse answer_range(const Query& query) const;
  /// Degraded path: answer from the last good snapshot with a STALE{age}
  /// marker, or kUnavailable when there is none. Never cached. Range kinds
  /// have no stale snapshot to fall back on: always kUnavailable.
  [[nodiscard]] QueryResponse degraded(const Query& query,
                                       std::uint64_t current_epoch);
  /// Non-static: range keys fold the tsdb version counter.
  [[nodiscard]] std::string cache_key(const Query& query) const;
  [[nodiscard]] static std::string shard_key(const Query& query);
  [[nodiscard]] double wall_now_s() const;

  ServeConfig config_;
  EpochPublisher publisher_;
  /// Brownout ladder rung (relaxed atomic: readers tolerate a one-query
  /// skew when the controller steps the ladder).
  std::atomic<std::uint8_t> brownout_{0};
  /// Last good snapshot (the epoch before the current one): what degraded
  /// answers are served from while a shard is down. Mutex-guarded like the
  /// publisher's current pointer (deliberate — TSan-safe; see epoch.hpp).
  mutable std::mutex previous_mutex_;
  SnapshotPtr previous_;
  AdmissionController admission_;
  store::ConsistentHashRing ring_;
  std::vector<std::string> shard_names_;  ///< shard_names_[i] == "shard-i"
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> publishes_{0};
  std::chrono::steady_clock::time_point start_;

  // Hot-path metric handles, resolved once (null when metrics are off).
  obs::Counter* queries_total_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* not_found_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
  obs::Counter* unavailable_counter_ = nullptr;
  DeniedCounters denied_;
  obs::Histogram* query_ms_ = nullptr;
};

/// The pipeline -> serving bridge: a callback suitable for
/// core::TeroConfig::on_dataset that builds serving entries from the
/// finished dataset and publishes them as the next epoch.
[[nodiscard]] std::function<void(const core::Dataset&)> publish_hook(
    QueryService& service);

}  // namespace tero::serve
