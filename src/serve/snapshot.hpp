#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geo.hpp"
#include "stats/descriptive.hpp"

namespace tero::core {
struct Dataset;
struct LocationGameAggregate;
}  // namespace tero::core

namespace tero::serve {

/// The serving layer's read-side data model (DESIGN.md §9): one immutable
/// index over the pipeline's per-{location, game} products. A Snapshot is
/// built once (from a core::Dataset or restored from disk), never mutated,
/// and shared with readers through `SnapshotPtr` — publishing a new epoch is
/// a single atomic shared_ptr swap (see EpochPublisher), so point queries
/// never block on the pipeline.

/// Everything a consumer can ask about one {location, game} aggregate:
/// percentile summaries, the full sorted sample set for exact ECDF
/// evaluation, and the shared-anomaly verdict.
struct SnapshotEntry {
  geo::Location location;
  std::string game;
  /// Canonical lookup / shard / cache key: "game|country|region|city".
  std::string key;

  std::size_t streamers = 0;
  std::size_t samples = 0;  ///< == sorted_values.size()
  double mean_ms = 0.0;
  stats::Boxplot box;
  /// Retained latency samples sorted ascending — exact percentile and ECDF
  /// evaluation at query time (percentile_sorted / upper_bound).
  std::vector<double> sorted_values;

  bool anomaly_flagged = false;     ///< shared-anomaly test fired
  std::size_t shared_anomalies = 0;
  std::string server_city;
  double avg_corrected_distance_km = -1.0;

  [[nodiscard]] double percentile(double pct) const;
  /// Fraction of samples <= x.
  [[nodiscard]] double ecdf(double x) const noexcept;
};

/// Build the canonical entry key. Field order puts the game first so one
/// game's locations sort contiguously (worst_locations scans a range, not
/// the whole index).
[[nodiscard]] std::string entry_key(const geo::Location& location,
                                    std::string_view game);

/// Immutable, binary-searchable index over SnapshotEntry, tagged with the
/// publish epoch that produced it.
class Snapshot {
 public:
  Snapshot(std::uint64_t epoch, std::vector<SnapshotEntry> entries);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::span<const SnapshotEntry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Entry for {location, game}; nullptr when absent.
  [[nodiscard]] const SnapshotEntry* find(const geo::Location& location,
                                          std::string_view game) const;
  [[nodiscard]] const SnapshotEntry* find_key(std::string_view key) const;

  /// The k worst locations for `game`, ranked by descending `box.p95`
  /// (ties broken by key so the order is total and deterministic).
  [[nodiscard]] std::vector<const SnapshotEntry*> worst_locations(
      std::string_view game, std::size_t k) const;

 private:
  std::uint64_t epoch_;
  std::vector<SnapshotEntry> entries_;  ///< sorted by key
};

/// Shared, immutable handle — the unit the epoch publisher swaps.
using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Convert one pipeline aggregate into a serving entry (aggregates without a
/// distribution still get an entry; their stats are zero and samples == 0).
[[nodiscard]] SnapshotEntry entry_from(
    const core::LocationGameAggregate& aggregate);

/// All serving entries of a finished pipeline run, in key order.
[[nodiscard]] std::vector<SnapshotEntry> entries_from(
    const core::Dataset& dataset);

}  // namespace tero::serve
