#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace tero::serve {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  if (!cdf_.empty()) cdf_.back() = 1.0;  // close the interval exactly
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  if (cdf_.empty()) return 0;
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf_.begin()),
                  cdf_.size() - 1);
}

std::vector<Query> generate_queries(const Snapshot& snapshot,
                                    const LoadGenConfig& config) {
  const auto entries = snapshot.entries();
  const ZipfSampler zipf(entries.size(), config.zipf_s);
  std::vector<Query> queries(config.queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Everything about query i comes from (seed, i): thread- and
    // order-independent by construction.
    util::Rng rng = util::Rng::indexed(config.seed, i);
    Query& query = queries[i];
    query.trace_id = i + 1;  // nonzero span id shared by trace + exemplars
    if (entries.empty()) {
      query.kind = QueryKind::kCount;
      continue;  // served as kNotFound; keeps the stream well-defined
    }
    const SnapshotEntry& entry = entries[zipf.sample(rng)];
    query.location = entry.location;
    query.game = entry.game;
    if (rng.bernoulli(config.p_topk)) {
      query.kind = QueryKind::kTopK;
      query.k = config.topk;
      continue;
    }
    const double u = rng.uniform();
    if (u < config.p_percentile) {
      query.kind = QueryKind::kPercentile;
      // A small palette of round percentiles keeps the cache effective the
      // way real dashboards do (everyone asks for p50/p95/p99).
      static constexpr double kPercentiles[] = {5, 25, 50, 75, 90, 95, 99};
      query.param = kPercentiles[rng.uniform_int(0, 6)];
    } else if (u < config.p_percentile + (1.0 - config.p_percentile) / 3.0) {
      query.kind = QueryKind::kMean;
    } else if (u <
               config.p_percentile + 2.0 * (1.0 - config.p_percentile) / 3.0) {
      query.kind = QueryKind::kCount;
    } else {
      query.kind = QueryKind::kEcdf;
      query.param = std::floor(rng.uniform(
          std::min(entry.box.p5, entry.box.p95),
          std::max(entry.box.p5, entry.box.p95) + 1.0));
    }
  }
  return queries;
}

LoadTestReport run_loadtest(QueryService& service,
                            const LoadGenConfig& config,
                            util::ThreadPool* pool) {
  LoadTestReport report;
  report.issued = config.queries;
  const SnapshotPtr snapshot = service.snapshot();
  if (snapshot == nullptr) {
    report.no_snapshot = config.queries;
    return report;
  }
  const std::vector<Query> queries = generate_queries(*snapshot, config);

  // Open loop: shed decisions happen *serially in arrival order* against
  // virtual time, so they depend only on (arrival times, bucket config) —
  // never on scheduling. Execution of admitted queries then fans out.
  std::vector<char> admitted(queries.size(), 1);
  if (config.offered_qps > 0.0) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const double arrival_s =
          static_cast<double>(i) / config.offered_qps;
      admitted[i] = service.try_admit(arrival_s) ? 1 : 0;
    }
  }

  struct Outcome {
    QueryStatus status = QueryStatus::kNoSnapshot;
    bool stale = false;
    std::uint64_t hash = 0;
  };
  const auto start = std::chrono::steady_clock::now();
  const std::vector<Outcome> outcomes = util::parallel_map(
      pool, queries.size(), 64, [&](std::size_t i) -> Outcome {
        QueryResponse response;
        if (admitted[i] == 0) {
          response.status = QueryStatus::kShed;
        } else {
          response = service.query_admitted(queries[i]);
        }
        return Outcome{response.status, response.stale,
                       hash_response(i, response)};
      });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  if (report.wall_ms > 0.0) {
    report.achieved_qps =
        static_cast<double>(queries.size()) / (report.wall_ms / 1e3);
  }

  // Serial virtual-time replay (DESIGN.md §13): accounting, loadgen-owned
  // telemetry and timeline scraping all walk the deterministic outcomes in
  // arrival order. The closed loop has no offered rate, so it synthesizes
  // arrivals on a 1000 qps nominal clock purely to give the timeline a
  // time axis. tero.loadgen.latency_ms records a *synthetic* latency — a
  // pure function of (seed, i, outcome), never the wall clock — which is
  // what makes timeline snapshots, SLO verdicts, and exemplar selections
  // bit-identical across thread counts.
  obs::Counter* sent_counter = nullptr;
  obs::Counter* ok_counter = nullptr;
  obs::Counter* not_found_counter = nullptr;
  obs::Counter* shed_counter = nullptr;
  obs::Counter* stale_counter = nullptr;
  obs::Counter* unavailable_counter = nullptr;
  obs::Counter* brownout_counter = nullptr;
  obs::Histogram* latency_hist = nullptr;
  if (config.metrics != nullptr) {
    auto& registry = *config.metrics;
    sent_counter = &registry.counter("tero.loadgen.queries");
    ok_counter = &registry.counter("tero.loadgen.ok");
    not_found_counter = &registry.counter("tero.loadgen.not_found");
    shed_counter = &registry.counter("tero.loadgen.shed");
    stale_counter = &registry.counter("tero.loadgen.stale");
    unavailable_counter = &registry.counter("tero.loadgen.unavailable");
    brownout_counter = &registry.counter("tero.loadgen.brownout");
    latency_hist = &registry.histogram("tero.loadgen.latency_ms");
    if (config.exemplar_seed != 0) {
      latency_hist->enable_exemplars(config.exemplar_seed);
    }
  }
  const double virtual_qps =
      config.offered_qps > 0.0 ? config.offered_qps : 1000.0;
  const std::uint64_t latency_seed = util::mix_seed(config.seed, 0x6c67);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& outcome = outcomes[i];
    const auto arrival_ms = static_cast<std::uint64_t>(
        static_cast<double>(i) * 1000.0 / virtual_qps);
    if (config.timeline != nullptr) config.timeline->advance_to(arrival_ms);

    report.checksum ^= outcome.hash;
    if (outcome.stale) ++report.stale;
    switch (outcome.status) {
      case QueryStatus::kOk: ++report.ok; break;
      case QueryStatus::kNotFound: ++report.not_found; break;
      case QueryStatus::kShed: ++report.shed; break;
      case QueryStatus::kNoSnapshot: ++report.no_snapshot; break;
      case QueryStatus::kUnavailable: ++report.unavailable; break;
      case QueryStatus::kBrownout: ++report.brownout; break;
    }
    if (config.metrics == nullptr) continue;
    sent_counter->add();
    if (outcome.stale) stale_counter->add();
    switch (outcome.status) {
      case QueryStatus::kOk: ok_counter->add(); break;
      case QueryStatus::kNotFound: not_found_counter->add(); break;
      case QueryStatus::kShed: shed_counter->add(); break;
      case QueryStatus::kUnavailable: unavailable_counter->add(); break;
      case QueryStatus::kBrownout: brownout_counter->add(); break;
      case QueryStatus::kNoSnapshot: break;
    }
    // Synthetic service time: a light-tailed base draw, stretched by the
    // outcome (degraded answers are slow, sheds are a fast rejection).
    util::Rng rng = util::Rng::indexed(latency_seed, i);
    double virtual_ms = 0.2 + rng.exponential(2.0);
    switch (outcome.status) {
      case QueryStatus::kOk:
        if (outcome.stale) virtual_ms = 2.0 + 4.0 * virtual_ms;
        break;
      case QueryStatus::kShed: virtual_ms = 0.05; break;
      case QueryStatus::kBrownout: virtual_ms = 0.05; break;
      case QueryStatus::kUnavailable: virtual_ms = 25.0 + virtual_ms; break;
      case QueryStatus::kNotFound:
      case QueryStatus::kNoSnapshot: break;
    }
    latency_hist->record(virtual_ms, static_cast<std::uint64_t>(i) + 1);
  }
  if (config.timeline != nullptr && !outcomes.empty()) {
    config.timeline->flush(static_cast<std::uint64_t>(
        static_cast<double>(outcomes.size()) * 1000.0 / virtual_qps));
  }

  if (const obs::Histogram* latency = service.latency_histogram();
      latency != nullptr && latency->count() > 0) {
    report.p50_ms = latency->quantile(0.50);
    report.p95_ms = latency->quantile(0.95);
    report.p99_ms = latency->quantile(0.99);
  }
  return report;
}

}  // namespace tero::serve
