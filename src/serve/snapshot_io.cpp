#include "serve/snapshot_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/kv_store.hpp"
#include "store/persistence.hpp"

namespace tero::serve {
namespace {

// One KV value per entry: scalar fields joined by the unit separator
// (gazetteer names never contain control characters), distribution values
// space-separated inside the final field.
constexpr char kSep = '\x1f';

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string encode_entry(const SnapshotEntry& entry) {
  std::string out;
  const auto field = [&out](const std::string& value) {
    out += value;
    out += kSep;
  };
  field(entry.location.city);
  field(entry.location.region);
  field(entry.location.country);
  field(entry.game);
  field(std::to_string(entry.streamers));
  field(fmt(entry.mean_ms));
  field(fmt(entry.box.p5));
  field(fmt(entry.box.p25));
  field(fmt(entry.box.p50));
  field(fmt(entry.box.p75));
  field(fmt(entry.box.p95));
  field(entry.anomaly_flagged ? "1" : "0");
  field(std::to_string(entry.shared_anomalies));
  field(entry.server_city);
  field(fmt(entry.avg_corrected_distance_km));
  // Final field: the sorted sample set.
  std::string values;
  for (std::size_t i = 0; i < entry.sorted_values.size(); ++i) {
    if (i > 0) values += ' ';
    values += fmt(entry.sorted_values[i]);
  }
  out += values;
  return out;
}

std::vector<std::string> split_fields(const std::string& record) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = record.find(kSep, start);
    if (sep == std::string::npos) {
      fields.push_back(record.substr(start));
      return fields;
    }
    fields.push_back(record.substr(start, sep - start));
    start = sep + 1;
  }
}

SnapshotEntry decode_entry(const std::string& record) {
  const auto fields = split_fields(record);
  if (fields.size() != 16) {
    throw std::invalid_argument(
        "serve::load_snapshot: malformed entry record (" +
        std::to_string(fields.size()) + " fields)");
  }
  SnapshotEntry entry;
  entry.location.city = fields[0];
  entry.location.region = fields[1];
  entry.location.country = fields[2];
  entry.game = fields[3];
  entry.streamers = std::strtoull(fields[4].c_str(), nullptr, 10);
  entry.mean_ms = std::strtod(fields[5].c_str(), nullptr);
  entry.box.p5 = std::strtod(fields[6].c_str(), nullptr);
  entry.box.p25 = std::strtod(fields[7].c_str(), nullptr);
  entry.box.p50 = std::strtod(fields[8].c_str(), nullptr);
  entry.box.p75 = std::strtod(fields[9].c_str(), nullptr);
  entry.box.p95 = std::strtod(fields[10].c_str(), nullptr);
  entry.anomaly_flagged = fields[11] == "1";
  entry.shared_anomalies = std::strtoull(fields[12].c_str(), nullptr, 10);
  entry.server_city = fields[13];
  entry.avg_corrected_distance_km = std::strtod(fields[14].c_str(), nullptr);
  const std::string& values = fields[15];
  const char* cursor = values.c_str();
  const char* const end = cursor + values.size();
  while (cursor < end) {
    char* after = nullptr;
    const double value = std::strtod(cursor, &after);
    if (after == cursor) break;
    entry.sorted_values.push_back(value);
    cursor = after;
  }
  entry.samples = entry.sorted_values.size();
  entry.key = entry_key(entry.location, entry.game);
  return entry;
}

}  // namespace

void save_snapshot(const Snapshot& snapshot, std::ostream& os) {
  store::KvStore kv;
  kv.put("meta:epoch", std::to_string(snapshot.epoch()));
  kv.put("meta:entries", std::to_string(snapshot.size()));
  const auto entries = snapshot.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    kv.put("e:" + std::to_string(i), encode_entry(entries[i]));
  }
  store::snapshot_kv(kv, os);
}

SnapshotPtr load_snapshot(std::istream& is) {
  const store::KvStore kv = store::restore_kv(is);
  const auto epoch_str = kv.get("meta:epoch");
  const auto count_str = kv.get("meta:entries");
  if (!epoch_str.has_value() || !count_str.has_value()) {
    throw std::invalid_argument(
        "serve::load_snapshot: missing snapshot metadata");
  }
  const std::uint64_t epoch = std::strtoull(epoch_str->c_str(), nullptr, 10);
  const std::size_t count = std::strtoull(count_str->c_str(), nullptr, 10);
  std::vector<SnapshotEntry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto record = kv.get("e:" + std::to_string(i));
    if (!record.has_value()) {
      throw std::invalid_argument("serve::load_snapshot: missing entry " +
                                  std::to_string(i));
    }
    entries.push_back(decode_entry(*record));
  }
  return std::make_shared<const Snapshot>(epoch, std::move(entries));
}

}  // namespace tero::serve
