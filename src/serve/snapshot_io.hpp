#pragma once

#include <iosfwd>

#include "serve/snapshot.hpp"

namespace tero::serve {

/// Snapshot persistence through store::persistence (the same length-prefixed
/// KV snapshot format the micro-service stores use, App. B): `tero_cli
/// simulate --snapshot-out` serializes the published epoch, and `tero_cli
/// query/loadtest --snapshot` restore and serve it without re-running the
/// pipeline. Doubles are written as "%.17g" so restored snapshots answer
/// queries bit-identically to the original (round-trip tested).
void save_snapshot(const Snapshot& snapshot, std::ostream& os);

/// Restore a snapshot written by save_snapshot. Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] SnapshotPtr load_snapshot(std::istream& is);

}  // namespace tero::serve
