#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "serve/brownout.hpp"
#include "obs/trace.hpp"
#include "tero/pipeline.hpp"
#include "util/rng.hpp"

namespace tero::serve {

namespace {

/// Canonical double formatting for cache keys: round-trippable and stable.
std::string fmt_param(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::uint64_t hash_double(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

/// ScopedTimer variant that routes through Histogram::record so an
/// exemplar-armed latency histogram attaches the query's span id to the
/// sample (record == observe when exemplars are off).
class RecordTimer {
 public:
  RecordTimer(obs::Histogram* histogram, std::uint64_t span_id) noexcept
      : histogram_(histogram), span_id_(span_id) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~RecordTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(
        std::chrono::duration<double, std::milli>(elapsed).count(), span_id_);
  }
  RecordTimer(const RecordTimer&) = delete;
  RecordTimer& operator=(const RecordTimer&) = delete;

 private:
  obs::Histogram* histogram_;
  std::uint64_t span_id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::string_view to_string(DenyReason reason) noexcept {
  switch (reason) {
    case DenyReason::kShed: return "shed";
    case DenyReason::kStale: return "stale";
    case DenyReason::kUnavailable: return "unavailable";
    case DenyReason::kBrownout: return "brownout";
  }
  return "shed";
}

DeniedCounters::DeniedCounters(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (const DenyReason reason :
       {DenyReason::kShed, DenyReason::kStale, DenyReason::kUnavailable,
        DenyReason::kBrownout}) {
    by_reason_[static_cast<std::size_t>(reason)] =
        &metrics->counter(obs::MetricsRegistry::labeled(
            "tero.serve.denied", {{"reason", to_string(reason)}}));
  }
}

void DeniedCounters::add(DenyReason reason) const {
  obs::Counter* counter = by_reason_[static_cast<std::size_t>(reason)];
  if (counter != nullptr) counter->add();
}

std::uint64_t hash_response(std::uint64_t index,
                            const QueryResponse& response) {
  std::uint64_t h = util::mix_seed(index, static_cast<std::uint64_t>(
                                              response.status));
  h = util::mix_seed(h, hash_double(response.value));
  // Staleness is part of the answer's meaning (a degraded STALE{age} reply
  // is not the same result as a fresh one), unlike the `cached` timing bit.
  h = util::mix_seed(h, (response.stale ? 1ULL : 0ULL) +
                            (response.stale_age << 1));
  for (const auto& top : response.top) {
    h = util::mix_seed(h, util::fnv1a64({top.location.data(),
                                         top.location.size()}));
    h = util::mix_seed(h, hash_double(top.value));
  }
  for (const auto& point : response.series) {
    h = util::mix_seed(h, static_cast<std::uint64_t>(point.t_ms));
    h = util::mix_seed(h, point.count);
    h = util::mix_seed(h, hash_double(point.value));
  }
  return h;
}

QueryService::QueryService(ServeConfig config)
    : config_(config),
      admission_(config.admission_rate_qps, config.admission_burst),
      ring_(config.ring_virtual_nodes),
      start_(std::chrono::steady_clock::now()) {
  const std::size_t shard_count = std::max<std::size_t>(1, config_.shards);
  shard_names_.reserve(shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shard_names_.push_back("shard-" + std::to_string(i));
    ring_.add_node(shard_names_.back());
    shards_.push_back(std::make_unique<Shard>(config_.cache_capacity));
  }
  if (config_.injector != nullptr) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->fault_point =
          &config_.injector->point("serve." + shard_names_[i]);
      shards_[i]->breaker = std::make_unique<fault::CircuitBreaker>(
          config_.breaker, fault::CircuitBreaker::state_gauge(
                               config_.metrics, shard_names_[i]));
    }
  }
  if (config_.metrics != nullptr) {
    auto& registry = *config_.metrics;
    queries_total_ = &registry.counter("tero.serve.queries");
    hits_counter_ = &registry.counter("tero.serve.cache_hits");
    misses_counter_ = &registry.counter("tero.serve.cache_misses");
    shed_counter_ = &registry.counter("tero.serve.shed");
    not_found_counter_ = &registry.counter("tero.serve.not_found");
    degraded_counter_ = &registry.counter("tero.serve.degraded");
    unavailable_counter_ = &registry.counter("tero.serve.unavailable");
    denied_ = DeniedCounters(&registry);
    registry.set_gauge("tero.serve.brownout_level", {}, 0.0);
    query_ms_ = &registry.histogram("tero.serve.query_ms");
    if (config_.exemplar_seed != 0) {
      query_ms_->enable_exemplars(config_.exemplar_seed);
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->hits_counter = &registry.counter(obs::MetricsRegistry::
          labeled("tero.serve.cache_hits", {{"shard", shard_names_[i]}}));
      shards_[i]->misses_counter = &registry.counter(obs::MetricsRegistry::
          labeled("tero.serve.cache_misses", {{"shard", shard_names_[i]}}));
    }
  }
}

void QueryService::invalidate_caches() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->folded_hits += shard->cache.hits();
    shard->folded_misses += shard->cache.misses();
    shard->folded_evictions += shard->cache.evictions();
    shard->cache.reset_stats();
    shard->cache.clear();
  }
}

std::uint64_t QueryService::publish(std::vector<SnapshotEntry> entries) {
  const obs::ScopedSpan span(config_.trace, "serve.publish", "serve");
  {
    // The outgoing epoch becomes the degraded path's "last good" snapshot.
    SnapshotPtr outgoing = publisher_.current();
    if (outgoing != nullptr) {
      std::lock_guard<std::mutex> lock(previous_mutex_);
      previous_ = std::move(outgoing);
    }
  }
  const std::uint64_t epoch = publisher_.publish(std::move(entries));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  invalidate_caches();
  if (config_.metrics != nullptr) {
    config_.metrics->counter("tero.serve.publishes").add();
    config_.metrics->set_gauge("tero.serve.epoch", {},
                               static_cast<double>(epoch));
  }
  return epoch;
}

void QueryService::publish(SnapshotPtr snapshot) {
  const obs::ScopedSpan span(config_.trace, "serve.publish", "serve");
  {
    SnapshotPtr outgoing = publisher_.current();
    if (outgoing != nullptr) {
      std::lock_guard<std::mutex> lock(previous_mutex_);
      previous_ = std::move(outgoing);
    }
  }
  publisher_.publish(std::move(snapshot));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  invalidate_caches();
  if (config_.metrics != nullptr) {
    config_.metrics->counter("tero.serve.publishes").add();
    config_.metrics->set_gauge("tero.serve.epoch", {},
                               static_cast<double>(publisher_.epoch()));
  }
}

std::string QueryService::shard_key(const Query& query) {
  // All queries about one {location, game} entry land on one shard, so its
  // cache lines and LRU entries stay local; top-k is keyed by game alone.
  if (query.kind == QueryKind::kTopK) return "topk|" + query.game;
  return entry_key(query.location, query.game);
}

std::string QueryService::cache_key(const Query& query) const {
  std::string key;
  switch (query.kind) {
    case QueryKind::kPercentile: key = "pct:"; break;
    case QueryKind::kMean: key = "mean:"; break;
    case QueryKind::kCount: key = "count:"; break;
    case QueryKind::kEcdf: key = "ecdf:"; break;
    case QueryKind::kTopK: key = "topk:"; break;
    case QueryKind::kRangeCount: key = "rcount:"; break;
    case QueryKind::kRangeMean: key = "rmean:"; break;
    case QueryKind::kRangePercentile: key = "rpct:"; break;
    case QueryKind::kRangeDrift: key = "rdrift:"; break;
  }
  if (query.kind == QueryKind::kPercentile ||
      query.kind == QueryKind::kEcdf ||
      query.kind == QueryKind::kRangePercentile ||
      query.kind == QueryKind::kRangeDrift) {
    key += fmt_param(query.param);
    key += ':';
  }
  if (query.kind == QueryKind::kTopK) {
    key += std::to_string(query.k);
    key += ':';
  }
  if (is_range_kind(query.kind)) {
    // The store version pins the cached answer to the exact data it
    // summarized: any append/seal/compact/retention mints new keys and the
    // stale entries age out of the LRU.
    key += std::to_string(query.t0_ms);
    key += ':';
    key += std::to_string(query.t1_ms);
    key += ':';
    key += std::to_string(query.window_ms);
    key += ":v";
    key += std::to_string(config_.tsdb != nullptr ? config_.tsdb->version()
                                                  : 0);
    key += ':';
  }
  key += shard_key(query);
  return key;
}

std::size_t QueryService::shard_for(const Query& query) const {
  const std::string node = ring_.node_for(shard_key(query));
  // Node names are "shard-<i>"; the ring never returns anything else here.
  return static_cast<std::size_t>(
      std::strtoul(node.c_str() + 6, nullptr, 10));
}

double QueryService::wall_now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

QueryResponse answer(const Query& query, const Snapshot& snapshot) {
  QueryResponse response;
  response.epoch = snapshot.epoch();
  if (is_range_kind(query.kind)) {
    // Snapshots hold one epoch's distributions, not history; range kinds
    // only make sense against a QueryService with a time-series store.
    response.status = QueryStatus::kUnavailable;
    return response;
  }
  if (query.kind == QueryKind::kTopK) {
    const auto worst = snapshot.worst_locations(query.game, query.k);
    if (worst.empty()) {
      response.status = QueryStatus::kNotFound;
      return response;
    }
    response.status = QueryStatus::kOk;
    response.top.reserve(worst.size());
    for (const SnapshotEntry* entry : worst) {
      response.top.push_back({entry->location.to_string(), entry->box.p95});
    }
    response.value = response.top.front().value;
    return response;
  }

  const SnapshotEntry* entry = snapshot.find(query.location, query.game);
  if (entry == nullptr || entry->samples == 0) {
    response.status = QueryStatus::kNotFound;
    return response;
  }
  response.status = QueryStatus::kOk;
  switch (query.kind) {
    case QueryKind::kPercentile:
      response.value = entry->percentile(query.param);
      break;
    case QueryKind::kMean:
      response.value = entry->mean_ms;
      break;
    case QueryKind::kCount:
      response.value = static_cast<double>(entry->samples);
      break;
    case QueryKind::kEcdf:
      response.value = entry->ecdf(query.param);
      break;
    default:
      break;  // kTopK handled above; range kinds returned early
  }
  return response;
}

QueryResponse QueryService::answer_range(const Query& query) const {
  QueryResponse response;
  response.epoch = publisher_.epoch();
  if (config_.tsdb == nullptr) {
    response.status = QueryStatus::kUnavailable;
    return response;
  }
  const std::string key = entry_key(query.location, query.game);
  try {
    if (query.kind == QueryKind::kRangeDrift) {
      response.value = config_.tsdb->drift(key, query.t1_ms, query.param);
      response.status = QueryStatus::kOk;
      return response;
    }
    tsdb::RangeQuery range;
    range.key = key;
    range.t0_ms = query.t0_ms;
    range.t1_ms = query.t1_ms;
    range.window_ms = query.window_ms;
    range.pct = query.param;
    switch (query.kind) {
      case QueryKind::kRangeCount: range.agg = tsdb::RangeAgg::kCount; break;
      case QueryKind::kRangeMean: range.agg = tsdb::RangeAgg::kMean; break;
      default: range.agg = tsdb::RangeAgg::kPercentile; break;
    }
    response.series = config_.tsdb->range(range);
  } catch (const std::runtime_error&) {
    // The tsdb.read fault point (or an unreadable segment) — degrade
    // loudly, exactly like a downed shard with no previous epoch.
    response.status = QueryStatus::kUnavailable;
    return response;
  }
  std::uint64_t total = 0;
  for (const auto& point : response.series) total += point.count;
  if (total == 0) {
    response.status = QueryStatus::kNotFound;
    return response;
  }
  response.status = QueryStatus::kOk;
  response.value = response.series.back().value;
  return response;
}

QueryResponse QueryService::compute(const Query& query,
                                    const Snapshot* snapshot) const {
  if (is_range_kind(query.kind)) return answer_range(query);
  return answer(query, *snapshot);
}

bool QueryService::try_admit(double now_s) {
  const bool admitted =
      admission_.try_admit(now_s >= 0.0 ? now_s : wall_now_s());
  if (!admitted) {
    if (shed_counter_ != nullptr) shed_counter_->add();
    denied_.add(DenyReason::kShed);
  }
  return admitted;
}

void QueryService::set_admission_rate(double now_s, double rate_qps,
                                      double burst) {
  admission_.set_rate(now_s >= 0.0 ? now_s : wall_now_s(), rate_qps, burst);
  if (config_.metrics != nullptr) {
    config_.metrics->set_gauge("tero.serve.admission_rate", {}, rate_qps);
  }
}

void QueryService::set_brownout(BrownoutLevel level) {
  brownout_.store(static_cast<std::uint8_t>(level),
                  std::memory_order_relaxed);
  if (config_.metrics != nullptr) {
    config_.metrics->set_gauge("tero.serve.brownout_level", {},
                               static_cast<double>(
                                   static_cast<std::uint8_t>(level)));
  }
}

BrownoutLevel QueryService::brownout() const noexcept {
  return static_cast<BrownoutLevel>(
      brownout_.load(std::memory_order_relaxed));
}

fault::CircuitBreaker::State QueryService::breaker_state(
    std::size_t shard_index) const {
  if (shard_index >= shards_.size() ||
      shards_[shard_index]->breaker == nullptr) {
    return fault::CircuitBreaker::State::kClosed;
  }
  return shards_[shard_index]->breaker->state();
}

QueryResponse QueryService::query(const Query& query, double now_s) {
  if (!try_admit(now_s)) {
    if (queries_total_ != nullptr) queries_total_->add();
    QueryResponse response;
    response.status = QueryStatus::kShed;
    return response;
  }
  return query_admitted(query);
}

QueryResponse QueryService::degraded(const Query& query,
                                     std::uint64_t current_epoch) {
  SnapshotPtr last_good;
  if (!is_range_kind(query.kind)) {
    std::lock_guard<std::mutex> lock(previous_mutex_);
    last_good = previous_;
  }
  if (last_good == nullptr) {
    // Range kinds always land here: history has no stale epoch to fall
    // back on — a downed shard makes them explicitly unavailable.
    if (unavailable_counter_ != nullptr) unavailable_counter_->add();
    denied_.add(DenyReason::kUnavailable);
    QueryResponse response;
    response.status = QueryStatus::kUnavailable;
    response.epoch = current_epoch;
    return response;
  }
  if (degraded_counter_ != nullptr) degraded_counter_->add();
  QueryResponse response = compute(query, last_good.get());
  response.stale = true;
  response.stale_age = current_epoch - last_good->epoch();
  return response;
}

QueryResponse QueryService::query_admitted(const Query& query, double now_s) {
  const obs::ScopedSpan span =
      query.trace_id != 0
          ? obs::ScopedSpan(config_.trace, "serve.query", "serve",
                            query.trace_id)
          : obs::ScopedSpan(config_.trace, "serve.query", "serve");
  const RecordTimer timer(query_ms_, query.trace_id);
  if (queries_total_ != nullptr) queries_total_->add();

  // Brownout front door (DESIGN.md §16): a pure function of (kind, level),
  // evaluated before any shard or cache state so the outcome is the same on
  // every replica. Refused kinds answer kBrownout — a denial, but a cheap
  // and explicit one, taken *before* the admission controller would shed.
  const BrownoutLevel level = brownout();
  BrownoutAction action;
  if (level != BrownoutLevel::kFull) {
    action = apply_brownout(query, level);
    if (action.refuse) {
      denied_.add(DenyReason::kBrownout);
      QueryResponse response;
      response.status = QueryStatus::kBrownout;
      response.epoch = publisher_.epoch();
      return response;
    }
  } else {
    action.query = query;
  }
  const Query& effective = action.query;

  const SnapshotPtr snapshot = publisher_.current();
  if (snapshot == nullptr && !is_range_kind(effective.kind)) {
    QueryResponse response;
    response.status = QueryStatus::kNoSnapshot;
    return response;
  }
  const std::uint64_t epoch =
      snapshot != nullptr ? snapshot->epoch() : publisher_.epoch();

  if (action.prefer_stale) {
    // Stale-tolerant rungs serve the previous epoch when one exists (an old
    // answer beats burning fresh-epoch compute); with no previous epoch the
    // fresh path below still answers.
    bool has_previous = false;
    {
      std::lock_guard<std::mutex> lock(previous_mutex_);
      has_previous = previous_ != nullptr;
    }
    if (has_previous) return degraded(effective, epoch);
  }

  const std::size_t shard_index = shard_for(effective);
  Shard& shard = *shards_[shard_index];

  if (shard.fault_point != nullptr) {
    const double now = now_s >= 0.0 ? now_s : wall_now_s();
    if (!shard.breaker->allow(now)) {
      // Breaker open: skip the shard entirely (no fault-point hit — the
      // whole point of breaking is to stop poking a known-bad endpoint).
      return degraded(effective, epoch);
    }
    const fault::FaultDecision decision = shard.fault_point->hit();
    if (decision.kind == fault::FaultKind::kError ||
        decision.kind == fault::FaultKind::kCrash) {
      shard.breaker->on_failure(now);
      return degraded(effective, epoch);
    }
    shard.breaker->on_success();
  }
  const std::size_t depth =
      shard.inflight.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.metrics != nullptr) {
    config_.metrics->set_gauge("tero.serve.shard_queue_depth",
                               {{"shard", shard_names_[shard_index]}},
                               static_cast<double>(depth));
  }

  const std::string key = cache_key(effective);
  QueryResponse response;
  bool from_cache = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto cached = shard.cache.get(key); cached.has_value()) {
      response = std::move(*cached);
      from_cache = true;
    }
  }
  if (from_cache) {
    // A publish may have cleared the caches after we loaded the snapshot;
    // either way the cached value was computed from *some* published epoch
    // and epochs are immutable, so it is never stale within its epoch.
    response.cached = true;
    if (hits_counter_ != nullptr) hits_counter_->add();
    if (shard.hits_counter != nullptr) shard.hits_counter->add();
  } else {
    response = compute(effective, snapshot.get());
    if (misses_counter_ != nullptr) misses_counter_->add();
    if (shard.misses_counter != nullptr) shard.misses_counter->add();
    if (response.status == QueryStatus::kNotFound &&
        not_found_counter_ != nullptr) {
      not_found_counter_->add();
    }
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.put(key, response);
  }

  shard.inflight.fetch_sub(1, std::memory_order_relaxed);
  return response;
}

std::vector<QueryResponse> QueryService::query_batch(
    std::span<const Query> queries, double now_s) {
  std::vector<QueryResponse> responses;
  responses.reserve(queries.size());
  for (const Query& query : queries) {
    responses.push_back(this->query(query, now_s));
  }
  return responses;
}

std::uint64_t QueryService::cache_hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->folded_hits + shard->cache.hits();
  }
  return total;
}

std::uint64_t QueryService::cache_misses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->folded_misses + shard->cache.misses();
  }
  return total;
}

std::uint64_t QueryService::shed_count() const { return admission_.shed(); }

std::function<void(const core::Dataset&)> publish_hook(
    QueryService& service) {
  return [&service](const core::Dataset& dataset) {
    service.publish(entries_from(dataset));
  };
}

}  // namespace tero::serve
