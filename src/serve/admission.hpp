#pragma once

#include <cstdint>
#include <mutex>

namespace tero::serve {

/// Thread-safe token-bucket admission control for the query front door —
/// the same refill arithmetic as download::TokenBucket (App. A's API quota
/// model), adapted for concurrent callers and caller-supplied clocks.
///
/// The clock is explicit: `now_s` is any monotonic seconds value. The live
/// service passes wall time; the deterministic load generator passes
/// *virtual* arrival times, which is what makes shed decisions reproducible
/// for any thread count (decisions are taken in arrival order — see
/// loadgen.cpp).
///
/// rate_qps <= 0 disables admission control entirely (every request is
/// admitted and nothing is counted).
class AdmissionController {
 public:
  AdmissionController(double rate_qps, double burst);

  /// True iff the request at time `now_s` may proceed. `now_s` must be
  /// non-decreasing across calls for the refill math to be meaningful;
  /// slightly stale values only make admission more conservative.
  bool try_admit(double now_s, double cost = 1.0);

  [[nodiscard]] bool enabled() const noexcept { return rate_qps_ > 0.0; }
  [[nodiscard]] double rate_qps() const noexcept { return rate_qps_; }
  [[nodiscard]] std::uint64_t admitted() const;
  [[nodiscard]] std::uint64_t shed() const;

 private:
  double rate_qps_;
  double burst_;
  mutable std::mutex mutex_;
  double tokens_;       ///< guarded by mutex_
  double last_refill_ = 0.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace tero::serve
