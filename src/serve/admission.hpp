#pragma once

#include <cstdint>
#include <mutex>

namespace tero::serve {

/// Thread-safe token-bucket admission control for the query front door —
/// the same refill arithmetic as download::TokenBucket (App. A's API quota
/// model), adapted for concurrent callers and caller-supplied clocks.
///
/// The clock is explicit: `now_s` is any monotonic seconds value. The live
/// service passes wall time; the deterministic load generator passes
/// *virtual* arrival times, which is what makes shed decisions reproducible
/// for any thread count (decisions are taken in arrival order — see
/// loadgen.cpp).
///
/// rate_qps <= 0 disables admission control entirely (every request is
/// admitted and nothing is counted).
class AdmissionController {
 public:
  AdmissionController(double rate_qps, double burst);

  /// True iff the request at time `now_s` may proceed. `now_s` must be
  /// non-decreasing across calls for the refill math to be meaningful;
  /// slightly stale values only make admission more conservative.
  bool try_admit(double now_s, double cost = 1.0);

  /// Retune the bucket mid-run (the controller's actuation path). The
  /// accrued interval up to `now_s` refills at the *old* rate first, so a
  /// step-up never mints tokens retroactively and a step-down never claws
  /// back tokens already earned; the balance is then clamped into
  /// [0, new burst]. burst <= 0 keeps the old burst. Enabling (rate > 0
  /// from a disabled controller) starts with a full bucket; disabling
  /// (rate <= 0) stops all accounting, as at construction.
  void set_rate(double now_s, double rate_qps, double burst = 0.0);

  [[nodiscard]] bool enabled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rate_qps_ > 0.0;
  }
  [[nodiscard]] double rate_qps() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rate_qps_;
  }
  [[nodiscard]] double burst() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return burst_;
  }
  [[nodiscard]] std::uint64_t admitted() const;
  [[nodiscard]] std::uint64_t shed() const;

 private:
  /// Refill the balance for time elapsed up to `now_s` at the current rate.
  /// Callers hold mutex_.
  void refill_locked(double now_s);

  mutable std::mutex mutex_;
  // All guarded by mutex_ (set_rate retunes them mid-run).
  double rate_qps_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace tero::serve
