#include "serve/epoch.hpp"

#include <utility>

namespace tero::serve {

std::uint64_t EpochPublisher::publish(std::vector<SnapshotEntry> entries) {
  const std::uint64_t epoch =
      next_epoch_.fetch_add(1, std::memory_order_relaxed);
  publish(std::make_shared<const Snapshot>(epoch, std::move(entries)));
  return epoch;
}

void EpochPublisher::publish(SnapshotPtr snapshot) {
  const std::uint64_t epoch = snapshot != nullptr ? snapshot->epoch() : 0;
  {
    // Drop the previous snapshot's refcount outside the lock: if we hold the
    // last reference, its destruction should not extend the critical section.
    SnapshotPtr previous;
    const std::lock_guard<std::mutex> lock(mutex_);
    previous = std::exchange(current_, std::move(snapshot));
  }
  published_epoch_.store(epoch, std::memory_order_release);
  // Keep next_epoch_ ahead of any externally assigned epoch (restored
  // snapshots carry their original number).
  std::uint64_t next = next_epoch_.load(std::memory_order_relaxed);
  while (next <= epoch && !next_epoch_.compare_exchange_weak(
                              next, epoch + 1, std::memory_order_relaxed)) {
  }
}

}  // namespace tero::serve
