#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/service.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tero::obs {
class MetricsRegistry;
class MetricsTimeline;
}  // namespace tero::obs

namespace tero::serve {

/// Deterministic load generation against a QueryService (DESIGN.md §9).
///
/// Determinism contract (mirrors the pipeline's): query i is derived
/// entirely from Rng::indexed(seed, i) — key rank via a Zipf CDF, kind and
/// parameters via the same per-query generator — and every query's answer
/// is a pure function of (query, snapshot). Open-loop admission decisions
/// are taken serially in arrival order against *virtual* arrival times
/// before any parallel execution. The result checksum therefore matches
/// bit-for-bit for any thread count; only the timing numbers vary.

/// Zipf(s) popularity over ranks [0, n): P(rank = r) proportional to
/// 1 / (r + 1)^s, sampled by inverting a precomputed CDF. s = 0 is uniform;
/// s around 1 matches the heavy skew real query traffic shows toward a few
/// hot {location, game} keys.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(util::Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

struct LoadGenConfig {
  std::size_t queries = 10000;
  /// Total parallelism for query execution (0 = hardware_concurrency);
  /// the report's checksum and counts do not depend on this.
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  double zipf_s = 1.1;
  /// Fraction of point queries that are percentile lookups; the remainder
  /// splits evenly between mean, count and ECDF. Drawn per query from its
  /// indexed generator.
  double p_percentile = 0.55;
  /// Probability a query is a top-k-worst scan instead of a point lookup.
  double p_topk = 0.02;
  std::size_t topk = 5;
  /// Open loop: query i arrives at virtual time i / offered_qps and the
  /// service's admission controller may shed it. offered_qps <= 0 selects
  /// closed loop (no virtual clock; admission charged at time 0).
  double offered_qps = 0.0;

  /// Optional virtual-time telemetry (DESIGN.md §13; both may be null).
  /// After the parallel execution fan-out, outcomes are *replayed serially
  /// in arrival order on the virtual clock* (closed loop synthesizes
  /// arrivals at a 1000 qps nominal clock): per-outcome counters
  /// (tero.loadgen.{queries,ok,not_found,shed,stale,unavailable}) and a
  /// deterministic synthetic latency histogram (tero.loadgen.latency_ms —
  /// a pure function of (seed, i, outcome), NOT wall time) are written into
  /// `metrics`, and `timeline` is advanced past each arrival so its
  /// snapshots, any attached SloTracker's alert log, and the histogram's
  /// exemplar selections are bit-identical for any thread count.
  obs::MetricsRegistry* metrics = nullptr;
  obs::MetricsTimeline* timeline = nullptr;
  /// Nonzero arms deterministic exemplars on tero.loadgen.latency_ms
  /// (span id = query index + 1, matching Query::trace_id).
  std::uint64_t exemplar_seed = 0;
};

struct LoadTestReport {
  std::size_t issued = 0;
  std::size_t ok = 0;
  std::size_t not_found = 0;
  std::size_t shed = 0;
  std::size_t no_snapshot = 0;
  std::size_t unavailable = 0;  ///< shard down, nothing to degrade to
  std::size_t brownout = 0;     ///< refused by the brownout ladder
  std::size_t stale = 0;        ///< answered from the last good snapshot
  /// XOR-fold of hash_response(i, response_i): bit-identical across runs
  /// with the same {seed, snapshot, config}, independent of thread count.
  std::uint64_t checksum = 0;
  double wall_ms = 0.0;
  double achieved_qps = 0.0;
  // Service-latency quantiles (ms), read from the service's latency
  // histogram when metrics are attached; 0 otherwise. Timing-dependent —
  // deliberately not part of the checksum.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Build the deterministic query stream (exposed for tests and the CLI's
/// `--dump` style debugging): queries[i] depends only on (seed, i) and the
/// snapshot's key order.
[[nodiscard]] std::vector<Query> generate_queries(const Snapshot& snapshot,
                                                  const LoadGenConfig& config);

/// Drive `service` with config.queries generated queries on `pool`
/// (nullptr or size 1 = serial). The service must have a published
/// snapshot.
[[nodiscard]] LoadTestReport run_loadtest(QueryService& service,
                                          const LoadGenConfig& config,
                                          util::ThreadPool* pool);

}  // namespace tero::serve
