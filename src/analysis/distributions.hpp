#pragma once

#include <vector>

#include "analysis/clusters.hpp"
#include "stats/descriptive.hpp"

namespace tero::analysis {

/// Latency-distribution assembly for one {location, game} (§3.3.3 last
/// step): static streamers contribute every retained measurement; mobile
/// streamers contribute only the measurements inside their heaviest
/// cluster; streamers with possible location changes are excluded by the
/// caller.
struct DistributionBuilder {
  /// Add a static streamer's cleaned data.
  void add_static(const CleanResult& clean);

  /// Add a mobile streamer's data restricted to their heaviest cluster.
  void add_mobile(const CleanResult& clean,
                  const std::vector<LatencyCluster>& streamer_clusters,
                  const AnalysisConfig& config);

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::size_t streamers() const noexcept { return streamers_; }

  /// The paper's 5/25/50/75/95 boxplot (§5.2). Requires non-empty values.
  [[nodiscard]] stats::Boxplot boxplot() const;

 private:
  std::vector<double> values_;
  std::size_t streamers_ = 0;
};

}  // namespace tero::analysis
