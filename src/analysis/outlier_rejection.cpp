#include "analysis/outlier_rejection.hpp"

#include <algorithm>

namespace tero::analysis {

bool streamer_consistent_with_location(
    const std::vector<LatencyCluster>& streamer_clusters,
    const std::vector<LatencyCluster>& location_clusters,
    const AnalysisConfig& config, const OutlierRejectionConfig& rejection) {
  if (streamer_clusters.empty()) return false;
  if (location_clusters.empty()) return true;  // nothing to check against
  const auto& top = streamer_clusters.front();
  const double gap = config.lat_gap_ms * config.cluster_merge_factor;
  for (const auto& cluster : location_clusters) {
    if (cluster.weight < rejection.min_cluster_weight) continue;
    const double separation =
        std::max({0.0, static_cast<double>(cluster.min_ms - top.max_ms),
                  static_cast<double>(top.min_ms - cluster.max_ms)});
    if (separation < gap) return true;
  }
  return false;
}

std::vector<std::size_t> find_location_outliers(
    const std::vector<std::vector<LatencyCluster>>&
        streamer_clusters_per_entry,
    const std::vector<LatencyCluster>& location_clusters,
    const AnalysisConfig& config, const OutlierRejectionConfig& rejection) {
  std::vector<std::size_t> outliers;
  for (std::size_t i = 0; i < streamer_clusters_per_entry.size(); ++i) {
    if (!streamer_consistent_with_location(streamer_clusters_per_entry[i],
                                           location_clusters, config,
                                           rejection)) {
      outliers.push_back(i);
    }
  }
  return outliers;
}

}  // namespace tero::analysis
