#pragma once

#include <string>
#include <vector>

#include "analysis/types.hpp"

namespace tero::analysis {

/// Everything the shared-anomaly test needs to know about one streamer of a
/// given {location, game} aggregate (App. F).
struct StreamerActivity {
  std::string streamer;
  std::vector<double> measurement_times;  ///< all measurement timestamps
  std::vector<SpikeEvent> spikes;
};

/// A set of spikes too numerous to be independent — likely a problem in
/// shared infrastructure (§3.3.2 / App. F).
struct SharedAnomaly {
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<std::string> streamers;  ///< who spiked
  double probability = 1.0;            ///< P[D independent spikes]
};

struct SharedAnomalyResult {
  std::vector<SharedAnomaly> anomalies;
  double spike_probability = 0.0;  ///< p_e = spikes / measurements (Eq. 1)
  /// Eq. 2: #measurements * p_e * (1 - p_e) > 10; when false the aggregate
  /// is too small and no anomalies are reported.
  bool sufficient_data = false;
};

/// Run the Schulman-et-al-style test adapted in App. F over one
/// {location, game} aggregate: for each spike, count the streamers
/// streaming in the 12-minute window around it (N) and those that also
/// spiked (D), and flag a shared anomaly when D independent spikes would
/// have probability <= config.shared_anomaly_p.
[[nodiscard]] SharedAnomalyResult find_shared_anomalies(
    const std::vector<StreamerActivity>& activities,
    const AnalysisConfig& config);

}  // namespace tero::analysis
