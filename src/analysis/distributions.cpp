#include "analysis/distributions.hpp"

namespace tero::analysis {

void DistributionBuilder::add_static(const CleanResult& clean) {
  bool any = false;
  for (const auto& stream : clean.retained) {
    for (const auto& point : stream.points) {
      values_.push_back(point.latency_ms);
      any = true;
    }
  }
  if (any) ++streamers_;
}

void DistributionBuilder::add_mobile(
    const CleanResult& clean,
    const std::vector<LatencyCluster>& streamer_clusters,
    const AnalysisConfig& config) {
  if (streamer_clusters.empty()) return;
  const auto& top = streamer_clusters.front();
  const double slack = config.lat_gap_ms;  // cluster edges are segment hulls
  bool any = false;
  for (const auto& stream : clean.retained) {
    for (const auto& point : stream.points) {
      if (point.latency_ms >= top.min_ms - slack &&
          point.latency_ms <= top.max_ms + slack) {
        values_.push_back(point.latency_ms);
        any = true;
      }
    }
  }
  if (any) ++streamers_;
}

stats::Boxplot DistributionBuilder::boxplot() const {
  return stats::boxplot(values_);
}

}  // namespace tero::analysis
