#include "analysis/anomalies.hpp"

#include <algorithm>
#include <optional>

#include "analysis/segmentation.hpp"

namespace tero::analysis {
namespace {

/// Index of the closest stable segment strictly before/after `index`, or
/// nullopt.
std::optional<std::size_t> stable_before(const std::vector<Segment>& segments,
                                         std::size_t index) {
  for (std::size_t i = index; i-- > 0;) {
    if (segments[i].stable) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> stable_after(const std::vector<Segment>& segments,
                                        std::size_t index) {
  for (std::size_t i = index + 1; i < segments.size(); ++i) {
    if (segments[i].stable) return i;
  }
  return std::nullopt;
}

}  // namespace

std::vector<Segment> classify_segments(const Stream& stitched,
                                       const AnalysisConfig& config) {
  std::vector<Segment> segments = segment_stream(stitched, config);
  const double gap = config.lat_gap_ms;

  const bool any_stable =
      std::any_of(segments.begin(), segments.end(),
                  [](const Segment& s) { return s.stable; });
  if (!any_stable) {
    for (auto& segment : segments) segment.flag = SegmentFlag::kDiscarded;
    return segments;
  }

  // ---- Glitch detection (Fig. 1a) ------------------------------------------
  // An unstable segment whose maximum lies at least LatGap *below* the
  // minimum of the closest stable segments on each side.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    Segment& segment = segments[i];
    if (segment.stable) continue;
    const auto left = stable_before(segments, i);
    const auto right = stable_after(segments, i);
    bool is_glitch = left.has_value() || right.has_value();
    if (left && segment.max_latency + gap > segments[*left].min_latency) {
      is_glitch = false;
    }
    if (right && segment.max_latency + gap > segments[*right].min_latency) {
      is_glitch = false;
    }
    if (is_glitch) segment.flag = SegmentFlag::kGlitch;
  }

  // ---- Iterative spike detection (Fig. 1b) ----------------------------------
  // Iteration 1: minimum exceeds both stable neighbours' maxima by LatGap.
  // Later iterations: exceeds one stable neighbour while the adjacent
  // segment on the other side is already a spike.
  bool changed = true;
  bool first_iteration = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      Segment& segment = segments[i];
      if (segment.stable || segment.flag == SegmentFlag::kGlitch ||
          segment.flag == SegmentFlag::kSpike) {
        continue;
      }
      const auto left = stable_before(segments, i);
      const auto right = stable_after(segments, i);
      auto exceeds = [&](std::size_t stable_idx) {
        return segment.min_latency >=
               segments[stable_idx].max_latency + gap;
      };
      bool flag = false;
      if (first_iteration) {
        flag = (left || right) && (!left || exceeds(*left)) &&
               (!right || exceeds(*right));
      } else {
        const bool left_spike =
            i > 0 && segments[i - 1].flag == SegmentFlag::kSpike;
        const bool right_spike = i + 1 < segments.size() &&
                                 segments[i + 1].flag == SegmentFlag::kSpike;
        flag = (left_spike && right && exceeds(*right)) ||
               (right_spike && left && exceeds(*left));
      }
      if (flag) {
        segment.flag = SegmentFlag::kSpike;
        changed = true;
      }
    }
    if (first_iteration) {
      first_iteration = false;
      changed = true;  // always run at least one propagation round
    }
  }

  // ---- Cleanup (Fig. 1d) -----------------------------------------------------
  // Remaining unstable segments: keep those within LatGap of the closest
  // stable segment on either side, discard the rest (likely glitch victims).
  for (std::size_t i = 0; i < segments.size(); ++i) {
    Segment& segment = segments[i];
    if (segment.stable || segment.flag == SegmentFlag::kGlitch ||
        segment.flag == SegmentFlag::kSpike) {
      continue;
    }
    const auto left = stable_before(segments, i);
    const auto right = stable_after(segments, i);
    auto close_to = [&](std::size_t stable_idx) {
      return ranges_within_gap(segment.min_latency, segment.max_latency,
                               segments[stable_idx].min_latency,
                               segments[stable_idx].max_latency, gap);
    };
    const bool absorbable =
        (left && close_to(*left)) || (right && close_to(*right));
    segment.flag = absorbable || config.disable_cleanup_discard
                       ? SegmentFlag::kAbsorbed
                       : SegmentFlag::kDiscarded;
  }
  return segments;
}

CleanResult clean_streamer_game(std::vector<Stream> streams,
                                const AnalysisConfig& config) {
  CleanResult result;
  if (streams.empty()) return result;

  // Stitch all points together in time order, remembering stream origins.
  Stream stitched;
  stitched.streamer = streams.front().streamer;
  stitched.game = streams.front().game;
  std::vector<std::size_t> origin;  // point index -> stream index
  std::vector<std::size_t> order(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ta =
        streams[a].points.empty() ? 0.0 : streams[a].points.front().time_s;
    const double tb =
        streams[b].points.empty() ? 0.0 : streams[b].points.front().time_s;
    return ta < tb;
  });
  for (std::size_t s : order) {
    for (const auto& point : streams[s].points) {
      stitched.points.push_back(point);
      origin.push_back(s);
    }
  }
  result.points_in = stitched.points.size();

  auto segments = classify_segments(stitched, config);
  const bool any_stable =
      std::any_of(segments.begin(), segments.end(),
                  [](const Segment& s) { return s.stable; });
  if (!any_stable) {
    result.discarded_entirely = true;
    result.points_discarded = result.points_in;
    result.retained.resize(streams.size());
    for (std::size_t s = 0; s < streams.size(); ++s) {
      result.retained[s].streamer = streams[s].streamer;
      result.retained[s].game = streams[s].game;
    }
    return result;
  }

  // ---- Correction of flagged segments (§3.3.2) ------------------------------
  // Replace a glitch/spike segment's measurements with their alternatives;
  // if the corrected segment now sits within LatGap of its closest stable
  // neighbour, the anomaly was an image-processing artefact — keep the
  // corrected points. Otherwise glitches are discarded and spikes recorded
  // as genuine events (their points excluded from the distributions).
  const double gap = config.lat_gap_ms;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    Segment& segment = segments[i];
    if (segment.flag != SegmentFlag::kGlitch &&
        segment.flag != SegmentFlag::kSpike) {
      continue;
    }
    bool all_have_alternatives = true;
    int corrected_min = 0;
    int corrected_max = 0;
    for (std::size_t p = segment.first; p <= segment.last; ++p) {
      const auto& alt = stitched.points[p].alternative_ms;
      if (!alt.has_value()) {
        all_have_alternatives = false;
        break;
      }
      if (p == segment.first) {
        corrected_min = corrected_max = *alt;
      } else {
        corrected_min = std::min(corrected_min, *alt);
        corrected_max = std::max(corrected_max, *alt);
      }
    }
    if (!all_have_alternatives) continue;

    const auto left = stable_before(segments, i);
    const auto right = stable_after(segments, i);
    auto close_to = [&](std::size_t stable_idx) {
      return ranges_within_gap(corrected_min, corrected_max,
                               segments[stable_idx].min_latency,
                               segments[stable_idx].max_latency, gap);
    };
    const bool explains =
        (corrected_max - corrected_min <= gap) &&
        ((left && close_to(*left)) || (right && close_to(*right)));
    if (explains) {
      for (std::size_t p = segment.first; p <= segment.last; ++p) {
        stitched.points[p].latency_ms = *stitched.points[p].alternative_ms;
        ++result.points_corrected;
      }
      segment.min_latency = corrected_min;
      segment.max_latency = corrected_max;
      segment.flag = SegmentFlag::kAbsorbed;
    }
  }

  // ---- Spike merging + event extraction (Fig. 1c) ---------------------------
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].flag != SegmentFlag::kSpike) continue;
    std::size_t j = i;
    while (j + 1 < segments.size() &&
           segments[j + 1].flag == SegmentFlag::kSpike) {
      ++j;
    }
    SpikeEvent event;
    event.start_s = stitched.points[segments[i].first].time_s;
    event.end_s = stitched.points[segments[j].last].time_s;
    event.peak_latency_ms = segments[i].max_latency;
    for (std::size_t k = i; k <= j; ++k) {
      event.peak_latency_ms =
          std::max(event.peak_latency_ms, segments[k].max_latency);
      result.spike_points += segments[k].size();
    }
    const auto left = stable_before(segments, i);
    const auto right = stable_after(segments, j);
    int baseline = 0;
    if (left) baseline = segments[*left].max_latency;
    if (right) baseline = std::max(baseline, segments[*right].max_latency);
    event.baseline_ms = baseline;
    result.spikes.push_back(event);
    i = j;
  }

  // ---- Emit retained streams -------------------------------------------------
  result.retained.resize(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    result.retained[s].streamer = streams[s].streamer;
    result.retained[s].game = streams[s].game;
  }
  for (const auto& segment : segments) {
    const bool keep = segment.flag == SegmentFlag::kStable ||
                      segment.flag == SegmentFlag::kAbsorbed;
    for (std::size_t p = segment.first; p <= segment.last; ++p) {
      if (keep) {
        result.retained[origin[p]].points.push_back(stitched.points[p]);
        ++result.points_retained;
      } else if (segment.flag == SegmentFlag::kDiscarded ||
                 segment.flag == SegmentFlag::kGlitch) {
        ++result.points_discarded;
      }
    }
    if (segment.flag == SegmentFlag::kGlitch) ++result.glitch_segments;
  }
  return result;
}

CleanResult clean_stream(Stream stream, const AnalysisConfig& config) {
  std::vector<Stream> streams;
  streams.push_back(std::move(stream));
  return clean_streamer_game(std::move(streams), config);
}

}  // namespace tero::analysis
