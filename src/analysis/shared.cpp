#include "analysis/shared.hpp"

#include <algorithm>

#include "stats/distributions.hpp"

namespace tero::analysis {
namespace {

bool spike_overlaps_window(const SpikeEvent& spike, double window_start,
                           double window_end) noexcept {
  return spike.end_s >= window_start && spike.start_s <= window_end;
}

}  // namespace

SharedAnomalyResult find_shared_anomalies(
    const std::vector<StreamerActivity>& activities,
    const AnalysisConfig& config) {
  SharedAnomalyResult result;

  std::size_t total_measurements = 0;
  std::size_t total_spikes = 0;
  for (const auto& activity : activities) {
    total_measurements += activity.measurement_times.size();
    total_spikes += activity.spikes.size();
  }
  if (total_measurements == 0) return result;
  result.spike_probability =
      static_cast<double>(total_spikes) /
      static_cast<double>(total_measurements);
  const double p = result.spike_probability;
  // Eq. 2: statistical-significance prerequisite.
  result.sufficient_data =
      static_cast<double>(total_measurements) * p * (1.0 - p) > 10.0;
  if (!result.sufficient_data || total_spikes == 0) return result;

  const double half_window = config.shared_window_s / 2.0;

  for (std::size_t a = 0; a < activities.size(); ++a) {
    for (const auto& spike : activities[a].spikes) {
      const double center = (spike.start_s + spike.end_s) / 2.0;
      const double window_start = center - half_window;
      const double window_end = center + half_window;

      // N: streamers streaming during the window (>= 1 measurement in it);
      // D: those that also spiked in the window.
      std::uint64_t streaming = 0;
      std::uint64_t spiking = 0;
      std::vector<std::string> who;
      for (const auto& activity : activities) {
        const bool active = std::any_of(
            activity.measurement_times.begin(),
            activity.measurement_times.end(), [&](double t) {
              return t >= window_start && t <= window_end;
            });
        const bool spiked = std::any_of(
            activity.spikes.begin(), activity.spikes.end(),
            [&](const SpikeEvent& other) {
              return spike_overlaps_window(other, window_start, window_end);
            });
        if (active || spiked) ++streaming;
        if (spiked) {
          ++spiking;
          who.push_back(activity.streamer);
        }
      }
      if (spiking < 2 || streaming < spiking) continue;

      // Eq. 3: probability that D of N streamers spiked independently.
      const double probability = stats::binomial_pmf(streaming, spiking, p);
      if (probability <= config.shared_anomaly_p) {
        SharedAnomaly anomaly;
        anomaly.start_s = window_start;
        anomaly.end_s = window_end;
        anomaly.streamers = std::move(who);
        anomaly.probability = probability;
        result.anomalies.push_back(std::move(anomaly));
      }
    }
  }

  // Merge overlapping windows: consecutive spikes of the same incident
  // otherwise yield near-duplicate anomalies.
  std::sort(result.anomalies.begin(), result.anomalies.end(),
            [](const SharedAnomaly& x, const SharedAnomaly& y) {
              return x.start_s < y.start_s;
            });
  std::vector<SharedAnomaly> merged;
  for (auto& anomaly : result.anomalies) {
    if (!merged.empty() && anomaly.start_s <= merged.back().end_s) {
      merged.back().end_s = std::max(merged.back().end_s, anomaly.end_s);
      merged.back().probability =
          std::min(merged.back().probability, anomaly.probability);
      for (const auto& name : anomaly.streamers) {
        if (std::find(merged.back().streamers.begin(),
                      merged.back().streamers.end(),
                      name) == merged.back().streamers.end()) {
          merged.back().streamers.push_back(name);
        }
      }
    } else {
      merged.push_back(std::move(anomaly));
    }
  }
  result.anomalies = std::move(merged);
  return result;
}

}  // namespace tero::analysis
