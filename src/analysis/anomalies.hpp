#pragma once

#include <vector>

#include "analysis/types.hpp"

namespace tero::analysis {

/// Result of anomaly detection (§3.3.2) over all streams of one
/// {streamer, game} pair. The input streams are stitched together, glitches
/// and spikes detected, corrections applied from the OCR alternatives, and
/// the retained (clean) points handed back per stream.
struct CleanResult {
  /// The input streams with discarded and spike points removed and
  /// corrected points substituted; same order as the input.
  std::vector<Stream> retained;
  /// Surviving spikes (those that correction could not explain away).
  std::vector<SpikeEvent> spikes;

  std::size_t points_in = 0;         ///< total input points
  std::size_t points_retained = 0;   ///< points in `retained`
  std::size_t points_corrected = 0;  ///< alternatives substituted and kept
  std::size_t points_discarded = 0;  ///< dropped as glitch/noise
  std::size_t spike_points = 0;      ///< points inside surviving spikes
  std::size_t glitch_segments = 0;   ///< segments flagged as glitches
  /// True when the streamer had no stable segment at all — such streamers'
  /// data is dropped wholesale (§3.3.1).
  bool discarded_entirely = false;

  /// Spikes over total not-glitched points (Fig. 16a's metric); the
  /// MaxSpikes quality filter thresholds this.
  [[nodiscard]] double spike_fraction() const noexcept {
    const std::size_t denom = spike_points + points_retained;
    return denom == 0 ? 0.0
                      : static_cast<double>(spike_points) /
                            static_cast<double>(denom);
  }
};

/// Run glitch/spike detection + correction over the streams of one
/// {streamer, game} (stitched in time order).
[[nodiscard]] CleanResult clean_streamer_game(std::vector<Stream> streams,
                                              const AnalysisConfig& config);

/// Convenience wrapper for a single stream.
[[nodiscard]] CleanResult clean_stream(Stream stream,
                                       const AnalysisConfig& config);

/// The segment-level classification for one stitched point sequence —
/// exposed for tests and for the anomaly-baseline comparison (App. J).
[[nodiscard]] std::vector<Segment> classify_segments(
    const Stream& stitched, const AnalysisConfig& config);

}  // namespace tero::analysis
