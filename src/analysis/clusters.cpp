#include "analysis/clusters.hpp"

#include <algorithm>

#include "analysis/segmentation.hpp"

namespace tero::analysis {
namespace {

/// Cluster index a stable segment belongs to: the cluster whose range it
/// overlaps (or comes within the merge gap of); -1 if none.
int cluster_of(const std::vector<LatencyCluster>& clusters, int min_ms,
               int max_ms, double merge_gap) {
  int best = -1;
  double best_separation = merge_gap;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const double separation = std::max(
        {0.0, static_cast<double>(clusters[c].min_ms - max_ms),
         static_cast<double>(min_ms - clusters[c].max_ms)});
    if (separation < best_separation ||
        (best < 0 && separation < merge_gap)) {
      best_separation = separation;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

std::vector<LatencyCluster> merge_clusters(std::vector<ClusterInput> inputs,
                                           double merge_gap) {
  std::vector<LatencyCluster> clusters;
  if (inputs.empty()) return clusters;
  std::sort(inputs.begin(), inputs.end(),
            [](const ClusterInput& a, const ClusterInput& b) {
              return a.min_ms < b.min_ms;
            });
  std::size_t total_points = 0;
  for (const auto& input : inputs) total_points += input.points;

  LatencyCluster current;
  current.min_ms = inputs[0].min_ms;
  current.max_ms = inputs[0].max_ms;
  current.point_count = inputs[0].points;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    if (static_cast<double>(inputs[i].min_ms - current.max_ms) < merge_gap) {
      current.max_ms = std::max(current.max_ms, inputs[i].max_ms);
      current.point_count += inputs[i].points;
    } else {
      clusters.push_back(current);
      current = LatencyCluster{};
      current.min_ms = inputs[i].min_ms;
      current.max_ms = inputs[i].max_ms;
      current.point_count = inputs[i].points;
    }
  }
  clusters.push_back(current);

  for (auto& cluster : clusters) {
    cluster.weight = total_points > 0
                         ? static_cast<double>(cluster.point_count) /
                               static_cast<double>(total_points)
                         : 0.0;
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const LatencyCluster& a, const LatencyCluster& b) {
              return a.weight > b.weight;
            });
  return clusters;
}

std::vector<LatencyCluster> cluster_streamer(const CleanResult& clean,
                                             const AnalysisConfig& config) {
  std::vector<ClusterInput> inputs;
  for (const auto& stream : clean.retained) {
    for (const auto& segment : segment_stream(stream, config)) {
      if (!segment.stable) continue;
      inputs.push_back(ClusterInput{segment.min_latency, segment.max_latency,
                                    segment.size()});
    }
  }
  return merge_clusters(std::move(inputs),
                        config.lat_gap_ms * config.cluster_merge_factor);
}

bool is_static_streamer(const std::vector<LatencyCluster>& clusters,
                        const AnalysisConfig& config) {
  return !clusters.empty() && clusters.front().weight >= config.min_weight;
}

std::vector<LatencyCluster> cluster_location(
    const std::vector<std::vector<LatencyCluster>>& static_streamer_clusters,
    const AnalysisConfig& config) {
  std::vector<ClusterInput> inputs;
  for (const auto& clusters : static_streamer_clusters) {
    if (clusters.empty()) continue;
    // Only the heaviest cluster of each static streamer contributes; one
    // "point" per streamer so weights read as fractions of streamers.
    inputs.push_back(
        ClusterInput{clusters.front().min_ms, clusters.front().max_ms, 1});
  }
  return merge_clusters(std::move(inputs),
                        config.lat_gap_ms * config.cluster_merge_factor);
}

std::vector<EndpointChange> detect_endpoint_changes(
    const CleanResult& clean,
    const std::vector<LatencyCluster>& location_clusters,
    const AnalysisConfig& config) {
  std::vector<EndpointChange> changes;
  const double merge_gap = config.lat_gap_ms * config.cluster_merge_factor;

  struct StableSeg {
    double start_s;
    int cluster;
    std::size_t stream_index;
  };
  std::vector<StableSeg> sequence;
  for (std::size_t s = 0; s < clean.retained.size(); ++s) {
    const auto& stream = clean.retained[s];
    for (const auto& segment : segment_stream(stream, config)) {
      if (!segment.stable) continue;
      const int cluster =
          cluster_of(location_clusters, segment.min_latency,
                     segment.max_latency, merge_gap);
      sequence.push_back(
          StableSeg{stream.points[segment.first].time_s, cluster, s});
    }
  }
  std::sort(sequence.begin(), sequence.end(),
            [](const StableSeg& a, const StableSeg& b) {
              return a.start_s < b.start_s;
            });

  for (std::size_t i = 1; i < sequence.size(); ++i) {
    const auto& prev = sequence[i - 1];
    const auto& next = sequence[i];
    if (prev.cluster < 0 || next.cluster < 0 ||
        prev.cluster == next.cluster) {
      continue;
    }
    EndpointChange change;
    change.time_s = next.start_s;
    change.same_stream = prev.stream_index == next.stream_index;
    change.from_cluster = prev.cluster;
    change.to_cluster = next.cluster;
    changes.push_back(change);
  }
  return changes;
}

}  // namespace tero::analysis
