#pragma once

#include <vector>

#include "analysis/types.hpp"

namespace tero::analysis {

/// Divide a stream into same-QoE segments (§3.3.1): maximal consecutive
/// runs whose measurements all lie within LatGap of one another, classified
/// stable/unstable by StableLen.
[[nodiscard]] std::vector<Segment> segment_stream(const Stream& stream,
                                                  const AnalysisConfig& config);

/// Re-derive min/max and stability for segments over (possibly corrected)
/// points.
void refresh_segment(const Stream& stream, const AnalysisConfig& config,
                     Segment& segment);

/// True if every measurement of `a` differs by less than `gap` from the
/// value range of `b` (the "within LatGap of" test used by cleanup and
/// clustering). Equivalent to: the value ranges come closer than `gap`.
[[nodiscard]] bool ranges_within_gap(int min_a, int max_a, int min_b,
                                     int max_b, double gap) noexcept;

}  // namespace tero::analysis
