#pragma once

#include <vector>

#include "analysis/anomalies.hpp"
#include "analysis/types.hpp"

namespace tero::analysis {

/// A similar-latency cluster (§3.3.3): a merged value range with the
/// fraction of measurements (streamer level) or streamers (location level)
/// it covers.
struct LatencyCluster {
  int min_ms = 0;
  int max_ms = 0;
  double weight = 0.0;        ///< fraction of measurements / streamers
  std::size_t point_count = 0;

  [[nodiscard]] double center() const noexcept {
    return (min_ms + max_ms) / 2.0;
  }
};

/// Value ranges to cluster, with how many points each carries.
struct ClusterInput {
  int min_ms = 0;
  int max_ms = 0;
  std::size_t points = 0;
};

/// Single-linkage interval merging: two inputs end in different clusters
/// only if their value ranges are separated by at least `merge_gap` ms.
/// Output is sorted by weight, descending; weights are fractions of total
/// points.
[[nodiscard]] std::vector<LatencyCluster> merge_clusters(
    std::vector<ClusterInput> inputs, double merge_gap);

/// Per-streamer clustering (§3.3.3 step 1): cluster the stable segments of
/// the cleaned streams (spikes were already excluded by cleaning).
[[nodiscard]] std::vector<LatencyCluster> cluster_streamer(
    const CleanResult& clean, const AnalysisConfig& config);

/// Static/mobile classification (step 2): static iff the heaviest cluster
/// holds at least MinWeight of the measurements.
[[nodiscard]] bool is_static_streamer(
    const std::vector<LatencyCluster>& clusters, const AnalysisConfig& config);

/// Location-level clustering (step 3): merge each static streamer's
/// heaviest cluster; weights become fractions of contributing streamers.
[[nodiscard]] std::vector<LatencyCluster> cluster_location(
    const std::vector<std::vector<LatencyCluster>>& static_streamer_clusters,
    const AnalysisConfig& config);

/// An end-point change (step 4): two subsequent stable segments of one
/// streamer falling in different location-level clusters.
struct EndpointChange {
  double time_s = 0.0;
  bool same_stream = false;  ///< true: server change; false: maybe location
  int from_cluster = -1;
  int to_cluster = -1;
};

/// Detect end-point changes for one streamer against the location clusters.
[[nodiscard]] std::vector<EndpointChange> detect_endpoint_changes(
    const CleanResult& clean,
    const std::vector<LatencyCluster>& location_clusters,
    const AnalysisConfig& config);

}  // namespace tero::analysis
