#include "analysis/segmentation.hpp"

#include <algorithm>

namespace tero::analysis {

bool ranges_within_gap(int min_a, int max_a, int min_b, int max_b,
                       double gap) noexcept {
  // Separation between the closed intervals [min_a, max_a] and
  // [min_b, max_b]; overlapping intervals have separation 0.
  const double separation =
      std::max({0.0, static_cast<double>(min_b - max_a),
                static_cast<double>(min_a - max_b)});
  return separation < gap;
}

std::vector<Segment> segment_stream(const Stream& stream,
                                    const AnalysisConfig& config) {
  std::vector<Segment> segments;
  if (stream.points.empty()) return segments;

  const int min_points = config.stable_len_points();
  Segment current;
  current.first = 0;
  current.min_latency = current.max_latency = stream.points[0].latency_ms;

  auto close_segment = [&](std::size_t last) {
    current.last = last;
    current.stable = current.size() >= static_cast<std::size_t>(min_points);
    current.flag = current.stable ? SegmentFlag::kStable
                                  : SegmentFlag::kDiscarded;  // decided later
    segments.push_back(current);
  };

  for (std::size_t i = 1; i < stream.points.size(); ++i) {
    const int value = stream.points[i].latency_ms;
    const int new_min = std::min(current.min_latency, value);
    const int new_max = std::max(current.max_latency, value);
    if (new_max - new_min <= config.lat_gap_ms) {
      current.min_latency = new_min;
      current.max_latency = new_max;
      continue;
    }
    close_segment(i - 1);
    current = Segment{};
    current.first = i;
    current.min_latency = current.max_latency = value;
  }
  close_segment(stream.points.size() - 1);
  return segments;
}

void refresh_segment(const Stream& stream, const AnalysisConfig& config,
                     Segment& segment) {
  segment.min_latency = stream.points[segment.first].latency_ms;
  segment.max_latency = segment.min_latency;
  for (std::size_t i = segment.first; i <= segment.last; ++i) {
    segment.min_latency =
        std::min(segment.min_latency, stream.points[i].latency_ms);
    segment.max_latency =
        std::max(segment.max_latency, stream.points[i].latency_ms);
  }
  segment.stable =
      segment.size() >= static_cast<std::size_t>(config.stable_len_points());
}

}  // namespace tero::analysis
