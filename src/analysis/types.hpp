#pragma once

#include <optional>
#include <string>
#include <vector>

namespace tero::analysis {

/// One latency measurement extracted from one thumbnail. `alternative_ms`
/// is the dissenting OCR engine's value (§3.2), used to correct glitches and
/// spikes during analysis (§3.3.2).
struct Measurement {
  double time_s = 0.0;
  int latency_ms = 0;
  std::optional<int> alternative_ms;
};

/// A stream: the latency experienced by one streamer playing one game from
/// one session (§3.3.1). Consecutive points are >= ~5 minutes apart.
struct Stream {
  std::string streamer;  ///< pseudonymized id
  std::string game;
  std::vector<Measurement> points;
};

/// Tero's configurable parameters (Table 1).
struct AnalysisConfig {
  /// Perceivable latency difference threshold, ms (LatGap, default 15 ms
  /// per [32]).
  double lat_gap_ms = 15.0;
  /// Minimum time one must play on the same server before switching
  /// (StableLen); App. I settles on 30 minutes.
  double stable_len_minutes = 30.0;
  /// Expected spacing of thumbnails, used to convert StableLen to points.
  double point_spacing_minutes = 5.0;
  /// Maximum proportion of spike points allowed for a "high-quality"
  /// streamer (MaxSpikes, §3.3.3).
  double max_spikes = 0.5;
  /// A streamer is static when one cluster holds at least this weight.
  double min_weight = 0.8;
  /// Shared-anomaly significance threshold (App. F: P_D <= 0.01%).
  double shared_anomaly_p = 1e-4;
  /// Window around a spike in which another streamer counts as concurrent
  /// (App. F: 12 minutes, from the 90th-pct thumbnail gap of 6 minutes).
  double shared_window_s = 720.0;
  /// Cluster-merge factor: segments closer than factor * LatGap merge
  /// (Fig. 14 varies this).
  double cluster_merge_factor = 1.0;
  /// Ablation switch: keep unexplained unstable segments instead of
  /// discarding them in the cleanup step (Fig. 1d). The paper argues the
  /// discard is necessary because such segments are usually glitch
  /// victims; bench_ablations quantifies that.
  bool disable_cleanup_discard = false;

  [[nodiscard]] int stable_len_points() const {
    const double points = stable_len_minutes / point_spacing_minutes;
    return points < 1.0 ? 1 : static_cast<int>(points + 0.5);
  }
};

/// How a segment ended up classified after anomaly detection (§3.3.2).
enum class SegmentFlag {
  kStable,     ///< stable segment
  kAbsorbed,   ///< unstable but within LatGap of a stable neighbour — kept
  kGlitch,     ///< latency drop caused by image-processing error
  kSpike,      ///< genuine-looking latency increase
  kDiscarded,  ///< neither explainable nor absorbable — dropped
};

/// A maximal run of same-QoE points (§3.3.1): all pairwise within LatGap.
struct Segment {
  std::size_t first = 0;  ///< index of first point (inclusive)
  std::size_t last = 0;   ///< index of last point (inclusive)
  int min_latency = 0;
  int max_latency = 0;
  bool stable = false;
  SegmentFlag flag = SegmentFlag::kDiscarded;

  [[nodiscard]] std::size_t size() const noexcept { return last - first + 1; }
};

/// A detected spike after merging (§3.3.2): a time range of elevated
/// latency for one streamer/game.
struct SpikeEvent {
  double start_s = 0.0;
  double end_s = 0.0;
  int peak_latency_ms = 0;
  int baseline_ms = 0;  ///< max latency of the neighbouring stable segments

  [[nodiscard]] double magnitude_ms() const noexcept {
    return peak_latency_ms - baseline_ms;
  }
};

}  // namespace tero::analysis
