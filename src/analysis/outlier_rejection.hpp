#pragma once

#include <vector>

#include "analysis/clusters.hpp"

namespace tero::analysis {

/// The §3.1.2 error-reduction step the paper describes but leaves to its
/// data-set users: "latency measurements of streamers playing from the
/// same location tend to fall into clusters. Hence, one approach to
/// reducing [location] errors would be to reject latency measurements that
/// fall outside the clusters for the corresponding location."
///
/// Given a streamer's clusters and the location-level clusters, decide
/// whether the streamer plausibly plays from that location: their heaviest
/// cluster must land within (LatGap of) one of the location's clusters
/// whose weight is at least `min_cluster_weight`.
struct OutlierRejectionConfig {
  double min_cluster_weight = 0.25;  ///< location clusters lighter than
                                     ///  this don't vouch for anyone
};

/// True when the streamer's top cluster is consistent with the location.
[[nodiscard]] bool streamer_consistent_with_location(
    const std::vector<LatencyCluster>& streamer_clusters,
    const std::vector<LatencyCluster>& location_clusters,
    const AnalysisConfig& config,
    const OutlierRejectionConfig& rejection = {});

/// Indices of entries (into `streamer_clusters_per_entry`) whose top
/// cluster falls outside every substantial location cluster — the
/// candidates for location-error rejection.
[[nodiscard]] std::vector<std::size_t> find_location_outliers(
    const std::vector<std::vector<LatencyCluster>>&
        streamer_clusters_per_entry,
    const std::vector<LatencyCluster>& location_clusters,
    const AnalysisConfig& config,
    const OutlierRejectionConfig& rejection = {});

}  // namespace tero::analysis
