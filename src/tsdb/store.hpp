#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/segment.hpp"

namespace tero::fault {
class FaultInjector;
class FaultPoint;
}  // namespace tero::fault

namespace tero::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace tero::obs

namespace tero::util {
class ThreadPool;
}  // namespace tero::util

namespace tero::tsdb {

/// Tiered time-series store (DESIGN.md §15): an in-memory head block backed
/// by a write-ahead log seals, on virtual-time advance, into immutable
/// compressed segments persisted through the TEROKV atomic-rename path;
/// background compaction merges same-level segments and retention drops
/// expired ones. All scheduling is driven by advance_to() on virtual time —
/// never wall clock — so segment layout is a pure function of (appends,
/// advance calls, config, fault plan) and bit-identical at any thread count.
struct TsdbConfig {
  /// Directory for the WAL, manifest, and segment files. Empty = purely
  /// in-memory (no durability, no recovery) — the bench configuration.
  std::string dir;
  /// Head span: advance_to(t) seals everything before the last whole
  /// span boundary at or before t. Default one virtual day.
  std::int64_t head_span_ms = 86'400'000;
  /// Merge this many same-level segments into one at the next level.
  std::size_t compact_fanin = 4;
  /// Drop segments whose max_t falls this far behind the advance frontier.
  /// 0 keeps history forever.
  std::int64_t retention_ms = 0;
  /// Compaction jobs within one planning round run through this pool
  /// (nullptr = inline). Plans are made and applied serially, so results
  /// are identical for any pool size.
  util::ThreadPool* pool = nullptr;
  obs::MetricsRegistry* metrics = nullptr;  ///< tero.tsdb.* (optional)
  /// Arms the tsdb.{seal,compact,read} fault points (optional). kError at
  /// seal/compact skips the operation (retried on the next advance); kCrash
  /// tears the output file and throws — the recovery path's test diet.
  fault::FaultInjector* injector = nullptr;
};

/// Aggregation applied per window of a range query.
enum class RangeAgg : std::uint8_t { kCount, kMean, kPercentile };

/// One window of a range-query answer. `t_ms` is the window start; windows
/// with count == 0 report value 0 so every answer has exactly
/// (t1 - t0) / window entries regardless of data layout.
struct RangePoint {
  std::int64_t t_ms = 0;
  std::uint64_t count = 0;
  double value = 0.0;

  friend bool operator==(const RangePoint&, const RangePoint&) = default;
};

/// A historical range query over one series key.
struct RangeQuery {
  std::string key;
  std::int64_t t0_ms = 0;
  std::int64_t t1_ms = 0;  ///< exclusive
  std::int64_t window_ms = 86'400'000;
  RangeAgg agg = RangeAgg::kMean;
  double pct = 99.0;  ///< percentile in [0, 100], kPercentile only
};

class TimeSeriesStore {
 public:
  /// Opening a store with a non-empty dir runs crash recovery: the manifest
  /// names the live segments (orphan segment files from a crash mid-seal or
  /// mid-compaction are deleted), and the WAL is replayed into the head —
  /// acknowledged appends survive any crash the fault plans can inject.
  explicit TimeSeriesStore(TsdbConfig config);
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Append one sample. Appends are acknowledged once the WAL record is
  /// written (durable mode) — recovery never loses them. Samples older than
  /// the sealed frontier are rejected (std::invalid_argument): history is
  /// immutable once sealed.
  void append(std::string_view key, std::int64_t t_ms, double value);

  /// Advance virtual time: seal head spans that ended at or before t_ms,
  /// run compaction rounds until no level has compact_fanin segments, then
  /// apply retention. Deterministic for any thread count; fault points
  /// tsdb.seal / tsdb.compact fire here.
  void advance_to(std::int64_t t_ms);

  /// Windowed aggregate over segments + head, streamed chunk-by-chunk —
  /// never materializes a series vector. Throws std::invalid_argument on a
  /// malformed query (t1 <= t0, window <= 0, more than kMaxWindows
  /// windows); an armed tsdb.read kError/kCrash surfaces as
  /// std::runtime_error (serve maps it to kUnavailable).
  [[nodiscard]] std::vector<RangePoint> range(const RangeQuery& query) const;

  /// Week-over-week drift: pct-percentile over [now-7d, now) minus the same
  /// percentile over [now-14d, now-7d).
  [[nodiscard]] double drift(std::string_view key, std::int64_t now_ms,
                             double pct) const;

  static constexpr std::int64_t kMaxWindows = 1 << 16;

  /// Generation counter, bumped by every mutation (append/seal/compact/
  /// retention) — serve folds it into range cache keys so cached answers
  /// never outlive the data they summarize.
  [[nodiscard]] std::uint64_t version() const;

  /// Everything before this virtual time lives in immutable segments.
  [[nodiscard]] std::int64_t sealed_until() const;

  struct Stats {
    std::size_t segments = 0;
    std::uint64_t head_samples = 0;
    std::uint64_t segment_samples = 0;
    std::uint64_t raw_bytes = 0;         ///< segment samples at 16 B each
    std::uint64_t compressed_bytes = 0;  ///< encoded chunk bytes
    std::int64_t sealed_until_ms = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Sorted union of series keys across segments and head.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Materialize one series in time order (verification/tests only — real
  /// reads go through range()).
  [[nodiscard]] std::vector<Sample> series(std::string_view key) const;

  /// Order- and thread-independent digest of every stored sample (sorted
  /// keys, time-ordered samples, mix_seed-folded) — the witness for the
  /// 1-vs-N-thread and crash-recovery determinism sweeps.
  [[nodiscard]] std::uint64_t dataset_digest() const;

  /// Per-segment "id:level:count" summary in (min_t, id) order — asserts
  /// "same surviving segments" across thread counts.
  [[nodiscard]] std::string segment_layout() const;

 private:
  struct WalRecord {
    std::string key;
    std::int64_t t_ms = 0;
    std::uint64_t value_bits = 0;
  };

  void recover();
  void replay_wal(const std::string& path);
  void rewrite_wal_locked();
  void wal_append_locked(std::string_view key, std::int64_t t_ms,
                         std::uint64_t value_bits);
  void save_manifest_locked();
  void seal_locked(std::int64_t boundary);
  void compact_locked();
  void retain_locked(std::int64_t frontier);
  void refresh_gauges_locked();
  [[nodiscard]] std::string segment_path(std::uint64_t id) const;

  TsdbConfig config_;
  mutable std::mutex mutex_;
  /// Head block: per-series appends since the sealed frontier. Vectors are
  /// in append order; seal sorts them (stable) before encoding.
  std::map<std::string, std::vector<Sample>, std::less<>> head_;
  std::uint64_t head_samples_ = 0;
  /// Immutable segments in (min_t, id) order. shared_ptr so queries decode
  /// outside the lock while compaction retires inputs.
  std::vector<std::shared_ptr<const Segment>> segments_;
  std::int64_t sealed_until_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t version_ = 0;
  std::ofstream wal_;
  /// Files dropped by compaction/retention this advance; unlinked only
  /// after the manifest stops referencing them (crash-ordering invariant).
  std::vector<std::string> doomed_files_;

  fault::FaultPoint* seal_fault_ = nullptr;
  fault::FaultPoint* compact_fault_ = nullptr;
  fault::FaultPoint* read_fault_ = nullptr;

  obs::Counter* appends_ = nullptr;
  obs::Counter* seals_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Counter* retention_drops_ = nullptr;
  obs::Counter* range_queries_ = nullptr;
  obs::Gauge* segments_gauge_ = nullptr;
  obs::Gauge* head_samples_gauge_ = nullptr;
  obs::Gauge* bytes_raw_gauge_ = nullptr;
  obs::Gauge* bytes_compressed_gauge_ = nullptr;
  obs::Histogram* compact_ms_ = nullptr;
  obs::Histogram* read_segments_ = nullptr;
};

}  // namespace tero::tsdb
