#include "tsdb/segment.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "store/kv_store.hpp"
#include "store/persistence.hpp"

namespace tero::tsdb {
namespace {

SeriesChunk make_chunk(std::string key, std::span<const Sample> samples) {
  SeriesChunk chunk;
  chunk.key = std::move(key);
  chunk.bytes = encode_chunk(samples);
  chunk.min_t = samples.front().t_ms;
  chunk.max_t = samples.back().t_ms;
  chunk.count = samples.size();
  return chunk;
}

void finalize(Segment& segment) {
  segment.sample_count = 0;
  segment.compressed_bytes = 0;
  segment.min_t = 0;
  segment.max_t = 0;
  bool first = true;
  for (const SeriesChunk& chunk : segment.chunks) {
    segment.sample_count += chunk.count;
    segment.compressed_bytes += chunk.bytes.size();
    if (first || chunk.min_t < segment.min_t) segment.min_t = chunk.min_t;
    if (first || chunk.max_t > segment.max_t) segment.max_t = chunk.max_t;
    first = false;
  }
  segment.raw_bytes = segment.sample_count * kRawSampleBytes;
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw std::runtime_error("load_segment: " + path + ": " + why);
}

}  // namespace

const SeriesChunk* Segment::find(std::string_view key) const {
  const auto it = std::lower_bound(
      chunks.begin(), chunks.end(), key,
      [](const SeriesChunk& chunk, std::string_view k) {
        return chunk.key < k;
      });
  if (it == chunks.end() || it->key != key) return nullptr;
  return &*it;
}

Segment build_segment(std::uint64_t id, std::uint32_t level,
                      const std::map<std::string, std::vector<Sample>>& series) {
  Segment segment;
  segment.id = id;
  segment.level = level;
  segment.chunks.reserve(series.size());
  for (const auto& [key, samples] : series) {
    if (samples.empty()) continue;
    segment.chunks.push_back(make_chunk(key, samples));
  }
  finalize(segment);
  return segment;
}

Segment merge_segments(std::span<const std::shared_ptr<const Segment>> inputs,
                       std::uint64_t id, std::uint32_t level) {
  // Gather the union of keys in sorted order, then re-encode one key at a
  // time so peak memory is one decoded series, not the whole merge.
  std::vector<std::string_view> keys;
  for (const auto& input : inputs) {
    for (const SeriesChunk& chunk : input->chunks) keys.push_back(chunk.key);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  Segment segment;
  segment.id = id;
  segment.level = level;
  segment.chunks.reserve(keys.size());
  std::vector<Sample> merged;
  for (const std::string_view key : keys) {
    merged.clear();
    for (const auto& input : inputs) {
      const SeriesChunk* chunk = input->find(key);
      if (chunk == nullptr) continue;
      ChunkCursor cursor(chunk->bytes);
      Sample sample;
      while (cursor.next(sample)) merged.push_back(sample);
      cursor.expect_end();
    }
    // Inputs are oldest-first with non-overlapping ranges, but a stable sort
    // keeps the merge correct (and duplicate order reproducible) even if a
    // caller hands over overlapping segments.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Sample& a, const Sample& b) {
                       return a.t_ms < b.t_ms;
                     });
    segment.chunks.push_back(make_chunk(std::string(key), merged));
  }
  finalize(segment);
  return segment;
}

std::string segment_filename(std::uint64_t id) {
  return "segment-" + std::to_string(id) + ".tkv";
}

void save_segment(const Segment& segment, const std::string& path) {
  store::KvStore kv;
  std::ostringstream meta;
  meta << segment.id << ' ' << segment.level << ' ' << segment.min_t << ' '
       << segment.max_t << ' ' << segment.sample_count;
  kv.put("meta", meta.str());
  for (const SeriesChunk& chunk : segment.chunks) {
    kv.put("k:" + chunk.key, chunk.bytes);
    std::ostringstream info;
    info << chunk.min_t << ' ' << chunk.max_t << ' ' << chunk.count;
    kv.put("i:" + chunk.key, info.str());
  }
  store::save_kv_file(kv, path);
}

Segment load_segment(const std::string& path) {
  const store::KvStore kv = store::load_kv_file(path);
  const auto meta = kv.get("meta");
  if (!meta) reject(path, "missing meta");
  Segment segment;
  {
    std::istringstream is(*meta);
    if (!(is >> segment.id >> segment.level >> segment.min_t >>
          segment.max_t >> segment.sample_count)) {
      reject(path, "malformed meta");
    }
  }
  const std::uint64_t declared = segment.sample_count;
  for (const std::string& kv_key : kv.keys_with_prefix("k:")) {
    SeriesChunk chunk;
    chunk.key = kv_key.substr(2);
    chunk.bytes = *kv.get(kv_key);
    const auto info = kv.get("i:" + chunk.key);
    if (!info) reject(path, "missing chunk info for " + chunk.key);
    std::istringstream is(*info);
    if (!(is >> chunk.min_t >> chunk.max_t >> chunk.count)) {
      reject(path, "malformed chunk info for " + chunk.key);
    }
    try {
      if (chunk_count(chunk.bytes) != chunk.count) {
        reject(path, "chunk count mismatch for " + chunk.key);
      }
    } catch (const ChunkCorruptError& err) {
      reject(path, err.what());
    }
    segment.chunks.push_back(std::move(chunk));
  }
  // keys_with_prefix returns sorted keys, so chunks are already key-ordered.
  finalize(segment);
  if (declared != segment.sample_count) {
    reject(path, "sample count mismatch");
  }
  return segment;
}

}  // namespace tero::tsdb
