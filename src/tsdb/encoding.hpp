#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tero::tsdb {

/// One latency observation in a series: integer-millisecond timestamp plus
/// a double value. Timestamps within a chunk must be non-decreasing
/// (duplicates allowed — two thumbnails can land in the same millisecond);
/// the encoder rejects regressions so a decoded chunk is always sorted.
struct Sample {
  std::int64_t t_ms = 0;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Raw footprint of one sample (int64 timestamp + double value) — the
/// baseline the compression ratio in BENCH_tsdb.json is measured against.
inline constexpr std::size_t kRawSampleBytes = sizeof(std::int64_t) +
                                               sizeof(double);

/// Gorilla-lineage chunk codec (DESIGN.md §15).
///
/// Timestamps are delta-of-delta encoded: a steady sampling cadence costs
/// one bit per sample after the first two. Values are XOR-compressed against
/// their predecessor with the classic leading/meaningful-bits window reuse,
/// so integer-millisecond latencies (the OCR path emits whole milliseconds)
/// cost a few bits each instead of 64.
///
/// Chunk layout (byte-aligned header, then a bit stream, then a checksum):
///
///   varint   sample count n
///   zigzag   t[0]
///   u64      bits(value[0])
///   bits     n-1 x (dod-encoded timestamp, xor-encoded value)
///   padding  to the next byte boundary (zero bits)
///   u64le    fnv1a64 over every preceding byte
///
/// dod buckets: '0' (dod == 0), '10'+7b, '110'+9b, '1110'+12b, '1111'+64b.
/// value: '0' (xor == 0); '10' + meaningful bits in the previous window;
/// '11' + 6b leading-zero count + 6b (window length - 1) + window bits.
///
/// decode_chunk verifies the trailing checksum before touching the bit
/// stream and bounds the declared count against the available bits, so any
/// single-byte corruption — payload, header, or checksum — raises
/// ChunkCorruptError instead of silently returning wrong samples
/// (tests/tsdb_test.cpp sweeps every byte).

class ChunkCorruptError : public std::runtime_error {
 public:
  explicit ChunkCorruptError(const std::string& what)
      : std::runtime_error("tsdb chunk: " + what) {}
};

/// Encode a non-decreasing sample run. Throws std::invalid_argument on a
/// timestamp regression.
[[nodiscard]] std::string encode_chunk(std::span<const Sample> samples);

/// Streaming decoder: yields one sample at a time so range queries fold
/// samples into window aggregates without ever materializing a series
/// vector. The construction verifies the trailing checksum up front; the
/// chunk bytes must outlive the cursor (callers keep the owning Segment
/// alive for the duration of a query).
class ChunkCursor {
 public:
  explicit ChunkCursor(std::string_view bytes);

  /// Total samples declared by the (checksum-verified) header.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Advance to the next sample; false once `count()` samples were yielded.
  /// Throws ChunkCorruptError on malformed bits.
  bool next(Sample& out);

  /// After next() returns false: verify only zero padding remains. Throws
  /// ChunkCorruptError otherwise (decode_chunk's trailing-garbage check).
  void expect_end();

 private:
  [[nodiscard]] bool read_bit();
  [[nodiscard]] std::uint64_t read_bits(unsigned bits);
  [[nodiscard]] std::int64_t read_dod();

  const unsigned char* data_ = nullptr;  ///< start of the post-header bits
  std::size_t bit_count_ = 0;
  std::size_t bit_cursor_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t emitted_ = 0;
  std::int64_t t_ = 0;
  std::int64_t delta_ = 0;
  std::uint64_t value_bits_ = 0;
  unsigned leading_ = 64;
  unsigned window_length_ = 0;
};

/// Decode a chunk produced by encode_chunk; bit-exact round trip. Throws
/// ChunkCorruptError on checksum mismatch, truncation, or malformed bits.
[[nodiscard]] std::vector<Sample> decode_chunk(std::string_view bytes);

/// Header-only peek: the sample count of a chunk (checksum verified).
[[nodiscard]] std::uint64_t chunk_count(std::string_view bytes);

}  // namespace tero::tsdb
