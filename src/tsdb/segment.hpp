#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/encoding.hpp"

namespace tero::tsdb {

/// One series inside a segment: the key plus its encoded chunk and the
/// time-range metadata needed to prune queries without decoding.
struct SeriesChunk {
  std::string key;
  std::string bytes;  ///< encode_chunk output (checksummed)
  std::int64_t min_t = 0;
  std::int64_t max_t = 0;
  std::uint64_t count = 0;
};

/// An immutable, compressed run of samples covering [min_t, max_t] for every
/// series that had data in that window. Level 0 segments come from head
/// seals; compaction merges `fanin` same-level segments into one at the next
/// level. Segments are shared read-only (shared_ptr<const Segment>) so
/// queries can decode without holding the store lock.
struct Segment {
  std::uint64_t id = 0;
  std::uint32_t level = 0;
  std::int64_t min_t = 0;
  std::int64_t max_t = 0;
  std::uint64_t sample_count = 0;
  std::uint64_t raw_bytes = 0;         ///< sample_count * kRawSampleBytes
  std::uint64_t compressed_bytes = 0;  ///< sum of chunk byte sizes
  std::vector<SeriesChunk> chunks;     ///< sorted by key

  /// Binary search by key; nullptr when the segment has no such series.
  [[nodiscard]] const SeriesChunk* find(std::string_view key) const;
};

/// Encode a per-series sample map (each vector non-decreasing in time) into
/// a segment. Series iterate in map order, so chunk order — and therefore
/// the serialized bytes — is independent of insertion order.
[[nodiscard]] Segment build_segment(
    std::uint64_t id, std::uint32_t level,
    const std::map<std::string, std::vector<Sample>>& series);

/// Merge same-level input segments (oldest first, non-overlapping time
/// ranges) into one segment at `level`. Per key, samples are concatenated in
/// input order and stable-sorted by timestamp, so duplicate-timestamp order
/// is reproducible. Deterministic: depends only on the inputs.
[[nodiscard]] Segment merge_segments(
    std::span<const std::shared_ptr<const Segment>> inputs, std::uint64_t id,
    std::uint32_t level);

/// File name for a segment id within the store directory ("segment-<id>.tkv").
[[nodiscard]] std::string segment_filename(std::uint64_t id);

/// Persist through the TEROKV checksummed atomic-rename path
/// (store::save_kv_file): layout is "meta" -> "id level min_t max_t count",
/// one "k:<key>" -> chunk bytes and one "i:<key>" -> "min max count" pair
/// per series. A crash mid-save leaves the previous file (if any) intact.
void save_segment(const Segment& segment, const std::string& path);

/// Load and validate a segment file; throws std::runtime_error on torn,
/// truncated, or bit-flipped files (store::load_kv_file's checks) and on
/// malformed segment layout or per-chunk checksum failures.
[[nodiscard]] Segment load_segment(const std::string& path);

}  // namespace tero::tsdb
