#include "tsdb/encoding.hpp"

#include <bit>
#include <cstring>

#include "util/rng.hpp"

namespace tero::tsdb {
namespace {

// -- bit stream ---------------------------------------------------------------

class BitWriter {
 public:
  explicit BitWriter(std::string& out) : out_(out) {}

  void write_bit(bool bit) {
    if (fill_ == 0) {
      out_.push_back('\0');
      fill_ = 8;
    }
    if (bit) {
      out_.back() = static_cast<char>(
          static_cast<unsigned char>(out_.back()) | (1u << (fill_ - 1)));
    }
    --fill_;
  }

  /// Write the low `bits` bits of `value`, most significant first.
  void write_bits(std::uint64_t value, unsigned bits) {
    for (unsigned i = bits; i > 0; --i) {
      write_bit(((value >> (i - 1)) & 1u) != 0);
    }
  }

 private:
  std::string& out_;
  unsigned fill_ = 0;  ///< unused low bits in out_.back()
};

// -- byte-aligned header helpers ----------------------------------------------

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint64_t get_varint(const unsigned char* data, std::size_t size,
                         std::size_t& cursor) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    if (cursor >= size || shift > 63) {
      throw ChunkCorruptError("malformed varint header");
    }
    const unsigned char byte = data[cursor++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void put_u64le(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64le(const unsigned char* data) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

// dod bucket widths: {'10', 7}, {'110', 9}, {'1110', 12}, {'1111', 64}.
// The k-bit buckets store dod + 2^(k-1) (biased), covering
// [-2^(k-1), 2^(k-1) - 1].
constexpr std::int64_t kBias7 = 1ll << 6;
constexpr std::int64_t kBias9 = 1ll << 8;
constexpr std::int64_t kBias12 = 1ll << 11;

void write_dod(BitWriter& writer, std::int64_t dod) {
  if (dod == 0) {
    writer.write_bit(false);
  } else if (dod >= -kBias7 && dod < kBias7) {
    writer.write_bits(0b10, 2);
    writer.write_bits(static_cast<std::uint64_t>(dod + kBias7), 7);
  } else if (dod >= -kBias9 && dod < kBias9) {
    writer.write_bits(0b110, 3);
    writer.write_bits(static_cast<std::uint64_t>(dod + kBias9), 9);
  } else if (dod >= -kBias12 && dod < kBias12) {
    writer.write_bits(0b1110, 4);
    writer.write_bits(static_cast<std::uint64_t>(dod + kBias12), 12);
  } else {
    writer.write_bits(0b1111, 4);
    writer.write_bits(zigzag(dod), 64);
  }
}

}  // namespace

std::string encode_chunk(std::span<const Sample> samples) {
  std::string out;
  out.reserve(16 + samples.size() * 2);
  put_varint(out, samples.size());
  if (!samples.empty()) {
    put_varint(out, zigzag(samples[0].t_ms));
    put_u64le(out, std::bit_cast<std::uint64_t>(samples[0].value));

    BitWriter writer(out);
    std::int64_t prev_t = samples[0].t_ms;
    std::int64_t prev_delta = 0;
    std::uint64_t prev_bits = std::bit_cast<std::uint64_t>(samples[0].value);
    unsigned prev_leading = 64;  // no window yet: force a '11' on first xor
    unsigned prev_length = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const std::int64_t delta = samples[i].t_ms - prev_t;
      if (delta < 0) {
        throw std::invalid_argument(
            "encode_chunk: timestamps must be non-decreasing");
      }
      write_dod(writer, delta - prev_delta);
      prev_delta = delta;
      prev_t = samples[i].t_ms;

      const std::uint64_t bits = std::bit_cast<std::uint64_t>(samples[i].value);
      const std::uint64_t xored = bits ^ prev_bits;
      prev_bits = bits;
      if (xored == 0) {
        writer.write_bit(false);
        continue;
      }
      writer.write_bit(true);
      const auto leading = static_cast<unsigned>(std::countl_zero(xored));
      const auto trailing = static_cast<unsigned>(std::countr_zero(xored));
      const unsigned length = 64 - leading - trailing;
      if (prev_length > 0 && leading >= prev_leading &&
          64 - leading - length >= 64 - prev_leading - prev_length) {
        // Fits inside the previous meaningful window: reuse it.
        writer.write_bit(false);
        writer.write_bits(xored >> (64 - prev_leading - prev_length),
                          prev_length);
      } else {
        writer.write_bit(true);
        writer.write_bits(leading, 6);
        writer.write_bits(length - 1, 6);
        writer.write_bits(xored >> trailing, length);
        prev_leading = leading;
        prev_length = length;
      }
    }
  }
  put_u64le(out, util::fnv1a64({out.data(), out.size()}));
  return out;
}

namespace {

/// Shared validation: strip and verify the trailing checksum, returning the
/// protected payload.
std::string_view checked_payload(std::string_view bytes) {
  if (bytes.size() < 8 + 1) {
    throw ChunkCorruptError("shorter than header + checksum");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);
  const std::uint64_t stored = get_u64le(
      reinterpret_cast<const unsigned char*>(bytes.data()) + payload.size());
  if (util::fnv1a64({payload.data(), payload.size()}) != stored) {
    throw ChunkCorruptError("checksum mismatch (corrupted chunk)");
  }
  return payload;
}

}  // namespace

std::uint64_t chunk_count(std::string_view bytes) {
  const std::string_view payload = checked_payload(bytes);
  const auto* data = reinterpret_cast<const unsigned char*>(payload.data());
  std::size_t cursor = 0;
  return get_varint(data, payload.size(), cursor);
}

ChunkCursor::ChunkCursor(std::string_view bytes) {
  const std::string_view payload = checked_payload(bytes);
  const auto* data = reinterpret_cast<const unsigned char*>(payload.data());
  std::size_t cursor = 0;
  count_ = get_varint(data, payload.size(), cursor);
  if (count_ == 0) {
    if (cursor != payload.size()) {
      throw ChunkCorruptError("trailing bytes after empty chunk");
    }
    data_ = data + cursor;
    return;
  }
  // Every sample past the first costs at least 2 bits (dod '0' + xor '0'),
  // so an insane declared count is rejected before any allocation.
  if (count_ > 1 && (count_ - 1) > payload.size() * 8) {
    throw ChunkCorruptError("declared count exceeds available bits");
  }
  t_ = unzigzag(get_varint(data, payload.size(), cursor));
  if (payload.size() - cursor < 8) {
    throw ChunkCorruptError("truncated first value");
  }
  value_bits_ = get_u64le(data + cursor);
  cursor += 8;
  data_ = data + cursor;
  bit_count_ = (payload.size() - cursor) * 8;
}

bool ChunkCursor::read_bit() {
  if (bit_cursor_ >= bit_count_) {
    throw ChunkCorruptError("bit stream exhausted (truncated chunk)");
  }
  const bool bit =
      (data_[bit_cursor_ / 8] >> (7 - (bit_cursor_ % 8)) & 1u) != 0;
  ++bit_cursor_;
  return bit;
}

std::uint64_t ChunkCursor::read_bits(unsigned bits) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    value = (value << 1) | (read_bit() ? 1u : 0u);
  }
  return value;
}

std::int64_t ChunkCursor::read_dod() {
  if (!read_bit()) return 0;
  if (!read_bit()) {
    return static_cast<std::int64_t>(read_bits(7)) - kBias7;
  }
  if (!read_bit()) {
    return static_cast<std::int64_t>(read_bits(9)) - kBias9;
  }
  if (!read_bit()) {
    return static_cast<std::int64_t>(read_bits(12)) - kBias12;
  }
  return unzigzag(read_bits(64));
}

bool ChunkCursor::next(Sample& out) {
  if (emitted_ >= count_) return false;
  if (emitted_ == 0) {
    ++emitted_;
    out = {t_, std::bit_cast<double>(value_bits_)};
    return true;
  }
  const std::int64_t dod = read_dod();
  const std::int64_t delta = delta_ + dod;
  if (delta < 0) {
    throw ChunkCorruptError("decoded negative timestamp delta");
  }
  delta_ = delta;
  t_ += delta;

  if (read_bit()) {
    if (read_bit()) {
      leading_ = static_cast<unsigned>(read_bits(6));
      window_length_ = static_cast<unsigned>(read_bits(6)) + 1;
      if (leading_ + window_length_ > 64) {
        throw ChunkCorruptError("xor window exceeds 64 bits");
      }
    } else if (window_length_ == 0) {
      throw ChunkCorruptError("window reuse before any window");
    }
    const std::uint64_t window = read_bits(window_length_);
    value_bits_ ^= window << (64 - leading_ - window_length_);
  }
  ++emitted_;
  out = {t_, std::bit_cast<double>(value_bits_)};
  return true;
}

void ChunkCursor::expect_end() {
  // Only zero padding may remain — a '1' bit here means the stream and the
  // declared count disagree.
  if (bit_count_ - bit_cursor_ >= 8) {
    throw ChunkCorruptError("trailing bytes after last sample");
  }
  while (bit_cursor_ < bit_count_) {
    if (read_bit()) {
      throw ChunkCorruptError("nonzero padding after last sample");
    }
  }
}

std::vector<Sample> decode_chunk(std::string_view bytes) {
  ChunkCursor cursor(bytes);
  std::vector<Sample> samples;
  samples.reserve(cursor.count());
  Sample sample;
  while (cursor.next(sample)) samples.push_back(sample);
  cursor.expect_end();
  return samples;
}

}  // namespace tero::tsdb
