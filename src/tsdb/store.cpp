#include "tsdb/store.hpp"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "store/kv_store.hpp"
#include "store/persistence.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fs = std::filesystem;

namespace tero::tsdb {
namespace {

/// Emulate the torn write an injected crash leaves behind: a header with no
/// payload, footer, or trailer — load_kv_file/load_segment must reject it
/// and recovery must clean it up (it is never referenced by the manifest).
void write_torn_file(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << "TEROKV 1\n<torn by injected crash>";
}

/// WAL record: `R <keylen> <key> <t_ms> <value_bits> <fnv1a64>\n` where the
/// checksum covers exactly the `<keylen> ... <value_bits>` body, so a torn
/// tail (truncated write, partial flush) is detected and discarded.
std::string wal_record(std::string_view key, std::int64_t t_ms,
                       std::uint64_t value_bits) {
  std::string body = std::to_string(key.size());
  body += ' ';
  body += key;
  body += ' ';
  body += std::to_string(t_ms);
  body += ' ';
  body += std::to_string(value_bits);
  std::string record = "R " + body;
  record += ' ';
  record += std::to_string(util::fnv1a64({body.data(), body.size()}));
  record += '\n';
  return record;
}

bool parse_u64(const std::string& text, std::size_t& cursor, char terminator,
               std::uint64_t& out) {
  std::uint64_t value = 0;
  std::size_t digits = 0;
  while (cursor < text.size() && text[cursor] >= '0' && text[cursor] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[cursor] - '0');
    ++cursor;
    ++digits;
  }
  if (digits == 0 || cursor >= text.size() || text[cursor] != terminator) {
    return false;
  }
  ++cursor;
  out = value;
  return true;
}

bool parse_i64(const std::string& text, std::size_t& cursor, char terminator,
               std::int64_t& out) {
  bool negative = false;
  if (cursor < text.size() && text[cursor] == '-') {
    negative = true;
    ++cursor;
  }
  std::uint64_t magnitude = 0;
  if (!parse_u64(text, cursor, terminator, magnitude)) return false;
  out = negative ? -static_cast<std::int64_t>(magnitude)
                 : static_cast<std::int64_t>(magnitude);
  return true;
}

bool sample_before(const Sample& a, const Sample& b) {
  return a.t_ms < b.t_ms;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(TsdbConfig config)
    : config_(std::move(config)) {
  if (config_.head_span_ms <= 0) {
    throw std::invalid_argument("tsdb: head_span_ms must be positive");
  }
  if (config_.compact_fanin < 2) {
    throw std::invalid_argument("tsdb: compact_fanin must be at least 2");
  }
  seal_fault_ = fault::FaultInjector::maybe_point(config_.injector,
                                                 "tsdb.seal");
  compact_fault_ = fault::FaultInjector::maybe_point(config_.injector,
                                                     "tsdb.compact");
  read_fault_ = fault::FaultInjector::maybe_point(config_.injector,
                                                  "tsdb.read");
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    appends_ = &m.counter("tero.tsdb.appends");
    seals_ = &m.counter("tero.tsdb.seals");
    compactions_ = &m.counter("tero.tsdb.compactions");
    retention_drops_ = &m.counter("tero.tsdb.retention_drops");
    range_queries_ = &m.counter("tero.tsdb.range_queries");
    segments_gauge_ = &m.gauge("tero.tsdb.segments");
    head_samples_gauge_ = &m.gauge("tero.tsdb.head_samples");
    bytes_raw_gauge_ = &m.gauge("tero.tsdb.bytes_raw");
    bytes_compressed_gauge_ = &m.gauge("tero.tsdb.bytes_compressed");
    compact_ms_ = &m.histogram("tero.tsdb.compact_ms",
                               obs::default_duration_buckets_ms());
    read_segments_ = &m.histogram("tero.tsdb.read_segments",
                                  {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  }
  if (!config_.dir.empty()) recover();
}

TimeSeriesStore::~TimeSeriesStore() = default;

std::string TimeSeriesStore::segment_path(std::uint64_t id) const {
  return config_.dir + "/" + segment_filename(id);
}

// -- recovery -----------------------------------------------------------------

void TimeSeriesStore::recover() {
  fs::create_directories(config_.dir);
  const std::string manifest_path = config_.dir + "/manifest.tkv";
  std::set<std::uint64_t> listed;
  if (fs::exists(manifest_path)) {
    const store::KvStore kv = store::load_kv_file(manifest_path);
    const auto sealed = kv.get("sealed_until");
    const auto next = kv.get("next_id");
    if (!sealed || !next) {
      throw std::runtime_error("tsdb: manifest missing header fields");
    }
    sealed_until_ = std::stoll(*sealed);
    next_id_ = std::stoull(*next);
    for (const std::string& key : kv.keys_with_prefix("s:")) {
      const std::uint64_t id = std::stoull(key.substr(2));
      auto segment =
          std::make_shared<const Segment>(load_segment(segment_path(id)));
      if (segment->id != id) {
        throw std::runtime_error("tsdb: segment id mismatch in " +
                                 segment_path(id));
      }
      segments_.push_back(std::move(segment));
      listed.insert(id);
    }
    std::sort(segments_.begin(), segments_.end(),
              [](const auto& a, const auto& b) {
                return std::pair(a->min_t, a->id) < std::pair(b->min_t, b->id);
              });
  }
  // Segment files the manifest does not reference are leftovers from a
  // crash between the file write and the manifest save; their samples are
  // still covered by the WAL (seal) or by the still-listed inputs
  // (compaction), so deleting them is always safe.
  for (const auto& entry : fs::directory_iterator(config_.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("segment-", 0) != 0 || name.size() <= 12 ||
        name.substr(name.size() - 4) != ".tkv") {
      continue;
    }
    const std::string digits = name.substr(8, name.size() - 12);
    std::uint64_t id = 0;
    std::size_t cursor = 0;
    std::string padded = digits + "$";
    if (!parse_u64(padded, cursor, '$', id) || listed.count(id) != 0) {
      continue;
    }
    fs::remove(entry.path());
  }
  replay_wal(config_.dir + "/wal.log");
  rewrite_wal_locked();
  refresh_gauges_locked();
}

void TimeSeriesStore::replay_wal(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string content = buffer.str();
  std::size_t cursor = 0;
  while (cursor < content.size()) {
    if (content.compare(cursor, 2, "R ") != 0) break;
    cursor += 2;
    const std::size_t body_begin = cursor;
    std::uint64_t key_len = 0;
    if (!parse_u64(content, cursor, ' ', key_len)) break;
    if (content.size() - cursor < key_len + 1) break;
    const std::string key = content.substr(cursor, key_len);
    cursor += key_len;
    if (content[cursor] != ' ') break;
    ++cursor;
    std::int64_t t_ms = 0;
    std::uint64_t value_bits = 0;
    if (!parse_i64(content, cursor, ' ', t_ms)) break;
    if (!parse_u64(content, cursor, ' ', value_bits)) break;
    const std::size_t body_end = cursor - 1;
    std::uint64_t checksum = 0;
    if (!parse_u64(content, cursor, '\n', checksum)) break;
    const std::uint64_t computed = util::fnv1a64(
        {content.data() + body_begin, body_end - body_begin});
    if (computed != checksum) break;  // torn tail: discard from here on
    if (t_ms < sealed_until_) continue;  // already sealed before the crash
    auto it = head_.find(key);
    if (it == head_.end()) it = head_.emplace(key, std::vector<Sample>{}).first;
    it->second.push_back({t_ms, std::bit_cast<double>(value_bits)});
    ++head_samples_;
  }
}

void TimeSeriesStore::rewrite_wal_locked() {
  if (config_.dir.empty()) return;
  const std::string path = config_.dir + "/wal.log";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    for (const auto& [key, samples] : head_) {
      for (const Sample& sample : samples) {
        os << wal_record(key, sample.t_ms,
                         std::bit_cast<std::uint64_t>(sample.value));
      }
    }
  }
  if (wal_.is_open()) wal_.close();
  fs::rename(tmp, path);
  wal_.open(path, std::ios::binary | std::ios::app);
}

void TimeSeriesStore::wal_append_locked(std::string_view key,
                                        std::int64_t t_ms,
                                        std::uint64_t value_bits) {
  if (config_.dir.empty()) return;
  if (!wal_.is_open()) {
    wal_.open(config_.dir + "/wal.log", std::ios::binary | std::ios::app);
  }
  wal_ << wal_record(key, t_ms, value_bits) << std::flush;
}

void TimeSeriesStore::save_manifest_locked() {
  if (config_.dir.empty()) return;
  store::KvStore kv;
  kv.put("sealed_until", std::to_string(sealed_until_));
  kv.put("next_id", std::to_string(next_id_));
  for (const auto& segment : segments_) {
    kv.put("s:" + std::to_string(segment->id),
           std::to_string(segment->level));
  }
  store::save_kv_file(kv, config_.dir + "/manifest.tkv");
}

// -- writes -------------------------------------------------------------------

void TimeSeriesStore::append(std::string_view key, std::int64_t t_ms,
                             double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (t_ms < sealed_until_) {
    throw std::invalid_argument(
        "tsdb: append at " + std::to_string(t_ms) +
        " behind sealed frontier " + std::to_string(sealed_until_));
  }
  // The WAL write is the acknowledgement point: once it returns, recovery
  // replays the sample no matter where a later crash lands.
  wal_append_locked(key, t_ms, std::bit_cast<std::uint64_t>(value));
  auto it = head_.find(key);
  if (it == head_.end()) {
    it = head_.emplace(std::string(key), std::vector<Sample>{}).first;
  }
  it->second.push_back({t_ms, value});
  ++head_samples_;
  ++version_;
  if (appends_ != nullptr) appends_->add();
  if (head_samples_gauge_ != nullptr) {
    head_samples_gauge_->set(static_cast<double>(head_samples_));
  }
}

void TimeSeriesStore::seal_locked(std::int64_t boundary) {
  std::map<std::string, std::vector<Sample>> sealed;
  for (auto& [key, samples] : head_) {
    std::stable_sort(samples.begin(), samples.end(), sample_before);
    const auto split = std::lower_bound(
        samples.begin(), samples.end(), Sample{boundary, 0.0}, sample_before);
    if (split == samples.begin()) continue;
    sealed.emplace(key, std::vector<Sample>(samples.begin(), split));
    samples.erase(samples.begin(), split);
  }
  std::uint64_t sealed_count = 0;
  for (const auto& [key, samples] : sealed) sealed_count += samples.size();

  if (sealed_count > 0 && seal_fault_ != nullptr) {
    const fault::FaultDecision decision = seal_fault_->hit();
    if (decision.kind == fault::FaultKind::kCrash) {
      write_torn_file(segment_path(next_id_));
      // Put the samples back: the in-memory store object stays consistent
      // for callers that catch the crash and carry on.
      for (auto& [key, samples] : sealed) {
        auto& run = head_[key];
        run.insert(run.begin(), samples.begin(), samples.end());
      }
      throw std::runtime_error("tsdb: injected crash during seal");
    }
    if (decision.kind == fault::FaultKind::kError ||
        decision.kind == fault::FaultKind::kCorrupt) {
      for (auto& [key, samples] : sealed) {
        auto& run = head_[key];
        run.insert(run.begin(), samples.begin(), samples.end());
      }
      return;  // skipped cleanly; the next advance retries
    }
  }

  if (sealed_count > 0) {
    const std::uint64_t id = next_id_++;
    auto segment =
        std::make_shared<const Segment>(build_segment(id, 0, sealed));
    if (!config_.dir.empty()) save_segment(*segment, segment_path(id));
    segments_.push_back(std::move(segment));
    std::sort(segments_.begin(), segments_.end(),
              [](const auto& a, const auto& b) {
                return std::pair(a->min_t, a->id) < std::pair(b->min_t, b->id);
              });
    head_samples_ -= sealed_count;
    if (seals_ != nullptr) seals_->add();
  }
  sealed_until_ = boundary;
  ++version_;
}

void TimeSeriesStore::compact_locked() {
  obs::ScopedTimer timer(compact_ms_);
  struct Job {
    std::vector<std::shared_ptr<const Segment>> inputs;
    std::uint64_t out_id = 0;
    std::uint32_t out_level = 0;
  };
  while (true) {
    // Plan one round serially: every level with compact_fanin segments
    // contributes merges of its oldest fanin-sized runs. Output ids are
    // assigned here, in plan order, so segment identity is independent of
    // execution interleaving.
    std::vector<Job> jobs;
    std::map<std::uint32_t, std::vector<std::shared_ptr<const Segment>>>
        by_level;
    for (const auto& segment : segments_) {
      by_level[segment->level].push_back(segment);
    }
    for (auto& [level, group] : by_level) {
      std::sort(group.begin(), group.end(),
                [](const auto& a, const auto& b) { return a->id < b->id; });
      for (std::size_t i = 0; i + config_.compact_fanin <= group.size();
           i += config_.compact_fanin) {
        Job job;
        job.inputs.assign(group.begin() + static_cast<std::ptrdiff_t>(i),
                          group.begin() + static_cast<std::ptrdiff_t>(
                                              i + config_.compact_fanin));
        job.out_id = next_id_++;
        job.out_level = level + 1;
        jobs.push_back(std::move(job));
      }
    }
    if (jobs.empty()) break;

    // Merging is pure (inputs -> output bytes); only this fan-out runs on
    // the pool. Faults are consulted serially in plan order afterwards.
    auto outputs = util::parallel_map(
        config_.pool, jobs.size(), 1, [&](std::size_t i) {
          return std::make_shared<const Segment>(merge_segments(
              jobs[i].inputs, jobs[i].out_id, jobs[i].out_level));
        });

    bool progressed = false;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (compact_fault_ != nullptr) {
        const fault::FaultDecision decision = compact_fault_->hit();
        if (decision.kind == fault::FaultKind::kCrash) {
          write_torn_file(segment_path(jobs[i].out_id));
          throw std::runtime_error("tsdb: injected crash during compaction");
        }
        if (decision.kind == fault::FaultKind::kError ||
            decision.kind == fault::FaultKind::kCorrupt) {
          continue;  // inputs survive; replanned (and re-drawn) next advance
        }
      }
      if (!config_.dir.empty()) {
        save_segment(*outputs[i], segment_path(jobs[i].out_id));
      }
      for (const auto& input : jobs[i].inputs) {
        std::erase(segments_, input);
        doomed_files_.push_back(segment_path(input->id));
      }
      segments_.push_back(outputs[i]);
      progressed = true;
      ++version_;
      if (compactions_ != nullptr) compactions_->add();
    }
    std::sort(segments_.begin(), segments_.end(),
              [](const auto& a, const auto& b) {
                return std::pair(a->min_t, a->id) < std::pair(b->min_t, b->id);
              });
    if (!progressed) break;  // every job skipped: don't spin on the fault
  }
}

void TimeSeriesStore::retain_locked(std::int64_t frontier) {
  if (config_.retention_ms <= 0) return;
  const std::int64_t horizon = frontier - config_.retention_ms;
  for (auto it = segments_.begin(); it != segments_.end();) {
    if ((*it)->max_t < horizon) {
      doomed_files_.push_back(segment_path((*it)->id));
      it = segments_.erase(it);
      ++version_;
      if (retention_drops_ != nullptr) retention_drops_->add();
    } else {
      ++it;
    }
  }
}

void TimeSeriesStore::advance_to(std::int64_t t_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t boundary =
      (t_ms / config_.head_span_ms) * config_.head_span_ms;
  const std::int64_t sealed_before = sealed_until_;
  if (boundary > sealed_until_) seal_locked(boundary);
  compact_locked();
  retain_locked(t_ms);
  // Crash-ordering invariant: every file the manifest references was
  // written (and renamed into place) above; inputs and expired segments
  // are unlinked only after the manifest stopped referencing them.
  save_manifest_locked();
  for (const std::string& path : doomed_files_) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  doomed_files_.clear();
  if (sealed_until_ != sealed_before) rewrite_wal_locked();
  refresh_gauges_locked();
}

void TimeSeriesStore::refresh_gauges_locked() {
  if (segments_gauge_ == nullptr) return;
  std::uint64_t raw = 0;
  std::uint64_t compressed = 0;
  for (const auto& segment : segments_) {
    raw += segment->raw_bytes;
    compressed += segment->compressed_bytes;
  }
  segments_gauge_->set(static_cast<double>(segments_.size()));
  head_samples_gauge_->set(static_cast<double>(head_samples_));
  bytes_raw_gauge_->set(static_cast<double>(raw));
  bytes_compressed_gauge_->set(static_cast<double>(compressed));
}

// -- reads --------------------------------------------------------------------

std::vector<RangePoint> TimeSeriesStore::range(const RangeQuery& query) const {
  if (query.window_ms <= 0 || query.t1_ms <= query.t0_ms) {
    throw std::invalid_argument("tsdb: range needs t1 > t0 and window > 0");
  }
  const std::int64_t span = query.t1_ms - query.t0_ms;
  const std::int64_t windows = (span + query.window_ms - 1) / query.window_ms;
  if (windows > kMaxWindows) {
    throw std::invalid_argument("tsdb: range spans too many windows");
  }

  std::vector<std::shared_ptr<const Segment>> overlapping;
  std::vector<Sample> head_slice;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (read_fault_ != nullptr) {
      const fault::FaultDecision decision = read_fault_->hit();
      if (decision.kind == fault::FaultKind::kError ||
          decision.kind == fault::FaultKind::kCrash) {
        throw std::runtime_error("tsdb: injected read fault");
      }
    }
    for (const auto& segment : segments_) {
      if (segment->min_t < query.t1_ms && segment->max_t >= query.t0_ms) {
        overlapping.push_back(segment);
      }
    }
    const auto it = head_.find(query.key);
    if (it != head_.end()) {
      for (const Sample& sample : it->second) {
        if (sample.t_ms >= query.t0_ms && sample.t_ms < query.t1_ms) {
          head_slice.push_back(sample);
        }
      }
    }
    if (range_queries_ != nullptr) range_queries_->add();
  }
  if (read_segments_ != nullptr) {
    read_segments_->observe(static_cast<double>(overlapping.size()));
  }

  struct WindowAgg {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::unique_ptr<obs::QuantileSketch> sketch;
  };
  std::vector<WindowAgg> aggs(static_cast<std::size_t>(windows));
  const auto fold = [&](const Sample& sample) {
    if (sample.t_ms < query.t0_ms || sample.t_ms >= query.t1_ms) return;
    auto& agg = aggs[static_cast<std::size_t>(
        (sample.t_ms - query.t0_ms) / query.window_ms)];
    ++agg.count;
    agg.sum += sample.value;
    if (query.agg == RangeAgg::kPercentile) {
      if (!agg.sketch) agg.sketch = std::make_unique<obs::QuantileSketch>();
      agg.sketch->add(sample.value);
    }
  };
  // Stream chunk-by-chunk: one Sample at a time through the cursor, folded
  // straight into the window aggregates — no decoded series vector exists
  // at any point.
  for (const auto& segment : overlapping) {
    const SeriesChunk* chunk = segment->find(query.key);
    if (chunk == nullptr || chunk->min_t >= query.t1_ms ||
        chunk->max_t < query.t0_ms) {
      continue;
    }
    ChunkCursor cursor(chunk->bytes);
    Sample sample;
    while (cursor.next(sample)) fold(sample);
  }
  for (const Sample& sample : head_slice) fold(sample);

  std::vector<RangePoint> points;
  points.reserve(aggs.size());
  for (std::size_t w = 0; w < aggs.size(); ++w) {
    RangePoint point;
    point.t_ms = query.t0_ms + static_cast<std::int64_t>(w) * query.window_ms;
    point.count = aggs[w].count;
    if (aggs[w].count > 0) {
      switch (query.agg) {
        case RangeAgg::kCount:
          point.value = static_cast<double>(aggs[w].count);
          break;
        case RangeAgg::kMean:
          point.value = aggs[w].sum / static_cast<double>(aggs[w].count);
          break;
        case RangeAgg::kPercentile:
          point.value = aggs[w].sketch->quantile(query.pct / 100.0);
          break;
      }
    }
    points.push_back(point);
  }
  return points;
}

double TimeSeriesStore::drift(std::string_view key, std::int64_t now_ms,
                              double pct) const {
  constexpr std::int64_t kWeekMs = 7ll * 86'400'000;
  RangeQuery current;
  current.key = std::string(key);
  current.t0_ms = now_ms - kWeekMs;
  current.t1_ms = now_ms;
  current.window_ms = kWeekMs;
  current.agg = RangeAgg::kPercentile;
  current.pct = pct;
  RangeQuery previous = current;
  previous.t0_ms = now_ms - 2 * kWeekMs;
  previous.t1_ms = now_ms - kWeekMs;
  const auto a = range(current);
  const auto b = range(previous);
  return a.front().value - b.front().value;
}

// -- introspection ------------------------------------------------------------

std::uint64_t TimeSeriesStore::version() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

std::int64_t TimeSeriesStore::sealed_until() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sealed_until_;
}

TimeSeriesStore::Stats TimeSeriesStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.segments = segments_.size();
  stats.head_samples = head_samples_;
  stats.sealed_until_ms = sealed_until_;
  for (const auto& segment : segments_) {
    stats.segment_samples += segment->sample_count;
    stats.raw_bytes += segment->raw_bytes;
    stats.compressed_bytes += segment->compressed_bytes;
  }
  return stats;
}

std::vector<std::string> TimeSeriesStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::set<std::string> keys;
  for (const auto& segment : segments_) {
    for (const SeriesChunk& chunk : segment->chunks) keys.insert(chunk.key);
  }
  for (const auto& [key, samples] : head_) {
    if (!samples.empty()) keys.insert(key);
  }
  return {keys.begin(), keys.end()};
}

std::vector<Sample> TimeSeriesStore::series(std::string_view key) const {
  std::vector<std::shared_ptr<const Segment>> segments;
  std::vector<Sample> head_slice;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    segments = segments_;
    const auto it = head_.find(key);
    if (it != head_.end()) head_slice = it->second;
  }
  std::vector<Sample> out;
  for (const auto& segment : segments) {
    const SeriesChunk* chunk = segment->find(key);
    if (chunk == nullptr) continue;
    ChunkCursor cursor(chunk->bytes);
    Sample sample;
    while (cursor.next(sample)) out.push_back(sample);
  }
  std::stable_sort(head_slice.begin(), head_slice.end(), sample_before);
  out.insert(out.end(), head_slice.begin(), head_slice.end());
  return out;
}

std::uint64_t TimeSeriesStore::dataset_digest() const {
  std::uint64_t digest = 0x7465726f74736462ULL;  // "terotsdb"
  for (const std::string& key : keys()) {
    digest = util::mix_seed(digest, util::fnv1a64({key.data(), key.size()}));
    for (const Sample& sample : series(key)) {
      digest = util::mix_seed(
          digest, util::mix_seed(static_cast<std::uint64_t>(sample.t_ms),
                                 std::bit_cast<std::uint64_t>(sample.value)));
    }
  }
  return digest;
}

std::string TimeSeriesStore::segment_layout() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  bool first = true;
  for (const auto& segment : segments_) {
    if (!first) os << ',';
    os << segment->id << ':' << segment->level << ':' << segment->sample_count;
    first = false;
  }
  return os.str();
}

}  // namespace tero::tsdb
