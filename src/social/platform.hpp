#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tero::social {

/// A streamer's Twitch account, as visible through the Developer API: an
/// unstructured "description" plus (until Feb 2023) optional country-level
/// stream tags (App. D.2).
struct TwitchProfile {
  std::string username;
  std::string description;
  std::optional<std::string> country_tag;  ///< stable country-level tag
};

/// A social profile on Twitter or Steam. `location_field` is Twitter's
/// free-text location box (empty for Steam); `links` are the explicit URLs
/// the owner put on their profile (the voluntary connections §3.1 relies
/// on).
struct SocialProfile {
  std::string username;
  std::string location_field;
  std::string bio;
  std::vector<std::string> links;

  /// True if the profile carries an explicit link to the given Twitch
  /// account — the only evidence Tero accepts for associating the two (§7).
  [[nodiscard]] bool links_to_twitch(std::string_view twitch_username) const;
};

/// An in-memory username -> profile directory standing in for one
/// social-media platform's API. Lookup is by exact username
/// (case-insensitive), the only query §3.1 needs.
class SocialDirectory {
 public:
  void add(SocialProfile profile);
  [[nodiscard]] const SocialProfile* find(std::string_view username) const;
  [[nodiscard]] std::size_t size() const noexcept { return profiles_.size(); }

 private:
  std::vector<SocialProfile> profiles_;
};

}  // namespace tero::social
