#include "social/platform.hpp"

#include "util/strings.hpp"

namespace tero::social {

bool SocialProfile::links_to_twitch(std::string_view twitch_username) const {
  const std::string target = "twitch.tv/" + util::to_lower(twitch_username);
  for (const auto& link : links) {
    if (util::icontains(link, target)) return true;
  }
  return false;
}

void SocialDirectory::add(SocialProfile profile) {
  profiles_.push_back(std::move(profile));
}

const SocialProfile* SocialDirectory::find(std::string_view username) const {
  for (const auto& profile : profiles_) {
    if (util::iequals(profile.username, username)) return &profile;
  }
  return nullptr;
}

}  // namespace tero::social
