#pragma once

#include <optional>

#include "geo/geo.hpp"
#include "nlp/combine.hpp"
#include "social/platform.hpp"

namespace tero::social {

/// Where a streamer's location ultimately came from.
enum class LocationSource {
  kNone,
  kTwitchDescription,  ///< geocoded straight from the profile (0.97% in §3.1)
  kTwitter,            ///< username match + explicit backlink, then geoparse
  kSteam,              ///< same mechanism over Steam
};

struct LocatorResult {
  std::optional<geo::Location> location;
  LocationSource source = LocationSource::kNone;

  [[nodiscard]] bool located() const noexcept { return location.has_value(); }
};

/// The location module (§3.1): first geocode the Twitch description; if that
/// fails, look for a Twitter (then Steam) profile with the same username
/// that carries an explicit link back to the Twitch account, and geoparse
/// its location field / bio.
class Locator {
 public:
  Locator(const SocialDirectory& twitter, const SocialDirectory& steam);

  [[nodiscard]] LocatorResult locate(const TwitchProfile& profile) const;

  [[nodiscard]] const nlp::ToolSet& tools() const noexcept { return tools_; }

 private:
  const SocialDirectory* twitter_;
  const SocialDirectory* steam_;
  nlp::ToolSet tools_;
};

}  // namespace tero::social
