#include "social/locator.hpp"

namespace tero::social {

Locator::Locator(const SocialDirectory& twitter, const SocialDirectory& steam)
    : twitter_(&twitter), steam_(&steam) {}

LocatorResult Locator::locate(const TwitchProfile& profile) const {
  // (1) Some streamers embed their location in the Twitch description
  // ("Join us in Detroit!").
  if (auto from_description = nlp::combine_twitch_description(
          profile.description, tools_, profile.country_tag)) {
    return LocatorResult{from_description, LocationSource::kTwitchDescription};
  }

  // (2) Username-matched social profile with an explicit backlink.
  auto try_platform = [&](const SocialDirectory& directory,
                          LocationSource source) -> LocatorResult {
    const SocialProfile* social = directory.find(profile.username);
    if (social == nullptr || !social->links_to_twitch(profile.username)) {
      return LocatorResult{};
    }
    // Twitter exposes a structured-ish location field; prefer it, then the
    // bio processed like a description.
    if (!social->location_field.empty()) {
      if (auto loc = nlp::combine_twitter_location(social->location_field,
                                                   tools_)) {
        return LocatorResult{loc, source};
      }
    }
    if (!social->bio.empty()) {
      if (auto loc = nlp::combine_twitch_description(social->bio, tools_)) {
        return LocatorResult{loc, source};
      }
    }
    return LocatorResult{};
  };

  if (auto via_twitter = try_platform(*twitter_, LocationSource::kTwitter);
      via_twitter.located()) {
    return via_twitter;
  }
  if (auto via_steam = try_platform(*steam_, LocationSource::kSteam);
      via_steam.located()) {
    return via_steam;
  }
  return LocatorResult{};
}

}  // namespace tero::social
