#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/event_loop.hpp"
#include "util/rng.hpp"

namespace tero::fault {
class FaultInjector;
class FaultPoint;
}  // namespace tero::fault

namespace tero::download {

/// One streaming session on the simulated platform.
struct StreamerSession {
  std::string streamer;
  double start_time = 0.0;
  double end_time = 0.0;
};

/// Response to a HEAD request against a streamer's thumbnail URL (App. A:
/// downloaders HEAD first to learn when the next thumbnail lands).
struct HeadResponse {
  bool online = false;
  double next_thumbnail_time = 0.0;
  std::uint64_t version = 0;  ///< version currently served
};

/// Response to a GET of the current thumbnail.
struct GetResponse {
  std::uint64_t version = 0;
  double generated_at = 0.0;
  std::uint32_t size_bytes = 0;  ///< thumbnail sizes are unpredictable
};

/// Transport-level outcome of a checked CDN request. kOffline is the
/// *protocol* answer (redirect to the generic offline page); kError and
/// kSlow are injected *transport* failures — distinguishing them is what
/// lets the retry layer retry errors without mistaking them for the
/// streamer going offline.
enum class CdnStatus : std::uint8_t {
  kOk = 0,
  kOffline,  ///< genuine offline redirect; do not retry
  kError,    ///< transport error (injected); retryable
  kSlow,     ///< response delayed by retry_after_s (injected)
};

struct CheckedHead {
  CdnStatus status = CdnStatus::kOk;
  double retry_after_s = 0.0;  ///< kSlow: when the response would arrive
  HeadResponse head;
};

struct CheckedGet {
  CdnStatus status = CdnStatus::kOk;
  double retry_after_s = 0.0;  ///< kSlow: when the response would arrive
  bool corrupted = false;      ///< body delivered but damaged; discard+retry
  GetResponse response;
};

/// Simulation of Twitch's CDN + Get-Streams API surface, with the paper's
/// timing contract: one thumbnail per live streamer roughly every 5 minutes
/// (uniform jitter up to a minute), each overwriting the previous at a fixed
/// URL — a thumbnail not downloaded before the next one lands is simply
/// lost. Offline streamers' URLs redirect to a generic offline page.
class SimulatedCdn {
 public:
  SimulatedCdn(util::EventLoop& loop, util::Rng rng,
               double period_seconds = 300.0, double jitter_seconds = 60.0);

  /// Arm the "cdn.head" / "cdn.get" fault points (nullptr = off). Only the
  /// *_checked entry points consult them; the plain head()/get() surface
  /// below stays fault-free, so callers opt in to the failure model.
  void set_injector(fault::FaultInjector* injector);

  /// Register a session; thumbnail generation events are scheduled lazily.
  void add_session(const StreamerSession& session);

  // -- CDN surface -----------------------------------------------------------
  [[nodiscard]] HeadResponse head(std::string_view streamer) const;
  [[nodiscard]] std::optional<GetResponse> get(std::string_view streamer);

  /// Fault-aware surface: same protocol semantics as head()/get(), plus the
  /// injected transport outcome. An injected error/slow response does NOT
  /// consume the thumbnail (fetched_current stays false), matching a real
  /// failed transfer.
  [[nodiscard]] CheckedHead head_checked(std::string_view streamer);
  [[nodiscard]] CheckedGet get_checked(std::string_view streamer);

  // -- API surface (subject to the caller's rate limiting) --------------------
  /// Streamers currently live.
  [[nodiscard]] std::vector<std::string> api_live_streamers() const;

  // -- ground truth for evaluating the download module ------------------------
  [[nodiscard]] std::uint64_t thumbnails_generated() const noexcept {
    return generated_;
  }
  [[nodiscard]] std::uint64_t thumbnails_fetched() const noexcept {
    return fetched_;
  }
  /// Versions generated for one streamer so far.
  [[nodiscard]] std::uint64_t versions_of(std::string_view streamer) const;

 private:
  struct StreamerState {
    StreamerSession session;
    std::uint64_t version = 0;           ///< 0 = no thumbnail yet
    double current_generated_at = 0.0;
    double next_generation = 0.0;
    bool fetched_current = false;
  };

  void schedule_generation(StreamerState& state);
  /// Injected transport fault for one request, or kOk.
  [[nodiscard]] CdnStatus transport_fault(fault::FaultPoint* point,
                                          double* retry_after_s,
                                          bool* corrupted);

  util::EventLoop* loop_;
  util::Rng rng_;
  double period_;
  double jitter_;
  fault::FaultPoint* head_fault_ = nullptr;
  fault::FaultPoint* get_fault_ = nullptr;
  std::map<std::string, StreamerState, std::less<>> streamers_;
  std::uint64_t generated_ = 0;
  std::uint64_t fetched_ = 0;
};

}  // namespace tero::download
