#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/event_loop.hpp"
#include "util/rng.hpp"

namespace tero::download {

/// One streaming session on the simulated platform.
struct StreamerSession {
  std::string streamer;
  double start_time = 0.0;
  double end_time = 0.0;
};

/// Response to a HEAD request against a streamer's thumbnail URL (App. A:
/// downloaders HEAD first to learn when the next thumbnail lands).
struct HeadResponse {
  bool online = false;
  double next_thumbnail_time = 0.0;
  std::uint64_t version = 0;  ///< version currently served
};

/// Response to a GET of the current thumbnail.
struct GetResponse {
  std::uint64_t version = 0;
  double generated_at = 0.0;
  std::uint32_t size_bytes = 0;  ///< thumbnail sizes are unpredictable
};

/// Simulation of Twitch's CDN + Get-Streams API surface, with the paper's
/// timing contract: one thumbnail per live streamer roughly every 5 minutes
/// (uniform jitter up to a minute), each overwriting the previous at a fixed
/// URL — a thumbnail not downloaded before the next one lands is simply
/// lost. Offline streamers' URLs redirect to a generic offline page.
class SimulatedCdn {
 public:
  SimulatedCdn(util::EventLoop& loop, util::Rng rng,
               double period_seconds = 300.0, double jitter_seconds = 60.0);

  /// Register a session; thumbnail generation events are scheduled lazily.
  void add_session(const StreamerSession& session);

  // -- CDN surface -----------------------------------------------------------
  [[nodiscard]] HeadResponse head(std::string_view streamer) const;
  [[nodiscard]] std::optional<GetResponse> get(std::string_view streamer);

  // -- API surface (subject to the caller's rate limiting) --------------------
  /// Streamers currently live.
  [[nodiscard]] std::vector<std::string> api_live_streamers() const;

  // -- ground truth for evaluating the download module ------------------------
  [[nodiscard]] std::uint64_t thumbnails_generated() const noexcept {
    return generated_;
  }
  [[nodiscard]] std::uint64_t thumbnails_fetched() const noexcept {
    return fetched_;
  }
  /// Versions generated for one streamer so far.
  [[nodiscard]] std::uint64_t versions_of(std::string_view streamer) const;

 private:
  struct StreamerState {
    StreamerSession session;
    std::uint64_t version = 0;           ///< 0 = no thumbnail yet
    double current_generated_at = 0.0;
    double next_generation = 0.0;
    bool fetched_current = false;
  };

  void schedule_generation(StreamerState& state);

  util::EventLoop* loop_;
  util::Rng rng_;
  double period_;
  double jitter_;
  std::map<std::string, StreamerState, std::less<>> streamers_;
  std::uint64_t generated_ = 0;
  std::uint64_t fetched_ = 0;
};

}  // namespace tero::download
