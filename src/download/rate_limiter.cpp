#include "download/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>

namespace tero::download {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {
  if (rate <= 0.0 || burst <= 0.0) {
    throw std::invalid_argument("TokenBucket: rate and burst must be > 0");
  }
}

void TokenBucket::refill(double now) {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_refill_));
  last_refill_ = now;
}

bool TokenBucket::try_acquire(double now, double tokens) {
  refill(now);
  if (tokens_ + 1e-12 < tokens) {
    ++throttled_;
    return false;
  }
  tokens_ -= tokens;
  ++acquired_;
  return true;
}

double TokenBucket::next_available(double now, double tokens) const {
  double current = tokens_;
  if (now > last_refill_) {
    current = std::min(burst_, current + rate_ * (now - last_refill_));
  }
  if (current >= tokens) return now;
  return now + (tokens - current) / rate_;
}

double TokenBucket::available(double now) const {
  if (now <= last_refill_) return tokens_;
  return std::min(burst_, tokens_ + rate_ * (now - last_refill_));
}

}  // namespace tero::download
