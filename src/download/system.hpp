#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "download/cdn.hpp"
#include "download/rate_limiter.hpp"
#include "fault/policy.hpp"
#include "store/kv_store.hpp"
#include "util/event_loop.hpp"
#include "util/rng.hpp"

namespace tero::obs {
class Counter;
class MetricsRegistry;
class TraceRecorder;
}  // namespace tero::obs

namespace tero::download {

struct DownloadConfig {
  int num_downloaders = 4;
  double api_poll_interval = 60.0;  ///< coordinator polls the streams API
  double api_rate = 0.5;            ///< API tokens per second
  double api_burst = 5.0;
  double downloader_tick = 5.0;     ///< downloader wake-up period
  double idle_horizon = 15.0;       ///< "idle" = nothing due this soon
  double fetch_delay = 2.0;         ///< fetch this long after a thumbnail lands
  /// Optional observability sinks (not owned; may be null). Counters:
  /// tero.download.{api_polls,api_throttled,head_requests,get_requests,
  /// downloads,offline_signals,adoptions,crashes,recovered_streamers,
  /// retries,corrupted,slow_responses,kv_write_retries,dropped_streamers}.
  /// Crash/recovery additionally drop instant markers on the trace.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Optional fault injection (not owned; may be null). The system arms the
  /// CDN's "cdn.head"/"cdn.get" points via set_injector and retries
  /// injected transport failures under `retry`; a streamer whose retries
  /// are exhausted is signalled offline so the coordinator re-discovers it
  /// on a later poll — never silently orphaned.
  fault::FaultInjector* injector = nullptr;
  fault::RetryPolicy retry;
};

/// One successful thumbnail download.
struct DownloadRecord {
  std::string streamer;
  double time = 0.0;
  std::uint64_t version = 0;
  int downloader = 0;
};

/// The download module of App. A: one coordinator that discovers
/// newly-live streamers through the (rate-limited) API and hands their URLs
/// to N lean downloaders via the key-value store; downloaders HEAD to learn
/// when the next thumbnail lands, GET it, signal offline streamers back, and
/// steal new work whenever idle. All recoverable state lives in the KV
/// store, so a crash loses nothing but in-flight timers.
class DownloadSystem {
 public:
  DownloadSystem(util::EventLoop& loop, SimulatedCdn& cdn,
                 store::KvStore& kv, DownloadConfig config, util::Rng rng);

  /// Schedule the coordinator and downloader loops; run the EventLoop to
  /// actually simulate.
  void start();

  /// Drop all in-memory state (the crash) and rebuild from the KV store
  /// (the recovery, App. B "Failure recovery"). Timers keep firing.
  void crash_and_recover();

  [[nodiscard]] const std::vector<DownloadRecord>& downloads() const noexcept {
    return downloads_;
  }

  /// Consecutive-download gaps per streamer — the Fig. 13 distribution.
  [[nodiscard]] std::vector<double> interarrival_times() const;

  /// How many streamers each downloader ended up serving.
  [[nodiscard]] std::vector<int> downloader_assignments() const;

  [[nodiscard]] std::uint64_t offline_signals() const noexcept {
    return offline_signals_;
  }
  [[nodiscard]] int crashes() const noexcept { return crashes_; }

 private:
  struct DownloaderState {
    /// streamer -> time the next thumbnail should be fetched.
    std::map<std::string, double> next_fetch;
    /// streamer -> consecutive failed attempts on the current thumbnail.
    std::map<std::string, std::uint32_t> attempts;
    int adopted_total = 0;
  };

  void coordinator_poll();
  void downloader_tick(int id);
  void fetch_one(int id, const std::string& streamer);
  void adopt_if_idle(int id);
  /// Schedule a retry per config_.retry, or give the streamer up (signal
  /// offline → coordinator re-discovers it if it is still live).
  void retry_or_drop(DownloaderState& state, const std::string& streamer);
  /// KV write with a bounded immediate-retry loop (injected put failures).
  /// False = the write was lost even after retrying; callers must leave the
  /// system in a state the coordinator can repair on a later poll.
  bool durable_put(const std::string& key, const std::string& value);
  bool durable_push(const std::string& list_key, const std::string& value);
  /// Resolve a counter once; null when no registry (one branch per event).
  [[nodiscard]] obs::Counter* counter(const char* name) const;

  util::EventLoop* loop_;
  SimulatedCdn* cdn_;
  store::KvStore* kv_;
  DownloadConfig config_;
  util::Rng rng_;
  TokenBucket api_bucket_;

  std::set<std::string> tracked_;  ///< coordinator's in-memory view
  std::vector<DownloaderState> downloaders_;
  std::vector<DownloadRecord> downloads_;
  std::uint64_t offline_signals_ = 0;
  int crashes_ = 0;
  bool started_ = false;

  // Resolved once at construction; null when config_.metrics is null.
  obs::Counter* c_api_polls_ = nullptr;
  obs::Counter* c_api_throttled_ = nullptr;
  obs::Counter* c_head_ = nullptr;
  obs::Counter* c_get_ = nullptr;
  obs::Counter* c_downloads_ = nullptr;
  obs::Counter* c_offline_ = nullptr;
  obs::Counter* c_adoptions_ = nullptr;
  obs::Counter* c_crashes_ = nullptr;
  obs::Counter* c_recovered_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_corrupted_ = nullptr;
  obs::Counter* c_slow_ = nullptr;
  obs::Counter* c_kv_retries_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
};

}  // namespace tero::download
