#include "download/system.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tero::download {

namespace {
constexpr const char* kPendingList = "urls:pending";
constexpr const char* kOfflineList = "signals:offline";
const std::string kTrackedPrefix = "tracked:";
}  // namespace

obs::Counter* DownloadSystem::counter(const char* name) const {
  if (config_.metrics == nullptr) return nullptr;
  return &config_.metrics->counter(std::string("tero.download.") + name);
}

DownloadSystem::DownloadSystem(util::EventLoop& loop, SimulatedCdn& cdn,
                               store::KvStore& kv, DownloadConfig config,
                               util::Rng rng)
    : loop_(&loop),
      cdn_(&cdn),
      kv_(&kv),
      config_(config),
      rng_(rng),
      api_bucket_(config.api_rate, config.api_burst),
      downloaders_(static_cast<std::size_t>(config.num_downloaders)) {
  c_api_polls_ = counter("api_polls");
  c_api_throttled_ = counter("api_throttled");
  c_head_ = counter("head_requests");
  c_get_ = counter("get_requests");
  c_downloads_ = counter("downloads");
  c_offline_ = counter("offline_signals");
  c_adoptions_ = counter("adoptions");
  c_crashes_ = counter("crashes");
  c_recovered_ = counter("recovered_streamers");
  c_retries_ = counter("retries");
  c_corrupted_ = counter("corrupted");
  c_slow_ = counter("slow_responses");
  c_kv_retries_ = counter("kv_write_retries");
  c_dropped_ = counter("dropped_streamers");
  if (config_.injector != nullptr) {
    cdn_->set_injector(config_.injector);
    kv_->set_fault_point(&config_.injector->point("kv.put"));
  }
}

bool DownloadSystem::durable_put(const std::string& key,
                                 const std::string& value) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (kv_->put(key, value)) return true;
    if (c_kv_retries_ != nullptr) c_kv_retries_->add();
    if (!config_.retry.should_retry(attempt)) return false;
  }
}

bool DownloadSystem::durable_push(const std::string& list_key,
                                  const std::string& value) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (kv_->push_back(list_key, value)) return true;
    if (c_kv_retries_ != nullptr) c_kv_retries_->add();
    if (!config_.retry.should_retry(attempt)) return false;
  }
}

void DownloadSystem::start() {
  if (started_) return;
  started_ = true;
  loop_->schedule_after(0.0, [this] { coordinator_poll(); });
  for (int id = 0; id < config_.num_downloaders; ++id) {
    // Stagger the downloader ticks so they do not hammer the store together.
    loop_->schedule_after(rng_.uniform(0.0, config_.downloader_tick),
                          [this, id] { downloader_tick(id); });
  }
}

void DownloadSystem::coordinator_poll() {
  // Respect the API quota: if the bucket is dry, come back when it refills.
  if (!api_bucket_.try_acquire(loop_->now())) {
    if (c_api_throttled_ != nullptr) c_api_throttled_->add();
    const double retry = api_bucket_.next_available(loop_->now());
    loop_->schedule_at(retry, [this] { coordinator_poll(); });
    return;
  }
  if (c_api_polls_ != nullptr) c_api_polls_->add();

  // Newly-live streamers go to the pending queue (and to durable state).
  // Queue first, marker second: a lost pending push leaves the streamer
  // untracked so this loop retries it next poll, while a lost marker only
  // costs crash-recovery coverage the next poll also repairs.
  for (const auto& streamer : cdn_->api_live_streamers()) {
    if (tracked_.contains(streamer)) continue;
    if (!durable_push(kPendingList, streamer)) continue;
    tracked_.insert(streamer);
    durable_put(kTrackedPrefix + streamer, "1");
  }

  // Process offline signals written by the downloaders.
  while (auto streamer = kv_->pop_front(kOfflineList)) {
    tracked_.erase(*streamer);
    kv_->erase(kTrackedPrefix + *streamer);
    ++offline_signals_;
    if (c_offline_ != nullptr) c_offline_->add();
  }

  loop_->schedule_after(config_.api_poll_interval,
                        [this] { coordinator_poll(); });
}

void DownloadSystem::downloader_tick(int id) {
  auto& state = downloaders_[static_cast<std::size_t>(id)];

  // Fetch everything due.
  std::vector<std::string> due;
  for (const auto& [streamer, when] : state.next_fetch) {
    if (when <= loop_->now()) due.push_back(streamer);
  }
  for (const auto& streamer : due) fetch_one(id, streamer);

  adopt_if_idle(id);

  loop_->schedule_after(config_.downloader_tick,
                        [this, id] { downloader_tick(id); });
}

void DownloadSystem::adopt_if_idle(int id) {
  auto& state = downloaders_[static_cast<std::size_t>(id)];
  // Idle = no thumbnail due within the horizon (App. A load balancing:
  // "a downloader takes on a new streamer whenever it becomes idle").
  double earliest = loop_->now() + config_.idle_horizon + 1.0;
  for (const auto& [streamer, when] : state.next_fetch) {
    earliest = std::min(earliest, when);
  }
  if (earliest <= loop_->now() + config_.idle_horizon) return;

  if (auto streamer = kv_->pop_front(kPendingList)) {
    if (c_head_ != nullptr) c_head_->add();
    const CheckedHead checked = cdn_->head_checked(*streamer);
    if (checked.status == CdnStatus::kError ||
        checked.status == CdnStatus::kSlow) {
      // Transport trouble at adoption time: hand the URL back and let a
      // later (re-)adoption retry it.
      if (c_retries_ != nullptr) c_retries_->add();
      if (checked.status == CdnStatus::kSlow && c_slow_ != nullptr) {
        c_slow_->add();
      }
      if (!durable_push(kPendingList, *streamer)) {
        // Hand-back also failed: drop the tracking state outright so the
        // next coordinator poll re-discovers the streamer (never orphaned).
        tracked_.erase(*streamer);
        kv_->erase(kTrackedPrefix + *streamer);
      }
      return;
    }
    if (!checked.head.online) {
      durable_push(kOfflineList, *streamer);
      return;
    }
    state.next_fetch[*streamer] =
        std::max(loop_->now(), checked.head.next_thumbnail_time) +
        config_.fetch_delay;
    ++state.adopted_total;
    if (c_adoptions_ != nullptr) c_adoptions_->add();
  }
}

void DownloadSystem::retry_or_drop(DownloaderState& state,
                                   const std::string& streamer) {
  const std::uint32_t attempt = state.attempts[streamer]++;
  if (!config_.retry.should_retry(attempt)) {
    // Retries exhausted: give the streamer up and signal the coordinator.
    // If it is still live, a later poll re-discovers it — degraded (some
    // thumbnails lost), never orphaned.
    state.next_fetch.erase(streamer);
    state.attempts.erase(streamer);
    if (c_dropped_ != nullptr) c_dropped_->add();
    if (!durable_push(kOfflineList, streamer)) {
      tracked_.erase(streamer);
      kv_->erase(kTrackedPrefix + streamer);
    }
    return;
  }
  if (c_retries_ != nullptr) c_retries_->add();
  const std::uint64_t jitter_seed =
      config_.injector != nullptr ? config_.injector->plan().seed : 0;
  state.next_fetch[streamer] =
      loop_->now() +
      config_.retry.backoff_s(attempt + 1, jitter_seed,
                              util::fnv1a64({streamer.data(),
                                             streamer.size()}));
}

void DownloadSystem::fetch_one(int id, const std::string& streamer) {
  auto& state = downloaders_[static_cast<std::size_t>(id)];
  if (c_get_ != nullptr) c_get_->add();
  const CheckedGet checked = cdn_->get_checked(streamer);
  if (checked.status == CdnStatus::kSlow) {
    // Stalled transfer: try again when the response would have arrived
    // (the thumbnail may be overwritten meanwhile — lost, as in reality).
    if (c_slow_ != nullptr) c_slow_->add();
    state.next_fetch[streamer] = loop_->now() + checked.retry_after_s;
    return;
  }
  if (checked.status == CdnStatus::kError) {
    retry_or_drop(state, streamer);
    return;
  }
  if (checked.status == CdnStatus::kOffline) {
    // Offline redirect: drop the URL, signal the coordinator (App. A).
    state.next_fetch.erase(streamer);
    state.attempts.erase(streamer);
    if (!durable_push(kOfflineList, streamer)) {
      tracked_.erase(streamer);
      kv_->erase(kTrackedPrefix + streamer);
    }
    return;
  }
  if (checked.corrupted) {
    // Damaged bytes: discard and re-fetch under the retry policy.
    if (c_corrupted_ != nullptr) c_corrupted_->add();
    retry_or_drop(state, streamer);
    return;
  }
  state.attempts.erase(streamer);
  if (c_downloads_ != nullptr) c_downloads_->add();
  downloads_.push_back(
      DownloadRecord{streamer, loop_->now(), checked.response.version, id});
  durable_put("seen:" + streamer, std::to_string(checked.response.version));

  // HEAD for the next thumbnail's arrival time.
  if (c_head_ != nullptr) c_head_->add();
  const CheckedHead head = cdn_->head_checked(streamer);
  if (head.status == CdnStatus::kError || head.status == CdnStatus::kSlow) {
    // Could not learn the next arrival; poll again after a backoff (the
    // next GET doubles as the probe).
    retry_or_drop(state, streamer);
    return;
  }
  if (!head.head.online) {
    state.next_fetch.erase(streamer);
    state.attempts.erase(streamer);
    if (!durable_push(kOfflineList, streamer)) {
      tracked_.erase(streamer);
      kv_->erase(kTrackedPrefix + streamer);
    }
    return;
  }
  state.next_fetch[streamer] =
      std::max(loop_->now(), head.head.next_thumbnail_time) +
      config_.fetch_delay;
}

void DownloadSystem::crash_and_recover() {
  ++crashes_;
  if (c_crashes_ != nullptr) c_crashes_->add();
  if (config_.trace != nullptr) {
    config_.trace->add_instant("download.crash", "download");
  }
  // Crash: all in-memory assignment state vanishes.
  tracked_.clear();
  for (auto& downloader : downloaders_) {
    downloader.next_fetch.clear();
    downloader.attempts.clear();
  }

  // Recovery: the coordinator rebuilds its view from the KV store and
  // re-queues every tracked streamer for (re-)adoption. A lost re-queue
  // write drops the marker too, so the next poll re-discovers the streamer
  // instead of leaving it tracked-but-unassigned.
  for (const auto& key : kv_->keys_with_prefix(kTrackedPrefix)) {
    const std::string streamer = key.substr(kTrackedPrefix.size());
    if (!durable_push(kPendingList, streamer)) {
      kv_->erase(key);
      continue;
    }
    tracked_.insert(streamer);
    if (c_recovered_ != nullptr) c_recovered_->add();
  }
  if (config_.trace != nullptr) {
    config_.trace->add_instant("download.recovered", "download");
  }
}

std::vector<double> DownloadSystem::interarrival_times() const {
  std::map<std::string, std::vector<double>> per_streamer;
  for (const auto& record : downloads_) {
    per_streamer[record.streamer].push_back(record.time);
  }
  std::vector<double> gaps;
  for (auto& [streamer, times] : per_streamer) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
  }
  return gaps;
}

std::vector<int> DownloadSystem::downloader_assignments() const {
  std::vector<int> counts;
  counts.reserve(downloaders_.size());
  for (const auto& downloader : downloaders_) {
    counts.push_back(downloader.adopted_total);
  }
  return counts;
}

}  // namespace tero::download
