#pragma once

#include <cstdint>

namespace tero::download {

/// Token-bucket rate limiter modelling Twitch's API quota (App. A: "the
/// coordinator issues these queries in a way that respects the rate limit").
class TokenBucket {
 public:
  /// `rate` tokens refill per second up to `burst` capacity; the bucket
  /// starts full.
  TokenBucket(double rate, double burst);

  /// Consume `tokens` if available at time `now`; returns success.
  bool try_acquire(double now, double tokens = 1.0);

  /// Earliest time at which `tokens` will be available (>= now).
  [[nodiscard]] double next_available(double now, double tokens = 1.0) const;

  [[nodiscard]] double available(double now) const;

  /// Observational accounting (exported into the metrics registry by the
  /// download system): granted vs rejected try_acquire calls.
  [[nodiscard]] std::uint64_t acquired() const noexcept { return acquired_; }
  [[nodiscard]] std::uint64_t throttled() const noexcept {
    return throttled_;
  }

 private:
  void refill(double now);

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
  std::uint64_t acquired_ = 0;
  std::uint64_t throttled_ = 0;
};

}  // namespace tero::download
