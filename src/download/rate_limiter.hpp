#pragma once

namespace tero::download {

/// Token-bucket rate limiter modelling Twitch's API quota (App. A: "the
/// coordinator issues these queries in a way that respects the rate limit").
class TokenBucket {
 public:
  /// `rate` tokens refill per second up to `burst` capacity; the bucket
  /// starts full.
  TokenBucket(double rate, double burst);

  /// Consume `tokens` if available at time `now`; returns success.
  bool try_acquire(double now, double tokens = 1.0);

  /// Earliest time at which `tokens` will be available (>= now).
  [[nodiscard]] double next_available(double now, double tokens = 1.0) const;

  [[nodiscard]] double available(double now) const;

 private:
  void refill(double now);

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
};

}  // namespace tero::download
