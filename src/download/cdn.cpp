#include "download/cdn.hpp"

namespace tero::download {

SimulatedCdn::SimulatedCdn(util::EventLoop& loop, util::Rng rng,
                           double period_seconds, double jitter_seconds)
    : loop_(&loop),
      rng_(rng),
      period_(period_seconds),
      jitter_(jitter_seconds) {}

void SimulatedCdn::add_session(const StreamerSession& session) {
  StreamerState state;
  state.session = session;
  // First thumbnail appears shortly after the stream starts.
  state.next_generation =
      session.start_time + rng_.uniform(5.0, 30.0);
  auto [it, inserted] = streamers_.insert_or_assign(session.streamer, state);
  schedule_generation(it->second);
}

void SimulatedCdn::schedule_generation(StreamerState& state) {
  if (state.next_generation > state.session.end_time) return;
  const std::string name = state.session.streamer;
  loop_->schedule_at(state.next_generation, [this, name] {
    auto it = streamers_.find(name);
    if (it == streamers_.end()) return;
    StreamerState& s = it->second;
    ++s.version;
    ++generated_;
    s.current_generated_at = loop_->now();
    s.fetched_current = false;
    // Next thumbnail in ~5 minutes with up-to-a-minute variation (§2.1).
    s.next_generation = loop_->now() + period_ + rng_.uniform(0.0, jitter_);
    schedule_generation(s);
  });
}

HeadResponse SimulatedCdn::head(std::string_view streamer) const {
  const auto it = streamers_.find(streamer);
  if (it == streamers_.end()) return HeadResponse{};
  const StreamerState& state = it->second;
  const double now = loop_->now();
  HeadResponse response;
  response.online =
      now >= state.session.start_time && now < state.session.end_time;
  response.next_thumbnail_time = state.next_generation;
  response.version = state.version;
  return response;
}

std::optional<GetResponse> SimulatedCdn::get(std::string_view streamer) {
  auto it = streamers_.find(streamer);
  if (it == streamers_.end()) return std::nullopt;
  StreamerState& state = it->second;
  const double now = loop_->now();
  if (now < state.session.start_time || now >= state.session.end_time ||
      state.version == 0) {
    return std::nullopt;  // redirects to the generic offline URL
  }
  GetResponse response;
  response.version = state.version;
  response.generated_at = state.current_generated_at;
  // Thumbnail size is "so unpredictable" (App. A) that load balancing by
  // size is pointless: heavy-tailed sizes.
  response.size_bytes =
      static_cast<std::uint32_t>(rng_.pareto(20'000.0, 1.6));
  if (!state.fetched_current) {
    state.fetched_current = true;
    ++fetched_;
  }
  return response;
}

std::vector<std::string> SimulatedCdn::api_live_streamers() const {
  std::vector<std::string> live;
  const double now = loop_->now();
  for (const auto& [name, state] : streamers_) {
    if (now >= state.session.start_time && now < state.session.end_time) {
      live.push_back(name);
    }
  }
  return live;
}

std::uint64_t SimulatedCdn::versions_of(std::string_view streamer) const {
  const auto it = streamers_.find(streamer);
  return it == streamers_.end() ? 0 : it->second.version;
}

}  // namespace tero::download
