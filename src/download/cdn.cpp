#include "download/cdn.hpp"

#include "fault/fault.hpp"

namespace tero::download {

namespace {
/// Seed salt for per-(streamer, version) thumbnail sizes. Sizes are drawn
/// through Rng::indexed instead of the generation rng_ so that *client*
/// behavior (which GETs happen, and when) can never perturb the CDN's
/// thumbnail schedule — the property the crash-time sweep tests rely on to
/// compare crashed runs against the crash-free baseline.
constexpr std::uint64_t kSizeSalt = 0x7e20cd000002ULL;
}  // namespace

SimulatedCdn::SimulatedCdn(util::EventLoop& loop, util::Rng rng,
                           double period_seconds, double jitter_seconds)
    : loop_(&loop),
      rng_(rng),
      period_(period_seconds),
      jitter_(jitter_seconds) {}

void SimulatedCdn::add_session(const StreamerSession& session) {
  StreamerState state;
  state.session = session;
  // First thumbnail appears shortly after the stream starts.
  state.next_generation =
      session.start_time + rng_.uniform(5.0, 30.0);
  auto [it, inserted] = streamers_.insert_or_assign(session.streamer, state);
  schedule_generation(it->second);
}

void SimulatedCdn::schedule_generation(StreamerState& state) {
  if (state.next_generation > state.session.end_time) return;
  const std::string name = state.session.streamer;
  loop_->schedule_at(state.next_generation, [this, name] {
    auto it = streamers_.find(name);
    if (it == streamers_.end()) return;
    StreamerState& s = it->second;
    ++s.version;
    ++generated_;
    s.current_generated_at = loop_->now();
    s.fetched_current = false;
    // Next thumbnail in ~5 minutes with up-to-a-minute variation (§2.1).
    s.next_generation = loop_->now() + period_ + rng_.uniform(0.0, jitter_);
    schedule_generation(s);
  });
}

HeadResponse SimulatedCdn::head(std::string_view streamer) const {
  const auto it = streamers_.find(streamer);
  if (it == streamers_.end()) return HeadResponse{};
  const StreamerState& state = it->second;
  const double now = loop_->now();
  HeadResponse response;
  response.online =
      now >= state.session.start_time && now < state.session.end_time;
  response.next_thumbnail_time = state.next_generation;
  response.version = state.version;
  return response;
}

std::optional<GetResponse> SimulatedCdn::get(std::string_view streamer) {
  auto it = streamers_.find(streamer);
  if (it == streamers_.end()) return std::nullopt;
  StreamerState& state = it->second;
  const double now = loop_->now();
  if (now < state.session.start_time || now >= state.session.end_time ||
      state.version == 0) {
    return std::nullopt;  // redirects to the generic offline URL
  }
  GetResponse response;
  response.version = state.version;
  response.generated_at = state.current_generated_at;
  // Thumbnail size is "so unpredictable" (App. A) that load balancing by
  // size is pointless: heavy-tailed sizes. Drawn per (streamer, version) so
  // repeat GETs see the same bytes and fetch behavior cannot perturb the
  // generation schedule (see kSizeSalt).
  response.size_bytes = static_cast<std::uint32_t>(
      util::Rng::indexed(
          util::mix_seed(kSizeSalt,
                         util::fnv1a64({streamer.data(), streamer.size()})),
          state.version)
          .pareto(20'000.0, 1.6));
  if (!state.fetched_current) {
    state.fetched_current = true;
    ++fetched_;
  }
  return response;
}

void SimulatedCdn::set_injector(fault::FaultInjector* injector) {
  head_fault_ = fault::FaultInjector::maybe_point(injector, "cdn.head");
  get_fault_ = fault::FaultInjector::maybe_point(injector, "cdn.get");
}

CdnStatus SimulatedCdn::transport_fault(fault::FaultPoint* point,
                                        double* retry_after_s,
                                        bool* corrupted) {
  if (point == nullptr) return CdnStatus::kOk;
  const fault::FaultDecision decision = point->hit();
  switch (decision.kind) {
    case fault::FaultKind::kNone:
      return CdnStatus::kOk;
    case fault::FaultKind::kLatency:
      *retry_after_s = decision.delay_s;
      return CdnStatus::kSlow;
    case fault::FaultKind::kCorrupt:
      if (corrupted != nullptr) {
        *corrupted = true;
        return CdnStatus::kOk;  // body arrives, but damaged
      }
      return CdnStatus::kError;  // corrupt headers = failed request
    case fault::FaultKind::kError:
    case fault::FaultKind::kCrash:
      return CdnStatus::kError;
  }
  return CdnStatus::kOk;
}

CheckedHead SimulatedCdn::head_checked(std::string_view streamer) {
  CheckedHead checked;
  checked.status =
      transport_fault(head_fault_, &checked.retry_after_s, nullptr);
  if (checked.status == CdnStatus::kError) return checked;
  checked.head = head(streamer);
  return checked;
}

CheckedGet SimulatedCdn::get_checked(std::string_view streamer) {
  CheckedGet checked;
  checked.status =
      transport_fault(get_fault_, &checked.retry_after_s, &checked.corrupted);
  if (checked.status == CdnStatus::kError ||
      checked.status == CdnStatus::kSlow) {
    // Failed/stalled transfer: the thumbnail is not consumed.
    return checked;
  }
  auto response = get(streamer);
  if (!response.has_value()) {
    checked.status = CdnStatus::kOffline;
    checked.corrupted = false;
    return checked;
  }
  checked.response = *response;
  return checked;
}

std::vector<std::string> SimulatedCdn::api_live_streamers() const {
  std::vector<std::string> live;
  const double now = loop_->now();
  for (const auto& [name, state] : streamers_) {
    if (now >= state.session.start_time && now < state.session.end_time) {
      live.push_back(name);
    }
  }
  return live;
}

std::uint64_t SimulatedCdn::versions_of(std::string_view streamer) const {
  const auto it = streamers_.find(streamer);
  return it == streamers_.end() ? 0 : it->second.version;
}

}  // namespace tero::download
