#include "tero/export.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace tero::core {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_unescape(const std::string& field) {
  if (field.size() < 2 || field.front() != '"') return field;
  std::string out;
  for (std::size_t i = 1; i + 1 < field.size(); ++i) {
    if (field[i] == '"' && i + 2 < field.size() && field[i + 1] == '"') {
      out += '"';
      ++i;
    } else {
      out += field[i];
    }
  }
  return out;
}

namespace {

/// Split one CSV line honouring quoted fields.
std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        current += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

}  // namespace

std::size_t export_measurements(const Dataset& dataset, std::ostream& os,
                                obs::MetricsRegistry* metrics) {
  std::size_t rows = 0;
  os << "pseudonym,game,city,region,country,time_s,latency_ms\n";
  for (const auto& entry : dataset.entries) {
    for (const auto& stream : entry.clean.retained) {
      for (const auto& point : stream.points) {
        os << csv_escape(entry.pseudonym) << ',' << csv_escape(entry.game)
           << ',' << csv_escape(entry.location.city) << ','
           << csv_escape(entry.location.region) << ','
           << csv_escape(entry.location.country) << ',' << point.time_s
           << ',' << point.latency_ms << '\n';
        ++rows;
      }
    }
  }
  if (metrics != nullptr) {
    metrics->counter("tero.funnel.exported_measurements").add(rows);
  }
  return rows;
}

std::size_t export_aggregates(const Dataset& dataset, std::ostream& os,
                              obs::MetricsRegistry* metrics) {
  std::size_t rows = 0;
  os << "city,region,country,game,streamers,p5,p25,p50,p75,p95,"
        "server_city,corrected_km\n";
  for (const auto& aggregate : dataset.aggregates) {
    if (!aggregate.box.has_value()) continue;
    const auto& box = *aggregate.box;
    os << csv_escape(aggregate.location.city) << ','
       << csv_escape(aggregate.location.region) << ','
       << csv_escape(aggregate.location.country) << ','
       << csv_escape(aggregate.game) << ',' << aggregate.streamers << ','
       << box.p5 << ',' << box.p25 << ',' << box.p50 << ',' << box.p75
       << ',' << box.p95 << ',' << csv_escape(aggregate.server_city) << ','
       << aggregate.avg_corrected_distance_km << '\n';
    ++rows;
  }
  if (metrics != nullptr) {
    metrics->counter("tero.funnel.exported_aggregates").add(rows);
  }
  return rows;
}

std::vector<analysis::Stream> import_measurements(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("import_measurements: empty input");
  }
  if (line.rfind("pseudonym,", 0) != 0) {
    throw std::invalid_argument("import_measurements: bad header");
  }
  // Group rows into streams per {pseudonym, game}; a gap larger than 30
  // minutes starts a new stream (the offline boundary, §3.3.1).
  std::map<std::pair<std::string, std::string>, std::vector<analysis::Stream>>
      grouped;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = csv_split(line);
    if (fields.size() != 7) {
      throw std::invalid_argument("import_measurements: bad row at line " +
                                  std::to_string(line_no));
    }
    analysis::Measurement measurement;
    measurement.time_s = std::strtod(fields[5].c_str(), nullptr);
    measurement.latency_ms =
        static_cast<int>(util::parse_uint_or(fields[6], -1));
    if (measurement.latency_ms < 0) {
      throw std::invalid_argument("import_measurements: bad latency at line " +
                                  std::to_string(line_no));
    }
    auto& streams = grouped[{fields[0], fields[1]}];
    constexpr double kStreamGap = 1800.0;
    if (streams.empty() ||
        (!streams.back().points.empty() &&
         measurement.time_s - streams.back().points.back().time_s >
             kStreamGap)) {
      analysis::Stream stream;
      stream.streamer = fields[0];
      stream.game = fields[1];
      streams.push_back(std::move(stream));
    }
    streams.back().points.push_back(measurement);
  }
  std::vector<analysis::Stream> all;
  for (auto& [key, streams] : grouped) {
    for (auto& stream : streams) all.push_back(std::move(stream));
  }
  return all;
}

}  // namespace tero::core
