#include "tero/pipeline.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <tuple>

#include "analysis/outlier_rejection.hpp"
#include "fault/fault.hpp"
#include "nlp/combine.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_metrics.hpp"
#include "obs/trace.hpp"
#include "store/consistent_hash.hpp"
#include "util/strings.hpp"

namespace tero::core {

geo::Location truncate_location(const geo::Location& location,
                                geo::Granularity granularity) {
  switch (granularity) {
    case geo::Granularity::kCountry:
      return geo::Location{"", "", location.country};
    case geo::Granularity::kRegion:
      return geo::Location{"", location.region, location.country};
    case geo::Granularity::kCity:
      return location;
  }
  return location;
}

const LocationGameAggregate* Dataset::find_aggregate(
    const geo::Location& location, std::string_view game) const {
  for (const auto& aggregate : aggregates) {
    if (aggregate.location == location &&
        util::iequals(aggregate.game, game)) {
      return &aggregate;
    }
  }
  return nullptr;
}

namespace {

/// Stage salts for the seed-splitting scheme: every parallel task draws from
/// util::Rng::indexed(mix_seed(seed, salt), task_index), so no draw sequence
/// ever crosses a task boundary and results are bit-identical for any thread
/// count.
constexpr std::uint64_t kExtractionSalt = 0x7e20cafe0001ULL;

/// Resolve a stage's wall-time histogram; null when observability is off,
/// so every ScopedTimer downstream is a single branch.
obs::Histogram* stage_histogram(obs::MetricsRegistry* metrics,
                                const char* stage) {
  if (metrics == nullptr) return nullptr;
  return &metrics->histogram(std::string("tero.stage.") + stage + ".ms");
}

obs::Histogram* task_histogram(obs::MetricsRegistry* metrics,
                               const char* stage) {
  if (metrics == nullptr) return nullptr;
  return &metrics->histogram(std::string("tero.task.") + stage + ".ms");
}

}  // namespace

LocatedWorld locate_streamers(const synth::World& world) {
  LocatedWorld out;
  const social::Locator locator(world.twitter(), world.steam());
  out.located.resize(world.streamers().size());
  out.sources.assign(world.streamers().size(), social::LocationSource::kNone);
  out.located_after.resize(world.streamers().size());
  for (std::size_t i = 0; i < world.streamers().size(); ++i) {
    const auto result = locator.locate(world.streamers()[i].twitch);
    out.located[i] = result.location;
    out.sources[i] = result.source;
    if (result.located()) ++out.streamers_located;
  }

  // §3.1.1: multiple locations per streamer. A relocated streamer advertises
  // the new location; Tero re-geoparses the updated profile and keeps each
  // {streamer, location} tuple as a distinct end-point. Epoch 0 = before the
  // move, epoch 1 = after.
  for (std::size_t i = 0; i < world.streamers().size(); ++i) {
    const auto& streamer = world.streamers()[i];
    if (!streamer.relocation.has_value() || !out.located[i].has_value()) {
      continue;
    }
    out.located_after[i] = nlp::combine_twitter_location(
        streamer.relocation->new_twitter_location, locator.tools());
  }
  return out;
}

int stream_epoch(const synth::World& world, const LocatedWorld& located,
                 const synth::TrueStream& stream) {
  const auto& streamer = world.streamers()[stream.streamer_index];
  if (!streamer.relocation.has_value() ||
      !located.located_after[stream.streamer_index].has_value() ||
      stream.points.empty()) {
    return 0;
  }
  const double move_time = streamer.relocation->day * 86400.0;
  return stream.points.front().t >= move_time ? 1 : 0;
}

store::Pseudonymizer make_pseudonymizer(std::uint64_t config_seed) {
  return store::Pseudonymizer(config_seed ^ 0x7e40deadbeefULL);
}

std::uint64_t extraction_stream_seed(std::uint64_t config_seed,
                                     std::uint64_t stream_index) {
  return util::mix_seed(util::mix_seed(config_seed, kExtractionSalt),
                        stream_index);
}

ThumbnailExtraction extract_thumbnail(const ExtractionChannel& channel,
                                      const ocr::GameUiSpec& spec,
                                      const synth::TruePoint& point,
                                      double p_latency_visible,
                                      std::uint64_t stream_seed,
                                      std::uint64_t point_index) {
  ThumbnailExtraction out;
  util::Rng rng = util::Rng::indexed(stream_seed, point_index);
  if (!rng.bernoulli(p_latency_visible)) return out;
  out.visible = true;
  out.measurement = channel.extract(point, spec, rng);
  return out;
}

bool extraction_quarantined(const fault::FaultPoint* point,
                            std::uint64_t streamer_index,
                            const fault::RetryPolicy& retry) {
  if (point == nullptr) return false;
  const std::uint32_t last_attempt =
      retry.max_attempts == 0 ? 0 : retry.max_attempts - 1;
  // Quarantined iff the fault outlasts every retry: transient rules (fewer
  // failing attempts than the budget) return kNone here, so those streamers
  // extract normally and the dataset matches the fault-free run exactly.
  return static_cast<bool>(point->decide(streamer_index, last_attempt));
}

std::size_t count_quarantined_streamers(
    const LocatedWorld& located, std::span<const synth::TrueStream> streams,
    const fault::FaultPoint* point, const fault::RetryPolicy& retry) {
  if (point == nullptr) return 0;
  std::set<std::size_t> quarantined;
  for (const auto& stream : streams) {
    if (!located.located[stream.streamer_index].has_value()) continue;
    if (extraction_quarantined(point, stream.streamer_index, retry)) {
      quarantined.insert(stream.streamer_index);
    }
  }
  return quarantined.size();
}

namespace {

/// Running FNV/mix digest over heterogeneous fields. Doubles go in by bit
/// pattern (bit_cast), strings by content hash — no formatting, no rounding.
class Digest {
 public:
  void u64(std::uint64_t v) noexcept { h_ = util::mix_seed(h_, v); }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    u64(util::fnv1a64({s.data(), s.size()}));
  }
  void clusters(const std::vector<analysis::LatencyCluster>& cs) {
    u64(cs.size());
    for (const auto& c : cs) {
      u64(static_cast<std::uint64_t>(c.min_ms));
      u64(static_cast<std::uint64_t>(c.max_ms));
      f64(c.weight);
      u64(c.point_count);
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0x7e20da7a5e7ULL;  // arbitrary non-zero start
};

}  // namespace

std::uint64_t dataset_digest(const Dataset& dataset) {
  Digest d;
  d.u64(dataset.funnel.streamers_total);
  d.u64(dataset.funnel.streamers_located);
  d.u64(dataset.funnel.quarantined);
  d.u64(dataset.funnel.thumbnails);
  d.u64(dataset.funnel.visible);
  d.u64(dataset.funnel.ocr_ok);
  d.u64(dataset.funnel.retained);
  d.u64(dataset.funnel.clustered);

  d.u64(dataset.entries.size());
  for (const auto& entry : dataset.entries) {
    d.str(entry.pseudonym);
    d.str(entry.game);
    d.str(entry.location.to_string());
    d.str(entry.true_location.to_string());
    d.u64(static_cast<std::uint64_t>(entry.location_source));
    d.u64((entry.is_static ? 1u : 0u) | (entry.high_quality ? 2u : 0u) |
          (entry.location_outlier ? 4u : 0u) |
          (entry.possible_location_change ? 8u : 0u));
    const auto& clean = entry.clean;
    d.u64(clean.points_in);
    d.u64(clean.points_retained);
    d.u64(clean.points_corrected);
    d.u64(clean.points_discarded);
    d.u64(clean.spike_points);
    d.u64(clean.glitch_segments);
    d.u64(clean.retained.size());
    for (const auto& stream : clean.retained) {
      d.str(stream.streamer);
      d.str(stream.game);
      d.u64(stream.points.size());
      for (const auto& point : stream.points) {
        d.f64(point.time_s);
        d.u64(static_cast<std::uint64_t>(point.latency_ms));
        d.u64(point.alternative_ms
                  ? static_cast<std::uint64_t>(*point.alternative_ms) + 1
                  : 0);
      }
    }
    d.u64(clean.spikes.size());
    for (const auto& spike : clean.spikes) {
      d.f64(spike.start_s);
      d.f64(spike.end_s);
      d.u64(static_cast<std::uint64_t>(spike.peak_latency_ms));
      d.u64(static_cast<std::uint64_t>(spike.baseline_ms));
    }
    d.clusters(entry.clusters);
    d.u64(entry.endpoint_changes.size());
    for (const auto& change : entry.endpoint_changes) {
      d.f64(change.time_s);
      d.u64(change.same_stream ? 1 : 0);
      d.u64(static_cast<std::uint64_t>(change.from_cluster + 1));
      d.u64(static_cast<std::uint64_t>(change.to_cluster + 1));
    }
  }

  d.u64(dataset.aggregates.size());
  for (const auto& agg : dataset.aggregates) {
    d.str(agg.location.to_string());
    d.str(agg.game);
    d.u64(agg.streamers);
    d.clusters(agg.clusters);
    d.u64(agg.distribution.size());
    for (const double v : agg.distribution) d.f64(v);
    if (agg.box) {
      d.f64(agg.box->p5);
      d.f64(agg.box->p25);
      d.f64(agg.box->p50);
      d.f64(agg.box->p75);
      d.f64(agg.box->p95);
    } else {
      d.u64(0);
    }
    d.f64(agg.avg_corrected_distance_km);
    d.str(agg.server_city);
    d.u64(agg.shared.anomalies.size());
    d.f64(agg.shared.spike_probability);
    d.u64(agg.shared.sufficient_data ? 1 : 0);
  }
  return d.value();
}

std::optional<StreamerGameEntry> analyze_streamer_group(
    const synth::World& world, const LocatedWorld& located,
    const store::Pseudonymizer& pseudonymizer, std::size_t streamer_index,
    std::string game, int epoch, std::vector<analysis::Stream> streams,
    const analysis::AnalysisConfig& config) {
  const auto& streamer = world.streamers()[streamer_index];
  StreamerGameEntry entry;
  entry.pseudonym = pseudonymizer.pseudonym(streamer.id);
  entry.game = std::move(game);
  if (epoch == 1) {
    entry.location = *located.located_after[streamer_index];
    entry.true_location = streamer.relocation->new_location;
  } else {
    entry.location = *located.located[streamer_index];
    entry.true_location = streamer.home_location;
  }
  entry.location_source = located.sources[streamer_index];
  entry.clean = analysis::clean_streamer_game(std::move(streams), config);
  if (entry.clean.discarded_entirely) return std::nullopt;
  entry.clusters = analysis::cluster_streamer(entry.clean, config);
  entry.is_static = analysis::is_static_streamer(entry.clusters, config);
  entry.high_quality = entry.clean.spike_fraction() <= config.max_spikes;
  return entry;
}

Pipeline::Pipeline(TeroConfig config) : config_(std::move(config)) {
  util::simd::apply_mode(config_.simd);
  channel_ = config_.use_full_ocr
                 ? make_ocr_channel(config_.thumbnails)
                 : make_noise_channel(config_.noise);
  if (util::ThreadPool::resolve(config_.threads) > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
}

Dataset Pipeline::run(const synth::World& world,
                      std::span<const synth::TrueStream> streams) {
  obs::MetricsRegistry* const metrics = config_.metrics;
  obs::TraceRecorder* const trace = config_.trace;
  const obs::ScopedSpan run_span(trace, "pipeline.run");
  const obs::ScopedTimer run_timer(stage_histogram(metrics, "run"));

  Dataset dataset;
  const store::Pseudonymizer pseudonymizer = make_pseudonymizer(config_.seed);

  // ---- Location module (§3.1) ------------------------------------------------
  LocatedWorld located;
  {
    const obs::ScopedSpan stage_span(trace, "stage.location", "stage");
    const obs::ScopedTimer stage_timer(stage_histogram(metrics, "location"));
    located = locate_streamers(world);
    dataset.funnel.streamers_total = world.streamers().size();
    dataset.funnel.streamers_located = located.streamers_located;
  }
  dataset.funnel.quarantined = count_quarantined_streamers(
      located, streams,
      fault::FaultInjector::maybe_point(config_.injector, "extract.stream"),
      config_.extraction_retry);

  // ---- Image-processing module (§3.2) ----------------------------------------
  // Hot stage (a): per-stream thumbnail rendering + OCR / noise-channel
  // extraction, parallel over ground-truth streams. Thumbnail p of stream i
  // draws from Rng::indexed(extraction_stream_seed(seed, i), p) — a pure
  // function of (seed, i, p) shared with the streaming path — and task i
  // writes into slot i, so the result does not depend on scheduling.
  // Grouping and counter accumulation stay serial.
  struct ExtractedStream {
    analysis::Stream stream;
    std::size_t thumbnails = 0;
    std::size_t visible = 0;
    std::size_t extracted = 0;
  };
  const ExtractionChannel& channel = *channel_;
  obs::Histogram* const extraction_task_ms =
      task_histogram(metrics, "extraction");
  const fault::FaultPoint* const extract_fault =
      fault::FaultInjector::maybe_point(config_.injector, "extract.stream");
  std::vector<ExtractedStream> extracted;
  {
    const obs::ScopedSpan stage_span(trace, "stage.extraction", "stage");
    const obs::ScopedTimer stage_timer(
        stage_histogram(metrics, "extraction"));
    extracted = util::parallel_map(
        pool_.get(), streams.size(), 1, [&](std::size_t i) {
          const obs::ScopedSpan task_span(trace, "extraction.task", "task");
          const obs::ScopedTimer task_timer(extraction_task_ms);
          ExtractedStream out;
          const auto& true_stream = streams[i];
          if (!located.located[true_stream.streamer_index].has_value()) {
            return out;
          }
          const std::uint64_t stream_seed =
              extraction_stream_seed(config_.seed, i);
          if (extraction_quarantined(extract_fault,
                                     true_stream.streamer_index,
                                     config_.extraction_retry)) {
            // Quarantined: thumbnails were downloaded, extraction keeps
            // faulting — count the volume, extract nothing.
            out.thumbnails = true_stream.points.size();
            return out;
          }
          const auto& spec = ocr::ui_spec_for(true_stream.game);
          out.stream.streamer = pseudonymizer.pseudonym(
              world.streamers()[true_stream.streamer_index].id);
          out.stream.game = true_stream.game;
          for (std::size_t p = 0; p < true_stream.points.size(); ++p) {
            ++out.thumbnails;
            auto result = extract_thumbnail(channel, spec,
                                            true_stream.points[p],
                                            config_.p_latency_visible,
                                            stream_seed, p);
            if (!result.visible) continue;
            ++out.visible;
            if (result.measurement.has_value()) {
              out.stream.points.push_back(*result.measurement);
              ++out.extracted;
            }
          }
          return out;
        });
  }

  // One analysis::Stream per ground-truth stream, grouped by
  // {streamer, game, location-epoch} in stream order.
  std::map<std::tuple<std::size_t, std::string, int>,
           std::vector<analysis::Stream>>
      grouped;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    dataset.funnel.thumbnails += extracted[i].thumbnails;
    dataset.funnel.visible += extracted[i].visible;
    dataset.funnel.ocr_ok += extracted[i].extracted;
    if (extracted[i].stream.points.empty()) continue;
    grouped[{streams[i].streamer_index, streams[i].game,
             stream_epoch(world, located, streams[i])}]
        .push_back(std::move(extracted[i].stream));
  }

  // ---- Data-analysis module (§3.3) --------------------------------------------
  // Hot stage (b): per-{streamer, game, epoch} clean -> segment -> cluster,
  // parallel over groups. The map's iteration order fixes the task order;
  // each task owns its group's streams and its output slot.
  std::vector<std::map<std::tuple<std::size_t, std::string, int>,
                       std::vector<analysis::Stream>>::iterator>
      group_iters;
  group_iters.reserve(grouped.size());
  for (auto it = grouped.begin(); it != grouped.end(); ++it) {
    group_iters.push_back(it);
  }
  obs::Histogram* const analysis_task_ms = task_histogram(metrics, "analysis");
  std::vector<std::optional<StreamerGameEntry>> analyzed;
  {
    const obs::ScopedSpan stage_span(trace, "stage.analysis", "stage");
    const obs::ScopedTimer stage_timer(stage_histogram(metrics, "analysis"));
    analyzed = util::parallel_map(
        pool_.get(), group_iters.size(), 1,
        [&](std::size_t i) -> std::optional<StreamerGameEntry> {
          const obs::ScopedSpan task_span(trace, "analysis.task", "task");
          const obs::ScopedTimer task_timer(analysis_task_ms);
          const auto& key = group_iters[i]->first;
          const auto& [streamer_index, game, epoch] = key;
          return analyze_streamer_group(world, located, pseudonymizer,
                                        streamer_index, game, epoch,
                                        std::move(group_iters[i]->second),
                                        config_.analysis);
        });
  }
  for (auto& entry : analyzed) {
    if (!entry.has_value()) continue;
    dataset.funnel.retained += entry->clean.points_retained;
    dataset.entries.push_back(std::move(*entry));
  }

  dataset.aggregates = aggregate_entries(dataset.entries, config_.analysis,
                                         config_.aggregate_granularity,
                                         config_.reject_location_outliers,
                                         pool_.get(), metrics, trace);
  for (const auto& aggregate : dataset.aggregates) {
    dataset.funnel.clustered += aggregate.distribution.size();
  }

  if (metrics != nullptr) {
    dataset.funnel.record(*metrics);
    // Pool counters accumulate for the pool's lifetime; export this run's
    // delta. A serial pipeline (no pool) still exports the zero-valued
    // counters so sinks always contain the full key set.
    obs::record_pool_stats(
        pool_ != nullptr ? pool_->stats() : util::ThreadPool::Stats{},
        *metrics, "tero.pool", &pool_stats_baseline_);
  }
  if (config_.on_dataset) {
    const obs::ScopedSpan publish_span(trace, "stage.publish", "stage");
    const obs::ScopedTimer publish_timer(stage_histogram(metrics, "publish"));
    config_.on_dataset(dataset);
  }
  return dataset;
}

std::vector<LocationGameAggregate> aggregate_entries(
    std::vector<StreamerGameEntry>& entries,
    const analysis::AnalysisConfig& config, geo::Granularity granularity,
    bool reject_location_outliers, util::ThreadPool* pool,
    obs::MetricsRegistry* metrics, obs::TraceRecorder* trace) {
  const obs::ScopedSpan stage_span(trace, "stage.aggregation", "stage");
  const obs::ScopedTimer stage_timer(stage_histogram(metrics, "aggregation"));

  // Group entry indices by {truncated location, game}.
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      groups;
  std::map<std::pair<std::string, std::string>, geo::Location> keys;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!entries[i].high_quality) continue;  // MaxSpikes filter (§3.3.3)
    const geo::Location truncated =
        truncate_location(entries[i].location, granularity);
    const auto key = std::make_pair(truncated.to_string(), entries[i].game);
    groups[key].push_back(i);
    keys.emplace(key, truncated);
  }

  // Resolving these singletons *before* the parallel region keeps their
  // one-time construction out of the workers.
  const auto& catalog = geo::GameCatalog::builtin();
  const auto& gazetteer = geo::Gazetteer::world();

  // Hot stage (c): per-{location, game} aggregation, parallel over groups in
  // map order. The index groups partition `entries`, so each task mutates a
  // disjoint set of entries (endpoint changes, outlier flags) and writes its
  // aggregate into slot g — no cross-task state.
  std::vector<const std::pair<const std::pair<std::string, std::string>,
                              std::vector<std::size_t>>*>
      group_ptrs;
  group_ptrs.reserve(groups.size());
  for (const auto& group : groups) group_ptrs.push_back(&group);

  obs::Histogram* const aggregation_task_ms =
      task_histogram(metrics, "aggregation");
  return util::parallel_map(pool, group_ptrs.size(), 1, [&](std::size_t g) {
    const obs::ScopedSpan task_span(trace, "aggregation.task", "task");
    const obs::ScopedTimer task_timer(aggregation_task_ms);
    const auto& [key, indices] = *group_ptrs[g];
    LocationGameAggregate aggregate;
    aggregate.location = keys.at(key);
    aggregate.game = key.second;

    // Step 3: location-level clusters from static streamers.
    std::vector<std::vector<analysis::LatencyCluster>> static_clusters;
    for (std::size_t i : indices) {
      if (entries[i].is_static) static_clusters.push_back(entries[i].clusters);
    }
    aggregate.clusters = analysis::cluster_location(static_clusters, config);

    // Step 4: end-point changes for mobile streamers.
    for (std::size_t i : indices) {
      auto& entry = entries[i];
      if (entry.is_static) continue;
      entry.endpoint_changes = analysis::detect_endpoint_changes(
          entry.clean, aggregate.clusters, config);
      entry.possible_location_change = std::any_of(
          entry.endpoint_changes.begin(), entry.endpoint_changes.end(),
          [](const analysis::EndpointChange& change) {
            return !change.same_stream;
          });
    }

    // Optional §3.1.2 step: flag streamers whose latency is inconsistent
    // with the location's clusters (likely mislocated).
    if (reject_location_outliers) {
      for (std::size_t i : indices) {
        entries[i].location_outlier =
            !analysis::streamer_consistent_with_location(
                entries[i].clusters, aggregate.clusters, config);
      }
    }

    // Latency distribution (§3.3.3 final step).
    analysis::DistributionBuilder builder;
    for (std::size_t i : indices) {
      const auto& entry = entries[i];
      if (entry.location_outlier) continue;
      if (entry.is_static) {
        builder.add_static(entry.clean);
      } else if (!entry.possible_location_change) {
        builder.add_mobile(entry.clean, entry.clusters, config);
      }
    }
    aggregate.distribution = builder.values();
    aggregate.streamers = builder.streamers();
    if (!aggregate.distribution.empty()) {
      aggregate.box = stats::boxplot(aggregate.distribution);
    }

    // Shared anomalies over all high-quality streamers of the aggregate.
    std::vector<analysis::StreamerActivity> activities;
    for (std::size_t i : indices) {
      analysis::StreamerActivity activity;
      activity.streamer = entries[i].pseudonym;
      for (const auto& stream : entries[i].clean.retained) {
        for (const auto& point : stream.points) {
          activity.measurement_times.push_back(point.time_s);
        }
      }
      activity.spikes = entries[i].clean.spikes;
      activities.push_back(std::move(activity));
    }
    aggregate.shared = analysis::find_shared_anomalies(activities, config);

    // Corrected distance to the primary server (for distance
    // normalization and the figure annotations).
    const geo::Game* game_info = catalog.find(aggregate.game);
    if (game_info != nullptr && game_info->servers_known()) {
      const geo::GameServer* server =
          catalog.primary_server(*game_info, aggregate.location);
      if (server != nullptr) {
        aggregate.server_city = server->city;
        double total = 0.0;
        std::size_t counted = 0;
        for (std::size_t i : indices) {
          const geo::Place* place = gazetteer.resolve(entries[i].location);
          if (place == nullptr) continue;
          total += geo::corrected_distance_km(
              place->center, place->mean_radius_km, server->center);
          ++counted;
        }
        if (counted > 0) {
          aggregate.avg_corrected_distance_km =
              total / static_cast<double>(counted);
        }
      }
    }
    return aggregate;
  });
}

}  // namespace tero::core
