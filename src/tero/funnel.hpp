#pragma once

#include <cstddef>

#include "obs/metrics.hpp"

namespace tero::core {

/// Stage funnel: how many measurements survive each pipeline stage, with
/// Fig. 7 / Table 4 semantics. One struct shared by the runtime Dataset,
/// the metrics registry, and the exporters, so the three accountings cannot
/// drift apart (ExportStats used to be a separate, independently-counted
/// struct).
///
///   thumbnails --(latency on screen, §3.2)--> visible
///   visible ----(OCR extracted, Table 4)----> ocr_ok
///   ocr_ok -----(QoE cleaning, §3.3)--------> retained
///   retained ---(MaxSpikes + aggregation)---> clustered
struct Funnel {
  std::size_t streamers_total = 0;
  std::size_t streamers_located = 0;
  /// Located streamers whose extraction repeatedly faulted under an active
  /// FaultPlan ("extract.stream" point): their thumbnails are downloaded
  /// but never extracted, so they fall out of the funnel here — explicitly
  /// accounted, never silently missing (DESIGN.md §11).
  std::size_t quarantined = 0;
  std::size_t thumbnails = 0;  ///< thumbnails rendered/downloaded
  std::size_t visible = 0;     ///< latency number visible on screen
  std::size_t ocr_ok = 0;      ///< measurement extracted by the OCR channel
  std::size_t retained = 0;    ///< survived per-streamer cleaning
  std::size_t clustered = 0;   ///< landed in a {location, game} distribution

  /// Bump the registry's tero.funnel.* counters by this funnel's values.
  void record(obs::MetricsRegistry& registry) const {
    registry.counter("tero.funnel.streamers_total").add(streamers_total);
    registry.counter("tero.funnel.streamers_located").add(streamers_located);
    registry.counter("tero.funnel.quarantined").add(quarantined);
    registry.counter("tero.funnel.thumbnails").add(thumbnails);
    registry.counter("tero.funnel.visible").add(visible);
    registry.counter("tero.funnel.ocr_ok").add(ocr_ok);
    registry.counter("tero.funnel.retained").add(retained);
    registry.counter("tero.funnel.clustered").add(clustered);
  }
};

}  // namespace tero::core
