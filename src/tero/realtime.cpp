#include "tero/realtime.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace tero::core {

namespace {
/// Second-scale buckets for the spike-finalization lag (the config default
/// is 3600 s, so the interesting range is minutes to hours).
std::vector<double> finalize_lag_buckets() {
  return {60.0,    300.0,   900.0,   1800.0,  3600.0,
          7200.0,  14400.0, 43200.0, 86400.0};
}
}  // namespace

RealtimeAnalyzer::RealtimeAnalyzer(Config config)
    : config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    c_measurements_ = &config_.metrics->counter("tero.realtime.measurements");
    c_spike_alerts_ = &config_.metrics->counter("tero.realtime.spike_alerts");
    c_shared_alerts_ =
        &config_.metrics->counter("tero.realtime.shared_alerts");
    h_finalize_lag_ = &config_.metrics->histogram(
        "tero.realtime.finalize_lag_s", finalize_lag_buckets());
  }
}

void RealtimeAnalyzer::register_streamer(const std::string& pseudonym,
                                         const geo::Location& location) {
  locations_[pseudonym] = location;
}

std::string RealtimeAnalyzer::aggregate_key(const geo::Location& location,
                                            const std::string& game) const {
  return location.to_string() + "|" + game;
}

analysis::StreamerActivity& RealtimeAnalyzer::activity_for(
    AggregateState& aggregate, const std::string& pseudonym) {
  const auto it = aggregate.activity_index.find(pseudonym);
  if (it != aggregate.activity_index.end()) {
    return aggregate.activities[it->second];
  }
  aggregate.activity_index.emplace(pseudonym, aggregate.activities.size());
  analysis::StreamerActivity activity;
  activity.streamer = pseudonym;
  aggregate.activities.push_back(std::move(activity));
  return aggregate.activities.back();
}

RealtimeAnalyzer::Output RealtimeAnalyzer::ingest(
    const std::string& pseudonym, const std::string& game,
    const analysis::Measurement& measurement) {
  Output output;
  ++ingested_;
  if (c_measurements_ != nullptr) c_measurements_->add();

  const auto location_it = locations_.find(pseudonym);
  const geo::Location location = location_it != locations_.end()
                                     ? location_it->second
                                     : geo::Location{};
  auto& state = streamers_[{pseudonym, game}];
  state.location = location;
  state.buffer.push_back(measurement);
  while (state.buffer.size() > config_.buffer_points) {
    state.buffer.pop_front();
  }
  const double now = measurement.time_s;

  auto& aggregate = aggregates_[aggregate_key(location, game)];
  auto& activity = activity_for(aggregate, pseudonym);
  activity.measurement_times.push_back(now);

  // Re-run the QoE classification on the working buffer and finalize what
  // is old enough that its closing context exists.
  analysis::Stream window;
  window.streamer = pseudonym;
  window.game = game;
  window.points.assign(state.buffer.begin(), state.buffer.end());
  const auto clean = analysis::clean_stream(std::move(window),
                                            config_.analysis);
  for (const auto& spike : clean.spikes) {
    if (spike.end_s > now - config_.finalize_lag_s) continue;  // not final
    if (spike.end_s <= state.last_emitted_spike_end) continue;  // emitted
    state.last_emitted_spike_end = spike.end_s;
    ++spikes_emitted_;
    if (c_spike_alerts_ != nullptr) c_spike_alerts_->add();
    if (h_finalize_lag_ != nullptr) h_finalize_lag_->observe(now - spike.end_s);
    output.spikes.push_back(SpikeAlert{pseudonym, game, spike});
    activity.spikes.push_back(spike);

    // A new finalized spike may complete a shared anomaly.
    const auto shared =
        analysis::find_shared_anomalies(aggregate.activities,
                                        config_.analysis);
    for (const auto& anomaly : shared.anomalies) {
      if (anomaly.end_s <= aggregate.last_shared_alert_end) continue;
      aggregate.last_shared_alert_end = anomaly.end_s;
      if (c_shared_alerts_ != nullptr) c_shared_alerts_->add();
      output.shared.push_back(SharedAlert{location, game, anomaly});
    }
  }

  // Points that scroll out of the working buffer graduate into the
  // aggregate's distribution if the buffer analysis retained them.
  if (state.buffer.size() == config_.buffer_points) {
    const double oldest = state.buffer.front().time_s;
    for (const auto& retained : clean.retained) {
      for (const auto& point : retained.points) {
        if (point.time_s == oldest) {
          aggregate.retained_values.push_back(point.latency_ms);
        }
      }
    }
  }
  return output;
}

std::vector<double> RealtimeAnalyzer::distribution(
    const geo::Location& location, const std::string& game) const {
  const auto it = aggregates_.find(aggregate_key(location, game));
  if (it == aggregates_.end()) return {};
  return it->second.retained_values;
}

}  // namespace tero::core
