#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/anomalies.hpp"
#include "analysis/clusters.hpp"
#include "analysis/distributions.hpp"
#include "analysis/shared.hpp"
#include "analysis/types.hpp"
#include "fault/policy.hpp"
#include "geo/servers.hpp"
#include "social/locator.hpp"
#include "stats/descriptive.hpp"
#include "store/consistent_hash.hpp"
#include "synth/sessions.hpp"
#include "synth/world.hpp"
#include "tero/channel.hpp"
#include "tero/funnel.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace tero::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace tero::obs

namespace tero::fault {
class FaultInjector;
class FaultPoint;
}  // namespace tero::fault

namespace tero::core {

struct Dataset;

/// Top-level configuration: Table 1 parameters plus pipeline choices.
struct TeroConfig {
  analysis::AnalysisConfig analysis;
  /// Fraction of thumbnails whose latency is visible on screen at all.
  double p_latency_visible = 0.35;
  /// true: rasterize thumbnails and run full OCR (slow, exact code path);
  /// false: calibrated noise channel (fast, same error behaviour).
  bool use_full_ocr = false;
  synth::ThumbnailConfig thumbnails;
  NoiseChannelConfig noise;
  /// Granularity at which {location, game} aggregates are keyed.
  geo::Granularity aggregate_granularity = geo::Granularity::kRegion;
  /// §3.1.2's proposed-but-not-taken error-reduction step: drop streamers
  /// whose latency falls outside their location's clusters. Off by
  /// default, like the paper; bench_ablations measures the effect.
  bool reject_location_outliers = false;
  std::uint64_t seed = 1234;
  /// Worker threads for the parallel pipeline stages (extraction,
  /// per-streamer analysis, per-{location, game} aggregation).
  /// 0 = hardware_concurrency, 1 = fully serial. The output is bit-identical
  /// for every value: all randomness is derived from (seed, task index) and
  /// results land in slots indexed by task id (see DESIGN.md, "Concurrency
  /// model").
  std::size_t threads = 0;
  /// SIMD dispatch for the extraction fast path (image kernels + OCR match
  /// loops). kAuto follows the `TERO_SIMD` environment knob (off/0/false
  /// disables); kOn/kOff force the vectorized/scalar path. Both paths are
  /// bit-identical by contract (DESIGN.md §12) — this knob exists so the
  /// determinism gates can prove it, not because outputs differ.
  util::simd::Mode simd = util::simd::Mode::kAuto;
  /// Optional observability sinks (not owned; may be null — the default).
  /// Observational only: the pipeline writes stage timings, per-task latency
  /// histograms, funnel counters, and trace spans, but never reads them, so
  /// output stays bit-identical with or without sinks (DESIGN.md §8).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Optional fault injection (not owned; may be null — the default).
  /// Arms the "extract.stream" point, keyed by streamer index, which
  /// simulates repeatedly-faulting extraction: a streamer whose faults
  /// outlast `extraction_retry.max_attempts` is quarantined — thumbnails
  /// counted, nothing extracted, tero.funnel.quarantined bumped — instead
  /// of aborting the run. Keyed decisions are pure functions of (plan seed,
  /// point, streamer index), so output stays bit-identical for any thread
  /// count, and transient faults (fewer failing attempts than the retry
  /// budget) leave the dataset bit-identical to a fault-free run.
  fault::FaultInjector* injector = nullptr;
  fault::RetryPolicy extraction_retry;
  /// Publish hook, called with the finished dataset at the very end of
  /// run() (after funnel/pool accounting, before run() returns). The
  /// serving layer attaches serve::publish_hook() here so every pipeline
  /// run atomically publishes a fresh snapshot epoch (DESIGN.md §9). The
  /// callback must not mutate the dataset; like the sinks it is
  /// observational and never changes pipeline output.
  std::function<void(const Dataset&)> on_dataset;
};

/// Everything Tero derived for one {streamer, game} pair.
struct StreamerGameEntry {
  std::string pseudonym;
  std::string game;
  geo::Location location;           ///< where Tero believes they are
  geo::Location true_location;      ///< ground truth (evaluation only)
  social::LocationSource location_source = social::LocationSource::kNone;
  analysis::CleanResult clean;
  std::vector<analysis::LatencyCluster> clusters;
  bool is_static = false;
  bool high_quality = false;
  /// Set by aggregation when §3.1.2 rejection is enabled and this
  /// streamer's latency is inconsistent with the location's clusters.
  bool location_outlier = false;
  /// End-point changes against the location clusters (filled during
  /// aggregation).
  std::vector<analysis::EndpointChange> endpoint_changes;
  bool possible_location_change = false;
};

/// The {location, game} product the paper's figures are drawn from.
struct LocationGameAggregate {
  geo::Location location;  ///< truncated to the aggregate granularity
  std::string game;
  std::size_t streamers = 0;
  std::vector<analysis::LatencyCluster> clusters;
  std::vector<double> distribution;
  std::optional<stats::Boxplot> box;
  double avg_corrected_distance_km = -1.0;
  std::string server_city;
  analysis::SharedAnomalyResult shared;
};

struct Dataset {
  std::vector<StreamerGameEntry> entries;
  std::vector<LocationGameAggregate> aggregates;

  /// Volume counters (§5.1-style accounting): thumbnails -> visible ->
  /// ocr_ok -> retained -> clustered, plus streamer totals.
  Funnel funnel;

  [[nodiscard]] const LocationGameAggregate* find_aggregate(
      const geo::Location& location, std::string_view game) const;
};

/// The end-to-end system: location module -> image processing ->
/// data analysis, over a synthetic world and its ground-truth streams.
class Pipeline {
 public:
  explicit Pipeline(TeroConfig config);

  [[nodiscard]] Dataset run(const synth::World& world,
                            std::span<const synth::TrueStream> streams);

  [[nodiscard]] const TeroConfig& config() const noexcept { return config_; }

 private:
  TeroConfig config_;
  std::unique_ptr<ExtractionChannel> channel_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads resolve to 1
  /// Snapshot at the end of the previous run(), so repeated runs export
  /// per-run deltas of the pool's cumulative counters.
  util::ThreadPool::Stats pool_stats_baseline_;
};

/// Output of the location module (§3.1) over a whole world: Tero's belief
/// about each streamer's location, the social source it came from, and the
/// re-geoparsed post-relocation location (§3.1.1). Shared by the batch
/// pipeline and the streaming ingestion path so both resolve locations
/// identically.
struct LocatedWorld {
  std::vector<std::optional<geo::Location>> located;
  std::vector<social::LocationSource> sources;
  std::vector<std::optional<geo::Location>> located_after;
  std::size_t streamers_located = 0;
};

/// Run the location module over every streamer in the world.
[[nodiscard]] LocatedWorld locate_streamers(const synth::World& world);

/// Location epoch of a ground-truth stream: 0 before the streamer's
/// relocation takes effect, 1 after (only when the relocation was observed
/// through the re-geoparsed profile).
[[nodiscard]] int stream_epoch(const synth::World& world,
                               const LocatedWorld& located,
                               const synth::TrueStream& stream);

/// The pseudonymizer every pipeline path must use, derived from the config
/// seed so batch and streaming runs of the same scenario agree on names.
[[nodiscard]] store::Pseudonymizer make_pseudonymizer(
    std::uint64_t config_seed);

/// Seed for ground-truth stream `stream_index`'s extraction randomness.
/// Thumbnail `p` of that stream draws from
/// Rng::indexed(extraction_stream_seed(seed, stream_index), p) — a pure
/// function of (config seed, stream index, point index), so batch and
/// streaming extraction produce bit-identical measurements regardless of
/// scheduling, thread count, or arrival order.
[[nodiscard]] std::uint64_t extraction_stream_seed(std::uint64_t config_seed,
                                                   std::uint64_t stream_index);

/// One thumbnail through the image-processing module: visibility draw
/// followed by channel extraction (§3.2). `visible` is false when the
/// latency overlay was not on screen; `measurement` is empty when it was
/// visible but extraction failed.
struct ThumbnailExtraction {
  bool visible = false;
  std::optional<analysis::Measurement> measurement;
};

/// Extract one thumbnail deterministically under the per-stream seed
/// (see extraction_stream_seed).
[[nodiscard]] ThumbnailExtraction extract_thumbnail(
    const ExtractionChannel& channel, const ocr::GameUiSpec& spec,
    const synth::TruePoint& point, double p_latency_visible,
    std::uint64_t stream_seed, std::uint64_t point_index);

/// Order-sensitive fingerprint of everything Pipeline::run produced:
/// funnel counters, every entry (pseudonym, locations, clean results,
/// retained measurements, spikes, clusters, flags) and every aggregate
/// (location, game, distribution, boxplot, anomaly stats). Doubles are
/// hashed by bit pattern, so two datasets share a digest iff they are
/// bit-identical on this surface — the equality check behind the chaos
/// harness's "transient faults leave the dataset untouched" criterion.
[[nodiscard]] std::uint64_t dataset_digest(const Dataset& dataset);

/// True when the "extract.stream" fault point (null = off) faults streamer
/// `streamer_index` beyond the retry budget — i.e. the fault still fires on
/// the final attempt, so the streamer is quarantined. Pure in (plan seed,
/// point, streamer index, policy); shared by the batch and streaming
/// extraction stages so both quarantine exactly the same streamers.
[[nodiscard]] bool extraction_quarantined(const fault::FaultPoint* point,
                                          std::uint64_t streamer_index,
                                          const fault::RetryPolicy& retry);

/// How many located streamers the plan quarantines across `streams` —
/// counted identically by the batch pipeline and the streaming sink so
/// tero.funnel.quarantined can never diverge between the two paths.
[[nodiscard]] std::size_t count_quarantined_streamers(
    const LocatedWorld& located, std::span<const synth::TrueStream> streams,
    const fault::FaultPoint* point, const fault::RetryPolicy& retry);

/// The per-{streamer, game, location-epoch} analysis stage (§3.3): clean ->
/// cluster -> static/quality classification. Returns nullopt when the
/// cleaner discards the group entirely. Pure given its inputs; shared by the
/// batch pipeline and the streaming cleaning stage.
[[nodiscard]] std::optional<StreamerGameEntry> analyze_streamer_group(
    const synth::World& world, const LocatedWorld& located,
    const store::Pseudonymizer& pseudonymizer, std::size_t streamer_index,
    std::string game, int epoch, std::vector<analysis::Stream> streams,
    const analysis::AnalysisConfig& config);

/// Re-aggregate entries at a different granularity (e.g. country for
/// Fig. 9/11, region for Fig. 10) without re-running extraction. A non-null
/// pool parallelizes the per-{location, game} group computation; the result
/// is identical either way. Optional observability sinks record per-task
/// latency and spans (observational only, like TeroConfig::metrics).
[[nodiscard]] std::vector<LocationGameAggregate> aggregate_entries(
    std::vector<StreamerGameEntry>& entries,
    const analysis::AnalysisConfig& config, geo::Granularity granularity,
    bool reject_location_outliers = false,
    util::ThreadPool* pool = nullptr,
    obs::MetricsRegistry* metrics = nullptr,
    obs::TraceRecorder* trace = nullptr);

/// Truncate a location tuple to a granularity.
[[nodiscard]] geo::Location truncate_location(const geo::Location& location,
                                              geo::Granularity granularity);

}  // namespace tero::core
