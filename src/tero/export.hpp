#pragma once

#include <iosfwd>
#include <string>

#include "tero/pipeline.hpp"

namespace tero::core {

/// Data-set export, mirroring what the paper publishes at
/// nal-epfl.github.io/tero-project: per-streamer latency measurements
/// (pseudonymized, §7) and per-{location, game} products. The format is
/// line-oriented CSV with a header, so it round-trips without a JSON
/// dependency and diffs cleanly.
///
/// measurements.csv: pseudonym,game,city,region,country,time_s,latency_ms
/// aggregates.csv:   city,region,country,game,streamers,p5,p25,p50,p75,p95,
///                   server_city,corrected_km
///
/// Row accounting is folded into the pipeline's funnel (tero/funnel.hpp):
/// the measurement rows written are exactly the funnel's `retained` stage,
/// and with a registry attached the exporters bump
/// tero.funnel.exported_measurements / .exported_aggregates, so runtime and
/// export metrics share one source of truth and cannot drift apart.

/// Write the retained (cleaned) measurements of every entry. Returns rows
/// written (== dataset.funnel.retained).
std::size_t export_measurements(const Dataset& dataset, std::ostream& os,
                                obs::MetricsRegistry* metrics = nullptr);

/// Write one row per {location, game} aggregate with a boxplot. Returns
/// rows written.
std::size_t export_aggregates(const Dataset& dataset, std::ostream& os,
                              obs::MetricsRegistry* metrics = nullptr);

/// Parse a measurements.csv back into per-{pseudonym, game} streams —
/// what a data-set user would do before running their own analysis.
/// Throws std::invalid_argument on malformed rows.
[[nodiscard]] std::vector<analysis::Stream> import_measurements(
    std::istream& is);

/// CSV field escaping for names that may contain commas.
[[nodiscard]] std::string csv_escape(const std::string& field);
[[nodiscard]] std::string csv_unescape(const std::string& field);

}  // namespace tero::core
