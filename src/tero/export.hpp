#pragma once

#include <iosfwd>
#include <string>

#include "tero/pipeline.hpp"

namespace tero::core {

/// Data-set export, mirroring what the paper publishes at
/// nal-epfl.github.io/tero-project: per-streamer latency measurements
/// (pseudonymized, §7) and per-{location, game} products. The format is
/// line-oriented CSV with a header, so it round-trips without a JSON
/// dependency and diffs cleanly.
///
/// measurements.csv: pseudonym,game,city,region,country,time_s,latency_ms
/// aggregates.csv:   city,region,country,game,streamers,p5,p25,p50,p75,p95,
///                   server_city,corrected_km
struct ExportStats {
  std::size_t measurement_rows = 0;
  std::size_t aggregate_rows = 0;
};

/// Write the retained (cleaned) measurements of every entry.
ExportStats export_measurements(const Dataset& dataset, std::ostream& os);

/// Write one row per {location, game} aggregate with a boxplot.
ExportStats export_aggregates(const Dataset& dataset, std::ostream& os);

/// Parse a measurements.csv back into per-{pseudonym, game} streams —
/// what a data-set user would do before running their own analysis.
/// Throws std::invalid_argument on malformed rows.
[[nodiscard]] std::vector<analysis::Stream> import_measurements(
    std::istream& is);

/// CSV field escaping for names that may contain commas.
[[nodiscard]] std::string csv_escape(const std::string& field);
[[nodiscard]] std::string csv_unescape(const std::string& field);

}  // namespace tero::core
