#pragma once

#include <memory>
#include <optional>

#include "analysis/types.hpp"
#include "ocr/extractor.hpp"
#include "ocr/game_ui.hpp"
#include "synth/sessions.hpp"
#include "synth/thumbnail.hpp"
#include "util/rng.hpp"

namespace tero::core {

/// Converts one ground-truth displayed latency into what Tero's
/// image-processing module extracts from the corresponding thumbnail
/// (conditioned on the measurement being visible on screen). nullopt =
/// extraction failed.
///
/// Implementations must be stateless apart from their configuration:
/// extract() is const and called concurrently from the pipeline's parallel
/// extraction stage (each task with its own Rng).
class ExtractionChannel {
 public:
  virtual ~ExtractionChannel() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::optional<analysis::Measurement> extract(
      const synth::TruePoint& point, const ocr::GameUiSpec& spec,
      util::Rng& rng) const = 0;
};

/// The real thing: rasterize a thumbnail (with the corruption mix) and run
/// the full crop -> preprocess -> 3 engines -> vote pipeline. Used by the
/// OCR evaluation benches and small end-to-end runs.
[[nodiscard]] std::unique_ptr<ExtractionChannel> make_ocr_channel(
    synth::ThumbnailConfig thumbnails = {},
    ocr::PreprocessConfig preprocess = {});

/// Behavioural twin of the OCR channel for large-scale sweeps: draws
/// miss / digit-drop / confusion outcomes at rates calibrated against the
/// measured OCR channel (Table 4: ~28% miss, ~3.7% wrong of which ~68%
/// digit drops), three orders of magnitude faster.
struct NoiseChannelConfig {
  double miss_rate = 0.28;
  double error_rate = 0.037;       ///< of extracted measurements
  double digit_drop_share = 0.68;  ///< of errors
  /// Probability that an erroneous primary comes with a correct
  /// alternative (the dissenting engine read it right).
  double p_alt_correct_on_error = 0.5;
  /// Probability that a correct primary carries a bogus alternative.
  double p_alt_bogus_on_correct = 0.08;
};
[[nodiscard]] std::unique_ptr<ExtractionChannel> make_noise_channel(
    NoiseChannelConfig config = {});

/// Apply a digit drop to a true value: hide the leading digit(s), e.g.
/// 245 -> 45, 41 -> 1 (§3.2.1). Returns the dropped value (may equal 0 for
/// single-digit inputs, in which case extraction fails upstream).
[[nodiscard]] int drop_leading_digits(int value, util::Rng& rng);

/// Apply a digit confusion: one digit misread as another (42 -> 12,
/// 101 -> 107).
[[nodiscard]] int confuse_digit(int value, util::Rng& rng);

}  // namespace tero::core
