#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "analysis/anomalies.hpp"
#include "analysis/shared.hpp"
#include "geo/geo.hpp"

namespace tero::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace tero::obs

namespace tero::core {

/// Streaming counterpart of the batch pipeline: Tero's deployment
/// "continuously downloads gaming footage ... and produces an
/// almost-real-time analysis of Internet latency" (§1). Measurements are
/// ingested in arrival order; spike alerts are emitted once enough
/// subsequent data has arrived to finalize the QoE classification, and
/// shared-anomaly alerts as soon as the App. F test fires for a
/// {location, game} aggregate.
class RealtimeAnalyzer {
 public:
  struct Config {
    analysis::AnalysisConfig analysis;
    /// A spike is "final" once this much time has passed beyond its end —
    /// enough for the closing stable segment to exist.
    double finalize_lag_s = 3600.0;
    /// Per-streamer context kept for re-analysis (older points graduate
    /// into the distributions and are dropped from the working buffer).
    std::size_t buffer_points = 48;
    /// Optional observability sink (not owned; may be null). Counters:
    /// tero.realtime.{measurements,spike_alerts,shared_alerts}; histogram
    /// tero.realtime.finalize_lag_s observes (ingest time - spike end) at
    /// each spike-alert emission. Observational only.
    obs::MetricsRegistry* metrics = nullptr;
  };

  struct SpikeAlert {
    std::string pseudonym;
    std::string game;
    analysis::SpikeEvent spike;
  };
  struct SharedAlert {
    geo::Location location;
    std::string game;
    analysis::SharedAnomaly anomaly;
  };
  struct Output {
    std::vector<SpikeAlert> spikes;
    std::vector<SharedAlert> shared;
  };

  RealtimeAnalyzer() : RealtimeAnalyzer(Config{}) {}
  explicit RealtimeAnalyzer(Config config);

  /// Declare a streamer's location once (from the location module).
  void register_streamer(const std::string& pseudonym,
                         const geo::Location& location);

  /// Feed one extracted measurement; returns alerts finalized by it.
  Output ingest(const std::string& pseudonym, const std::string& game,
                const analysis::Measurement& measurement);

  /// Retained (clean, non-spike) latency values so far for an aggregate.
  [[nodiscard]] std::vector<double> distribution(
      const geo::Location& location, const std::string& game) const;

  [[nodiscard]] std::size_t measurements_ingested() const noexcept {
    return ingested_;
  }
  [[nodiscard]] std::size_t spikes_emitted() const noexcept {
    return spikes_emitted_;
  }

 private:
  struct StreamerState {
    geo::Location location;
    std::deque<analysis::Measurement> buffer;
    double last_emitted_spike_end = -1.0;
  };
  struct AggregateState {
    /// Spikes and activity in the recent shared-anomaly horizon.
    std::vector<analysis::StreamerActivity> activities;
    std::map<std::string, std::size_t> activity_index;
    std::vector<double> retained_values;
    double last_shared_alert_end = -1.0;
  };

  [[nodiscard]] std::string aggregate_key(const geo::Location& location,
                                          const std::string& game) const;
  analysis::StreamerActivity& activity_for(AggregateState& aggregate,
                                           const std::string& pseudonym);

  Config config_;
  // Resolved once at construction; null when config_.metrics is null.
  obs::Counter* c_measurements_ = nullptr;
  obs::Counter* c_spike_alerts_ = nullptr;
  obs::Counter* c_shared_alerts_ = nullptr;
  obs::Histogram* h_finalize_lag_ = nullptr;
  std::map<std::pair<std::string, std::string>, StreamerState> streamers_;
  std::map<std::string, AggregateState> aggregates_;
  std::map<std::string, geo::Location> locations_;
  std::size_t ingested_ = 0;
  std::size_t spikes_emitted_ = 0;
};

}  // namespace tero::core
