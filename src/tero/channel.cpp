#include "tero/channel.hpp"

#include <string>

namespace tero::core {
namespace {

class OcrChannel final : public ExtractionChannel {
 public:
  OcrChannel(synth::ThumbnailConfig thumbnails,
             ocr::PreprocessConfig preprocess)
      : renderer_(thumbnails), extractor_(preprocess) {}

  [[nodiscard]] std::string name() const override { return "ocr"; }

  [[nodiscard]] std::optional<analysis::Measurement> extract(
      const synth::TruePoint& point, const ocr::GameUiSpec& spec,
      util::Rng& rng) const override {
    // Visibility is the pipeline's concern; roll only the corruption mix.
    const auto rendered = renderer_.render_with(
        spec, point.latency_ms,
        synth::roll_corruption(renderer_.config(), rng), rng);
    const auto reading = extractor_.extract(rendered.image, spec);
    if (!reading.primary.has_value()) return std::nullopt;
    analysis::Measurement measurement;
    measurement.time_s = point.t;
    measurement.latency_ms = *reading.primary;
    measurement.alternative_ms = reading.alternative;
    return measurement;
  }

 private:
  synth::ThumbnailRenderer renderer_;
  ocr::LatencyExtractor extractor_;
};

class NoiseChannel final : public ExtractionChannel {
 public:
  explicit NoiseChannel(NoiseChannelConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "noise"; }

  [[nodiscard]] std::optional<analysis::Measurement> extract(
      const synth::TruePoint& point, const ocr::GameUiSpec& /*spec*/,
      util::Rng& rng) const override {
    if (rng.bernoulli(config_.miss_rate)) return std::nullopt;
    analysis::Measurement measurement;
    measurement.time_s = point.t;
    const int truth = point.latency_ms;
    if (rng.bernoulli(config_.error_rate)) {
      const int wrong = rng.bernoulli(config_.digit_drop_share)
                            ? drop_leading_digits(truth, rng)
                            : confuse_digit(truth, rng);
      if (wrong <= 0) return std::nullopt;  // dropped to nothing
      measurement.latency_ms = wrong;
      if (rng.bernoulli(config_.p_alt_correct_on_error)) {
        measurement.alternative_ms = truth;
      }
    } else {
      measurement.latency_ms = truth;
      if (rng.bernoulli(config_.p_alt_bogus_on_correct)) {
        measurement.alternative_ms = confuse_digit(truth, rng);
      }
    }
    return measurement;
  }

 private:
  NoiseChannelConfig config_;
};

}  // namespace

int drop_leading_digits(int value, util::Rng& rng) {
  std::string digits = std::to_string(value);
  if (digits.size() <= 1) return 0;
  const std::size_t drop =
      digits.size() > 2 && rng.bernoulli(0.25) ? 2 : 1;
  digits.erase(0, drop);
  // Leading zeros vanish on screen too ("105" -> "05" reads as 5).
  return std::stoi(digits);
}

int confuse_digit(int value, util::Rng& rng) {
  std::string digits = std::to_string(value);
  const auto pos = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(digits.size()) - 1));
  char replacement;
  do {
    replacement = static_cast<char>('0' + rng.uniform_int(0, 9));
  } while (replacement == digits[pos]);
  digits[pos] = replacement;
  const int confused = std::stoi(digits);
  return confused > 0 ? confused : value;
}

std::unique_ptr<ExtractionChannel> make_ocr_channel(
    synth::ThumbnailConfig thumbnails, ocr::PreprocessConfig preprocess) {
  return std::make_unique<OcrChannel>(thumbnails, preprocess);
}

std::unique_ptr<ExtractionChannel> make_noise_channel(
    NoiseChannelConfig config) {
  return std::make_unique<NoiseChannel>(config);
}

}  // namespace tero::core
