#pragma once

#include <string_view>
#include <vector>

#include "geo/gazetteer.hpp"

namespace tero::nlp {

/// A gazetteer hit inside a piece of text.
struct PlaceMention {
  const geo::Place* place = nullptr;
  std::size_t token_index = 0;  ///< index of the first token of the mention
  int token_count = 0;          ///< n-gram length (1-3)
  bool capitalized = false;     ///< every token starts with an uppercase letter
};

/// A word token with its original form preserved (capitalization matters to
/// some tools).
struct Token {
  std::string_view text;
};

/// Split text into word tokens (alphanumeric runs; punctuation separates).
[[nodiscard]] std::vector<Token> tokenize(std::string_view text);

/// Options controlling how a tool scans text for gazetteer names. The three
/// geocoders differ exactly in these knobs, giving them different
/// recall/precision profiles (Table 3).
struct MatchOptions {
  bool require_capitalized = false;  ///< only capitalized n-grams count
  bool allow_substring = false;      ///< match names inside longer words
                                     ///  ("Denmarkian" -> Denmark; causes
                                     ///  false positives, §4.2.1)
  int max_ngram = 3;
};

/// All gazetteer mentions in `text`, longest-match-first at each position
/// (so "New York City" wins over "New York"), without resolving ambiguity:
/// an ambiguous name yields one mention per candidate place.
[[nodiscard]] std::vector<PlaceMention> find_mentions(
    std::string_view text, const geo::Gazetteer& gazetteer,
    const MatchOptions& options);

/// Drop mentions that look like part of a person/entity name: a place token
/// immediately followed by a capitalized non-place word ("Paris Hilton",
/// "Toronto Raptors"). This stands in for the NER the real CLIFF/Mordecai
/// run; Xponents-style matchers skip it and pay in precision (Table 3).
[[nodiscard]] std::vector<PlaceMention> drop_entity_mentions(
    std::string_view text, std::vector<PlaceMention> mentions,
    const geo::Gazetteer& gazetteer);

}  // namespace tero::nlp
