#include <algorithm>

#include "nlp/matcher.hpp"
#include "nlp/tools.hpp"
#include "util/strings.hpp"

namespace tero::nlp {
namespace {

using geo::Gazetteer;
using geo::Location;
using geo::Place;

/// Nominatim-like structured parser: treats the location field as a
/// comma-separated "City, Region, Country" hierarchy and cross-checks that
/// the components nest. Falls back to a whole-field lookup.
class NominatimLike final : public GeoTool {
 public:
  [[nodiscard]] std::string name() const override { return "nominatim"; }

  [[nodiscard]] std::vector<Location> extract(
      std::string_view text) const override {
    const auto& gazetteer = Gazetteer::world();
    const auto pieces = util::split(text, ",;/|");
    std::vector<const Place*> resolved;
    for (const auto piece : pieces) {
      const auto trimmed = util::trim(piece);
      if (trimmed.empty()) continue;
      if (const Place* place = gazetteer.find_any(trimmed)) {
        resolved.push_back(place);
      }
    }
    if (resolved.empty()) return {};
    // Most specific piece whose ancestry is consistent with the others.
    const Place* best = resolved.front();
    for (const Place* place : resolved) {
      if (static_cast<int>(place->kind) > static_cast<int>(best->kind)) {
        continue;  // kCity < kRegion < kCountry in specificity order
      }
      best = place;
    }
    // Cross-check: every other piece must be compatible with `best`.
    const Location best_loc = best->location();
    for (const Place* place : resolved) {
      if (!best_loc.compatible_with(place->location())) return {};
    }
    return {best_loc};
  }
};

/// GeoNames-like token lookup: every 1-2-gram is looked up; the
/// highest-weight match wins. High recall; errors on name coincidences
/// ("Your heart, Chicago" resolves fine; "Paris Hilton fan" resolves to
/// Paris).
class GeonamesLike final : public GeoTool {
 public:
  [[nodiscard]] std::string name() const override { return "geonames"; }

  [[nodiscard]] std::vector<Location> extract(
      std::string_view text) const override {
    MatchOptions options;
    options.max_ngram = 2;
    const auto mentions = find_mentions(text, Gazetteer::world(), options);
    if (mentions.empty()) return {};
    const PlaceMention* best = &mentions.front();
    for (const auto& mention : mentions) {
      if (mention.place->weight > best->place->weight) best = &mention;
    }
    return {best->place->location()};
  }
};

}  // namespace

std::unique_ptr<GeoTool> make_nominatim_like() {
  return std::make_unique<NominatimLike>();
}
std::unique_ptr<GeoTool> make_geonames_like() {
  return std::make_unique<GeonamesLike>();
}

}  // namespace tero::nlp
