#pragma once

#include <string_view>

#include "geo/geo.hpp"

namespace tero::nlp {

/// The conservative filter of App. D.1: a tool's output location is accepted
/// only if the *input* text contains the output's country or region name as
/// a whole word (case-insensitive, alias-aware). "Join us in Detroit" fails
/// the filter (no "United States"/"Michigan" in the input) even though the
/// output is right — the filter trades recall for precision, which is what
/// turns "Tool" into "Tool++" in Table 3.
[[nodiscard]] bool conservative_filter(std::string_view input,
                                       const geo::Location& output);

}  // namespace tero::nlp
