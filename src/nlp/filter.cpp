#include "nlp/filter.hpp"

#include "geo/gazetteer.hpp"
#include "util/strings.hpp"

namespace tero::nlp {
namespace {

/// Word-match `name` or any of its gazetteer aliases inside `input`. The
/// match must be capitalized — lowercase coincidences like "i love turkey
/// sandwiches" or "georgia peach cobbler" are exactly the false positives
/// the filter exists to reject (§4.2.1). Short acronym aliases ("US", "UK")
/// additionally require an exact-case match so the English word "us" never
/// confirms the United States.
bool mentions_place(std::string_view input, std::string_view name,
                    geo::PlaceKind kind) {
  if (name.empty()) return false;
  if (util::contains_word_capitalized(input, name)) return true;
  const geo::Place* place = geo::Gazetteer::world().find(name, kind);
  if (place == nullptr) return false;
  for (const auto& alias : place->aliases) {
    if (alias.size() <= 3) {
      // Acronym: exact case, word-bounded.
      if (util::contains_word_exact(input, alias)) return true;
    } else if (util::contains_word_capitalized(input, alias)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool conservative_filter(std::string_view input, const geo::Location& output) {
  if (!output.valid()) return false;
  return mentions_place(input, output.country, geo::PlaceKind::kCountry) ||
         mentions_place(input, output.region, geo::PlaceKind::kRegion);
}

}  // namespace tero::nlp
