#include <algorithm>

#include "nlp/matcher.hpp"
#include "nlp/tools.hpp"

namespace tero::nlp {
namespace {

using geo::Gazetteer;
using geo::Location;
using geo::Place;

class CliffLike final : public GeoTool {
 public:
  [[nodiscard]] std::string name() const override { return "cliff"; }

  [[nodiscard]] std::vector<Location> extract(
      std::string_view text) const override {
    MatchOptions options;
    options.require_capitalized = true;
    const auto mentions = drop_entity_mentions(
        text, find_mentions(text, Gazetteer::world(), options),
        Gazetteer::world());
    if (mentions.empty()) return {};
    // Group mentions by token position; resolve each position's ambiguity by
    // gazetteer weight (a CLIFF-style "focus" heuristic), then return the
    // first resolved mention in reading order.
    const PlaceMention* best = nullptr;
    for (const auto& mention : mentions) {
      if (best == nullptr) {
        best = &mention;
        continue;
      }
      if (mention.token_index == best->token_index) {
        if (mention.place->weight > best->place->weight) best = &mention;
      }
    }
    return {best->place->location()};
  }
};

class XponentsLike final : public GeoTool {
 public:
  [[nodiscard]] std::string name() const override { return "xponents"; }

  [[nodiscard]] std::vector<Location> extract(
      std::string_view text) const override {
    MatchOptions options;
    options.allow_substring = true;
    const auto mentions = find_mentions(text, Gazetteer::world(), options);
    if (mentions.empty()) return {};
    // Highest-weight mention anywhere in the text wins: maximal recall,
    // and maximal exposure to name coincidences.
    const PlaceMention* best = &mentions.front();
    for (const auto& mention : mentions) {
      if (mention.place->weight > best->place->weight) best = &mention;
    }
    return {best->place->location()};
  }
};

class MordecaiLike final : public GeoTool {
 public:
  [[nodiscard]] std::string name() const override { return "mordecai"; }

  [[nodiscard]] std::vector<Location> extract(
      std::string_view text) const override {
    MatchOptions options;
    options.require_capitalized = true;
    options.max_ngram = 2;
    const auto mentions = drop_entity_mentions(
        text, find_mentions(text, Gazetteer::world(), options),
        Gazetteer::world());
    std::vector<Location> candidates;
    for (const auto& mention : mentions) {
      const Location loc = mention.place->location();
      if (std::find(candidates.begin(), candidates.end(), loc) ==
          candidates.end()) {
        candidates.push_back(loc);
      }
      if (candidates.size() >= 4) break;  // unranked shortlist
    }
    return candidates;
  }
};

}  // namespace

std::unique_ptr<GeoTool> make_cliff_like() {
  return std::make_unique<CliffLike>();
}
std::unique_ptr<GeoTool> make_xponents_like() {
  return std::make_unique<XponentsLike>();
}
std::unique_ptr<GeoTool> make_mordecai_like() {
  return std::make_unique<MordecaiLike>();
}

}  // namespace tero::nlp
