#include "nlp/matcher.hpp"

#include <cctype>
#include <string>

#include "util/strings.hpp"

namespace tero::nlp {
namespace {

bool is_word_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
         c == '-';
}

bool starts_uppercase(std::string_view word) noexcept {
  return !word.empty() &&
         std::isupper(static_cast<unsigned char>(word.front())) != 0;
}

}  // namespace

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t start = 0;
  bool in_word = false;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool word_char = i < text.size() && is_word_char(text[i]);
    if (word_char && !in_word) {
      start = i;
      in_word = true;
    } else if (!word_char && in_word) {
      tokens.push_back(Token{text.substr(start, i - start)});
      in_word = false;
    }
  }
  return tokens;
}

std::vector<PlaceMention> drop_entity_mentions(
    std::string_view text, std::vector<PlaceMention> mentions,
    const geo::Gazetteer& gazetteer) {
  const auto tokens = tokenize(text);
  std::vector<PlaceMention> kept;
  for (auto& mention : mentions) {
    const std::size_t next =
        mention.token_index + static_cast<std::size_t>(mention.token_count);
    if (next < tokens.size() && starts_uppercase(tokens[next].text) &&
        gazetteer.find_all(tokens[next].text).empty()) {
      continue;  // "Paris Hilton": likely an entity, not a location
    }
    kept.push_back(mention);
  }
  return kept;
}

std::vector<PlaceMention> find_mentions(std::string_view text,
                                        const geo::Gazetteer& gazetteer,
                                        const MatchOptions& options) {
  const auto tokens = tokenize(text);
  std::vector<PlaceMention> mentions;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // Longest n-gram first so "New York City" beats "New York".
    for (int n = options.max_ngram; n >= 1; --n) {
      if (i + static_cast<std::size_t>(n) > tokens.size()) continue;
      std::string candidate;
      bool capitalized = true;
      for (int k = 0; k < n; ++k) {
        if (k > 0) candidate += ' ';
        candidate += tokens[i + k].text;
        capitalized = capitalized && starts_uppercase(tokens[i + k].text);
      }
      if (options.require_capitalized && !capitalized) continue;

      auto matches = gazetteer.find_all(candidate);
      if (matches.empty() && options.allow_substring && n == 1 &&
          candidate.size() >= 6) {
        // Substring fallback: a long token that *contains* a place name,
        // e.g. "Denmarkian". Only names >= 5 chars, to bound false hits.
        for (const auto& place : gazetteer.places()) {
          if (place.name.size() >= 5 &&
              util::icontains(candidate, place.name)) {
            matches.push_back(&place);
          }
        }
      }
      if (matches.empty()) continue;
      for (const geo::Place* place : matches) {
        mentions.push_back(PlaceMention{place, i, n, capitalized});
      }
      i += static_cast<std::size_t>(n) - 1;  // consume the n-gram
      break;
    }
  }
  return mentions;
}

}  // namespace tero::nlp
