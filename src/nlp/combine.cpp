#include "nlp/combine.hpp"

#include <vector>

#include "nlp/filter.hpp"
#include "util/strings.hpp"

namespace tero::nlp {
namespace {

using geo::Location;

std::optional<Location> first_or_none(const std::vector<Location>& out) {
  if (out.empty()) return std::nullopt;
  return out.front();
}

/// The more complete of two locations when one subsumes the other.
std::optional<Location> subsumption_pick(const std::optional<Location>& a,
                                         const std::optional<Location>& b) {
  if (!a || !b) return std::nullopt;
  if (a->subsumes(*b)) return a;
  if (b->subsumes(*a)) return b;
  return std::nullopt;
}

}  // namespace

std::optional<Location> combine_twitch_description(
    std::string_view description, const ToolSet& tools) {
  return combine_twitch_description(description, tools, std::nullopt);
}

std::optional<Location> combine_twitch_description(
    std::string_view description, const ToolSet& tools,
    const std::optional<std::string>& country_tag) {
  const auto cliff_out = first_or_none(tools.cliff->extract(description));
  const auto xponents_out =
      first_or_none(tools.xponents->extract(description));
  const auto mordecai_out = tools.mordecai->extract(description);

  // Step 2: conservative filter on CLIFF and Xponents. Prefer the more
  // complete output when both pass.
  std::optional<Location> cliff_pass;
  std::optional<Location> xponents_pass;
  if (cliff_out && conservative_filter(description, *cliff_out)) {
    cliff_pass = cliff_out;
  }
  if (xponents_out && conservative_filter(description, *xponents_out)) {
    xponents_pass = xponents_out;
  }
  if (cliff_pass && xponents_pass) {
    if (const auto more = subsumption_pick(cliff_pass, xponents_pass)) {
      return more;
    }
    if (*cliff_pass == *xponents_pass) return cliff_pass;
    // Both pass but conflict: fall through to agreement voting.
  } else if (cliff_pass) {
    return cliff_pass;
  } else if (xponents_pass) {
    return xponents_pass;
  }

  // Step 3: two-of-three agreement (Mordecai contributes each candidate).
  std::vector<Location> votes;
  if (cliff_out) votes.push_back(*cliff_out);
  if (xponents_out) votes.push_back(*xponents_out);
  std::optional<Location> agreement;
  for (const auto& vote : votes) {
    int support = 0;
    for (const auto& other : votes) {
      if (other == vote) ++support;
    }
    for (const auto& candidate : mordecai_out) {
      if (candidate == vote) ++support;
    }
    if (support >= 2) {
      agreement = vote;
      break;
    }
  }
  if (agreement) return agreement;

  // Step 4: subsumption between CLIFF and Xponents.
  if (const auto more = subsumption_pick(cliff_out, xponents_out)) {
    return more;
  }

  // Tag recovery: a geocoded country confirmed by a stable country tag is
  // accepted even though the heuristics above discarded it.
  if (country_tag.has_value()) {
    for (const auto& candidate : {cliff_out, xponents_out}) {
      if (candidate && util::iequals(candidate->country, *country_tag)) {
        return candidate;
      }
    }
    for (const auto& candidate : mordecai_out) {
      if (util::iequals(candidate.country, *country_tag)) return candidate;
    }
  }
  return std::nullopt;
}

std::optional<Location> combine_twitter_location(
    std::string_view location_field, const ToolSet& tools) {
  const auto nominatim_out =
      first_or_none(tools.nominatim->extract(location_field));
  const auto geonames_out =
      first_or_none(tools.geonames->extract(location_field));

  if (nominatim_out && geonames_out) {
    if (*nominatim_out == *geonames_out) return nominatim_out;
    if (const auto more = subsumption_pick(nominatim_out, geonames_out)) {
      return more;
    }
    // Disagreement: process the field like a Twitch description (App. D.3
    // step 3) — handles non-geographic references ("Your heart, Chicago").
    return combine_twitch_description(location_field, tools);
  }
  if (nominatim_out || geonames_out) {
    // Only one tool extracted anything — typically a joke/noise field
    // ("somewhere between London and Tokyo"). Accept only with the
    // conservative filter's blessing: the combination's low error rate in
    // Table 3 comes from refusing exactly these.
    const auto& only = nominatim_out ? nominatim_out : geonames_out;
    if (!conservative_filter(location_field, *only)) return std::nullopt;
    const auto described = combine_twitch_description(location_field, tools);
    if (described && described->compatible_with(*only) &&
        described->subsumes(*only)) {
      return described;
    }
    return only;
  }
  return std::nullopt;
}

}  // namespace tero::nlp
